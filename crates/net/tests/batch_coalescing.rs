//! No-lost-wakeup coverage for the batch-dequeue / waker-coalescing path.
//!
//! The coalescing optimisation (a pipe with a wakeup already in flight
//! skips re-firing the receiver's waker; the reactor's per-task scheduled
//! flag absorbs duplicate ready-queue pushes) is only correct if it can
//! never swallow the *last* wakeup: every sent message must eventually be
//! drained and applied, no matter how sends, coalesced wakes and drains
//! interleave. Two layers pin that down:
//!
//! 1. a property test replaying random send-burst / budget schedules
//!    through a real reactor and asserting every message is applied in
//!    order;
//! 2. an 8-producer stress test racing real threads against the single
//!    reactor consumer, checked against a sequential per-producer oracle.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tcache_net::pipe::{bounded_pipe, OverflowPolicy, UNBOUNDED};
use tcache_net::reactor::{yield_now, Reactor};

/// Spawns a batch-draining consumer task mirroring the delivery loop's
/// shape (drain up to `budget`, apply, re-yield if backlog remains). The
/// receiver arrives in an `Arc` so tests can keep a handle for stats
/// without keeping a sender (and the pipe) alive.
fn spawn_batch_consumer(
    reactor: &mut Reactor,
    rx: Arc<tcache_net::pipe::PipeReceiver<u64>>,
    budget: usize,
    applied: Arc<Mutex<Vec<u64>>>,
) {
    reactor.spawn(async move {
        let mut batch = Vec::new();
        loop {
            let n = rx.recv_batch_async(&mut batch, budget).await;
            if n == 0 {
                return;
            }
            applied.lock().unwrap().extend(batch.drain(..));
            if !rx.is_empty() {
                rx.note_budget_yield();
                yield_now().await;
            }
        }
    });
}

proptest! {
    /// Random interleavings of send bursts (from another thread, racing
    /// the reactor's drains and coalesced wakes) never lose a message:
    /// every send is eventually applied, in order.
    #[test]
    fn random_burst_schedules_lose_no_wakeup(
        bursts in prop::collection::vec(1usize..40, 1..30),
        budget in 1usize..128,
        capacity_choice in 0u32..3,
    ) {
        let capacity = match capacity_choice {
            0 => UNBOUNDED,
            1 => 8,
            _ => 64,
        };
        let (tx, rx) = bounded_pipe::<u64>(capacity, OverflowPolicy::Block);
        let mut reactor = Reactor::new();
        let applied = Arc::new(Mutex::new(Vec::new()));
        spawn_batch_consumer(&mut reactor, Arc::new(rx), budget, Arc::clone(&applied));
        let total: usize = bursts.iter().sum();
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            for burst in bursts {
                for _ in 0..burst {
                    tx.send(next).unwrap();
                    next += 1;
                }
                // Let the consumer race ahead between bursts so schedules
                // cover both backlog drains and empty-pipe re-parks.
                std::thread::yield_now();
            }
        });
        reactor.run(); // Exits once the producer drops its sender.
        producer.join().unwrap();
        let applied = applied.lock().unwrap();
        prop_assert_eq!(
            &*applied,
            &(0..total as u64).collect::<Vec<_>>(),
            "a coalesced wakeup was lost or reordered"
        );
    }
}

/// Eight producer threads race the single reactor consumer through one
/// shared pipe; the applied stream must interleave the eight sequential
/// per-producer oracles exactly (each producer's messages in order, none
/// lost, none duplicated).
#[test]
fn eight_producer_stress_matches_sequential_oracle() {
    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 5_000;
    let (tx, rx) = bounded_pipe::<u64>(256, OverflowPolicy::Block);
    let mut reactor = Reactor::new();
    let applied = Arc::new(Mutex::new(Vec::with_capacity(
        (PRODUCERS * PER_PRODUCER) as usize,
    )));
    spawn_batch_consumer(&mut reactor, Arc::new(rx), 64, Arc::clone(&applied));
    let barrier = Arc::new(std::sync::Barrier::new(PRODUCERS as usize));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_PRODUCER {
                    // Tag = producer in the high bits, sequence in the low.
                    tx.send(p << 32 | i).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let reactor_thread = std::thread::spawn(move || reactor.run());
    for h in producers {
        h.join().unwrap();
    }
    reactor_thread.join().unwrap();

    let applied = applied.lock().unwrap();
    assert_eq!(applied.len() as u64, PRODUCERS * PER_PRODUCER);
    // Sequential oracle: replay each producer's loop and demand the applied
    // stream restricted to that producer equals it exactly.
    let mut next_expected = [0u64; PRODUCERS as usize];
    for &tagged in applied.iter() {
        let producer = (tagged >> 32) as usize;
        let seq = tagged & 0xFFFF_FFFF;
        assert_eq!(
            seq, next_expected[producer],
            "producer {producer}'s stream was reordered or lost a message"
        );
        next_expected[producer] += 1;
    }
    assert!(next_expected.iter().all(|&n| n == PER_PRODUCER));
}

/// Deterministic coalescing accounting: with the receiver's waker parked, a
/// 5-send burst fires exactly one wakeup and coalesces the other four.
#[test]
fn burst_sends_coalesce_into_one_wakeup() {
    use std::future::Future;
    use std::pin::pin;
    use std::task::{Context, Poll, Wake, Waker};

    struct CountWaker(AtomicU64);
    impl Wake for CountWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
    let fires = Arc::new(CountWaker(AtomicU64::new(0)));
    let waker = Waker::from(Arc::clone(&fires));
    let mut cx = Context::from_waker(&waker);
    let mut buf = Vec::new();

    // Park the receiver: the first poll registers the waker.
    {
        let mut fut = pin!(rx.recv_batch_async(&mut buf, 16));
        assert_eq!(fut.as_mut().poll(&mut cx), Poll::Pending);
    }
    for i in 0..5u64 {
        tx.send(i).unwrap();
    }
    assert_eq!(
        fires.0.load(Ordering::Relaxed),
        1,
        "exactly one wakeup fires for the whole burst"
    );
    assert_eq!(tx.stats().coalesced_wakeups, 4, "the other four coalesce");

    // The single wakeup services the whole backlog in one drain.
    {
        let mut fut = pin!(rx.recv_batch_async(&mut buf, 16));
        assert_eq!(fut.as_mut().poll(&mut cx), Poll::Ready(5));
    }
    assert_eq!(buf, vec![0, 1, 2, 3, 4]);
    let stats = rx.stats();
    assert_eq!(stats.batched_polls, 1);
    assert_eq!(stats.max_drain, 5);
    assert_eq!(stats.received, 5);
    assert!((stats.mean_drain() - 5.0).abs() < 1e-9);

    // After the drain the pending-wakeup flag is cleared: a fresh send
    // fires a fresh wakeup once the receiver re-parks.
    {
        let mut fut = pin!(rx.recv_batch_async(&mut buf, 16));
        assert_eq!(fut.as_mut().poll(&mut cx), Poll::Pending);
    }
    tx.send(99).unwrap();
    assert_eq!(fires.0.load(Ordering::Relaxed), 2);
    assert_eq!(tx.stats().coalesced_wakeups, 4, "no extra coalescing");
}

/// Deterministic budget accounting: a pre-filled 100-deep backlog drained
/// with budget 16 takes seven batch polls and re-yields after each of the
/// six full batches that left backlog behind.
#[test]
fn budget_yields_are_counted_per_full_batch_with_backlog() {
    let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
    for i in 0..100u64 {
        tx.send(i).unwrap();
    }
    drop(tx); // Disconnect up front: the consumer drains and terminates.
    let rx = Arc::new(rx);
    let mut reactor = Reactor::new();
    let applied = Arc::new(Mutex::new(Vec::new()));
    spawn_batch_consumer(&mut reactor, Arc::clone(&rx), 16, Arc::clone(&applied));
    reactor.run();
    let stats = rx.stats();
    assert_eq!(applied.lock().unwrap().len(), 100);
    assert_eq!(stats.batched_polls, 7, "ceil(100 / 16) drains");
    assert_eq!(stats.max_drain, 16);
    assert_eq!(
        stats.budget_yields, 6,
        "every full batch with backlog left re-yields"
    );
    assert_eq!(stats.coalesced_wakeups, 0, "no waker was ever parked");
}
