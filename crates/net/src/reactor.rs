//! A hand-rolled single-threaded reactor runtime.
//!
//! The build environment is offline, so instead of tokio the invalidation
//! plane runs on this minimal executor: a ready queue, a parked-task table
//! and a timer wheel, all driven by one thread. N per-cache invalidation
//! pipes ([`crate::pipe`]) register wakers with their [`RecvFuture`]s, so a
//! single reactor thread multiplexes every cache's apply loop — replacing
//! the thread-per-cache layout without losing wake-on-delivery semantics.
//!
//! [`RecvFuture`]: crate::pipe::RecvFuture
//!
//! Design:
//!
//! * **Ready queue** — task ids whose wakers fired, drained FIFO each
//!   iteration; cross-thread wakes park/unpark the reactor via a condvar.
//! * **Parked-task table** — every spawned task lives in a slab keyed by
//!   [`TaskId`]; a task not in the ready queue is parked and consumes no
//!   cycles until its waker fires.
//! * **Timer wheel** — a min-heap of `(deadline, seq, waker)`; the reactor
//!   sleeps exactly until the next deadline when no task is ready. Timer
//!   durations use the same microsecond [`SimDuration`] arithmetic as the
//!   latency models in [`crate::latency`] (one simulated microsecond maps
//!   to one wall-clock microsecond), so a [`LatencyModel`] sample can be
//!   slept on directly with [`TimerHandle::sleep_model`].
//!
//! [`LatencyModel`]: crate::latency::LatencyModel

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Iterations the run loop spins on [`ReactorShared::ready_hint`] before
/// parking on the condvar. Tuned to bridge a producer's inter-send gap
/// (sub-microsecond) without burning meaningful CPU when genuinely idle:
/// the spin costs a few microseconds once per idle transition, a park
/// costs two futex syscalls per message under a ping-pong load.
const SPIN_BEFORE_PARK: u32 = 4096;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};
use tcache_types::SimDuration;

/// Identifies one spawned task inside a [`Reactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Monotone counters describing the reactor's activity.
#[derive(Debug, Default)]
struct ReactorCounters {
    spawned: AtomicU64,
    completed: AtomicU64,
    polls: AtomicU64,
    wakes: AtomicU64,
    coalesced_wakes: AtomicU64,
    timers_fired: AtomicU64,
    spin_recoveries: AtomicU64,
}

/// A point-in-time copy of the reactor's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReactorStats {
    /// Tasks spawned over the reactor's lifetime.
    pub spawned: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Total future polls performed.
    pub polls: u64,
    /// Waker fires observed (ready-queue pushes).
    pub wakes: u64,
    /// Waker fires absorbed by the per-task scheduled flag: the task was
    /// already enqueued (or mid-poll) so no second ready-queue entry was
    /// pushed.
    pub coalesced_wakes: u64,
    /// Timer entries that reached their deadline and woke a task.
    pub timers_fired: u64,
    /// Idle iterations resolved by the pre-park spin: a waker fired within
    /// the spin window, so the reactor skipped a condvar park/unpark
    /// round-trip (each one is two futex syscalls under load).
    pub spin_recoveries: u64,
}

struct TimerEntry {
    deadline: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// State shared between the reactor thread, task wakers and handles.
struct ReactorShared {
    ready: Mutex<VecDeque<TaskId>>,
    /// Lock-free mirror of the ready queue's length, maintained under the
    /// `ready` lock. The run loop's pre-park spin polls this instead of
    /// re-taking the lock on every spin iteration.
    ready_hint: AtomicUsize,
    /// Parks the reactor thread while no task is ready and no timer is due.
    parked: Condvar,
    timers: Mutex<BinaryHeap<Reverse<TimerEntry>>>,
    timer_seq: AtomicU64,
    shutdown: AtomicBool,
    counters: ReactorCounters,
}

impl ReactorShared {
    fn push_ready(&self, id: TaskId) {
        let mut ready = self.ready.lock().expect("reactor lock");
        ready.push_back(id);
        self.ready_hint.store(ready.len(), Ordering::Release);
        self.counters.wakes.fetch_add(1, Ordering::Relaxed);
        drop(ready);
        self.parked.notify_one();
    }
}

/// Per-task waker: pushes the task onto the ready queue and unparks the
/// reactor thread. Safe to fire from any thread (pipe senders fire it from
/// the publishing side). The `scheduled` flag coalesces wakes: a task
/// already sitting in the ready queue is not enqueued a second time, so a
/// burst of N sends costs one ready-queue push and one lock round-trip, not
/// N contains-scans.
struct TaskWaker {
    id: TaskId,
    shared: Arc<ReactorShared>,
    /// Set while the task is enqueued (or about to be polled); cleared by
    /// the reactor just before each poll so wakes during the poll re-enqueue.
    scheduled: Arc<AtomicBool>,
}

impl TaskWaker {
    fn wake_impl(&self) {
        if self.scheduled.swap(true, Ordering::AcqRel) {
            // Already queued or mid-poll: the pending poll observes
            // whatever this wake was announcing.
            self.shared
                .counters
                .coalesced_wakes
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.shared.push_ready(self.id);
    }
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_impl();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.wake_impl();
    }
}

type BoxedTask = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// The single-threaded reactor. Build it, [`Reactor::spawn`] tasks onto it,
/// then move it to its thread and call [`Reactor::run`]. Keep a
/// [`ReactorHandle`] (from [`Reactor::handle`]) to request shutdown and to
/// sample [`ReactorStats`] from outside.
pub struct Reactor {
    shared: Arc<ReactorShared>,
    /// The parked-task table: every live task, keyed by id. Tasks absent
    /// from the ready queue sit here untouched until a waker fires.
    tasks: HashMap<TaskId, BoxedTask>,
    wakers: HashMap<TaskId, Waker>,
    /// Per-task scheduled flags shared with the wakers; cleared just before
    /// each poll so wakes arriving mid-poll re-enqueue the task.
    scheduled: HashMap<TaskId, Arc<AtomicBool>>,
    next_task: u64,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("live_tasks", &self.tasks.len())
            .finish_non_exhaustive()
    }
}

impl Default for Reactor {
    fn default() -> Self {
        Reactor::new()
    }
}

impl Reactor {
    /// Creates an empty reactor.
    pub fn new() -> Self {
        Reactor {
            shared: Arc::new(ReactorShared {
                ready: Mutex::new(VecDeque::new()),
                ready_hint: AtomicUsize::new(0),
                parked: Condvar::new(),
                timers: Mutex::new(BinaryHeap::new()),
                timer_seq: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                counters: ReactorCounters::default(),
            }),
            tasks: HashMap::new(),
            wakers: HashMap::new(),
            scheduled: HashMap::new(),
            next_task: 0,
        }
    }

    /// Spawns a task; it is immediately ready and will be polled on the
    /// next [`Reactor::run`] iteration.
    pub fn spawn(&mut self, future: impl Future<Output = ()> + Send + 'static) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.insert(id, Box::pin(future));
        let scheduled = Arc::new(AtomicBool::new(true));
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            shared: Arc::clone(&self.shared),
            scheduled: Arc::clone(&scheduled),
        }));
        self.wakers.insert(id, waker);
        self.scheduled.insert(id, scheduled);
        self.shared.counters.spawned.fetch_add(1, Ordering::Relaxed);
        self.shared.push_ready(id);
        id
    }

    /// A handle for shutting the reactor down and sampling its counters
    /// from other threads.
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A timer handle tasks use to sleep on this reactor.
    pub fn timer(&self) -> TimerHandle {
        TimerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of live (parked or ready) tasks.
    pub fn live_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Fires every timer whose deadline has passed; returns the next
    /// pending deadline, if any.
    fn fire_due_timers(&self) -> Option<Instant> {
        let now = Instant::now();
        let mut due = Vec::new();
        let next = {
            let mut timers = self.shared.timers.lock().expect("reactor lock");
            while let Some(Reverse(head)) = timers.peek() {
                if head.deadline > now {
                    break;
                }
                let Reverse(entry) = timers.pop().expect("peeked entry exists");
                due.push(entry.waker);
            }
            timers.peek().map(|Reverse(e)| e.deadline)
        };
        self.shared
            .counters
            .timers_fired
            .fetch_add(due.len() as u64, Ordering::Relaxed);
        for waker in due {
            waker.wake();
        }
        next
    }

    /// Runs the event loop until every task completes or
    /// [`ReactorHandle::shutdown`] is called. This is the reactor thread's
    /// body; everything else talks to it through wakers and handles.
    pub fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if self.tasks.is_empty() {
                return;
            }
            let next_deadline = self.fire_due_timers();

            // Drain the current ready batch. Tasks woken while this batch
            // runs land in the next batch.
            let batch: Vec<TaskId> = {
                let mut ready = self.shared.ready.lock().expect("reactor lock");
                let batch = ready.drain(..).collect();
                self.shared.ready_hint.store(0, Ordering::Release);
                batch
            };

            if batch.is_empty() {
                // Briefly spin on the lock-free ready hint before parking:
                // a producer mid-burst refills the queue within
                // microseconds, and a park/unpark round-trip (two futex
                // syscalls) costs far more than the gap it bridges. Only
                // safe to spin when no timer deadline is pending.
                if next_deadline.is_none() {
                    let mut woke = false;
                    for _ in 0..SPIN_BEFORE_PARK {
                        if self.shared.ready_hint.load(Ordering::Acquire) > 0
                            || self.shared.shutdown.load(Ordering::Acquire)
                        {
                            woke = true;
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    if woke {
                        self.shared
                            .counters
                            .spin_recoveries
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                // Nothing ready: park until a waker fires or the next timer
                // is due.
                let guard = self.shared.ready.lock().expect("reactor lock");
                if guard.is_empty() && !self.shared.shutdown.load(Ordering::Acquire) {
                    match next_deadline {
                        Some(deadline) => {
                            let now = Instant::now();
                            if deadline > now {
                                drop(
                                    self.shared
                                        .parked
                                        .wait_timeout(guard, deadline - now)
                                        .expect("reactor lock"),
                                );
                            }
                        }
                        None => {
                            drop(self.shared.parked.wait(guard).expect("reactor lock"));
                        }
                    }
                }
                continue;
            }

            for id in batch {
                let Some(task) = self.tasks.get_mut(&id) else {
                    continue; // Spurious wake of a completed task.
                };
                // Clear the scheduled flag *before* polling: a wake that
                // arrives mid-poll must re-enqueue the task or its signal
                // would be lost.
                self.scheduled
                    .get(&id)
                    .expect("scheduled flag exists")
                    .store(false, Ordering::Release);
                let waker = self.wakers.get(&id).expect("waker exists").clone();
                let mut cx = Context::from_waker(&waker);
                self.shared.counters.polls.fetch_add(1, Ordering::Relaxed);
                if let Poll::Ready(()) = task.as_mut().poll(&mut cx) {
                    self.tasks.remove(&id);
                    self.wakers.remove(&id);
                    self.scheduled.remove(&id);
                    self.shared
                        .counters
                        .completed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Cross-thread control handle of a running [`Reactor`].
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<ReactorShared>,
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle").finish_non_exhaustive()
    }
}

impl ReactorHandle {
    /// Asks the reactor loop to exit after its current batch; pending tasks
    /// are abandoned. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.parked.notify_all();
    }

    /// Returns `true` once shutdown has been requested.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// A snapshot of the reactor's counters.
    pub fn stats(&self) -> ReactorStats {
        let c = &self.shared.counters;
        ReactorStats {
            spawned: c.spawned.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            polls: c.polls.load(Ordering::Relaxed),
            wakes: c.wakes.load(Ordering::Relaxed),
            coalesced_wakes: c.coalesced_wakes.load(Ordering::Relaxed),
            timers_fired: c.timers_fired.load(Ordering::Relaxed),
            spin_recoveries: c.spin_recoveries.load(Ordering::Relaxed),
        }
    }
}

/// Cooperatively yields the current task: it re-enqueues itself at the back
/// of the ready queue and resumes only after every other currently-ready
/// task has been polled. This is how a batch-dequeuing apply task with
/// backlog left gives its reactor siblings a turn (the budget re-yield).
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // The reactor cleared this task's scheduled flag before the
            // poll, so this wake re-enqueues it behind its siblings.
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Handle for creating timer futures on a reactor. Cloneable and cheap;
/// pass one into every task that needs to sleep.
#[derive(Clone)]
pub struct TimerHandle {
    shared: Arc<ReactorShared>,
}

impl std::fmt::Debug for TimerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerHandle").finish_non_exhaustive()
    }
}

impl TimerHandle {
    /// A future completing after `duration` of wall-clock time.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        Sleep {
            shared: Arc::clone(&self.shared),
            deadline: Instant::now() + duration,
        }
    }

    /// A future completing after `duration` of simulated time, mapping one
    /// simulated microsecond to one wall-clock microsecond — the same
    /// arithmetic [`crate::latency::LatencyModel`] samples use.
    pub fn sleep_sim(&self, duration: SimDuration) -> Sleep {
        self.sleep(Duration::from_micros(duration.as_micros()))
    }

    /// Samples a delay from `model` with `rng` and sleeps on it: the async
    /// equivalent of the discrete-event channel's per-message latency.
    pub fn sleep_model<R: rand::Rng + ?Sized>(
        &self,
        model: &crate::latency::LatencyModel,
        rng: &mut R,
    ) -> Sleep {
        self.sleep_sim(model.sample(rng))
    }
}

/// Future returned by the [`TimerHandle`] sleep constructors.
pub struct Sleep {
    shared: Arc<ReactorShared>,
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        // Re-register on every poll: wakers may change between polls, and a
        // stale duplicate entry merely re-polls the task once.
        let seq = self.shared.timer_seq.fetch_add(1, Ordering::Relaxed);
        self.shared
            .timers
            .lock()
            .expect("reactor lock")
            .push(Reverse(TimerEntry {
                deadline: self.deadline,
                seq,
                waker: cx.waker().clone(),
            }));
        self.shared.parked.notify_one();
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::pipe::{bounded_pipe, OverflowPolicy, UNBOUNDED};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_spawned_tasks_to_completion() {
        let mut reactor = Reactor::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            reactor.spawn(async move {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(reactor.live_tasks(), 10);
        let handle = reactor.handle();
        reactor.run();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        let stats = handle.stats();
        assert_eq!(stats.spawned, 10);
        assert_eq!(stats.completed, 10);
        assert!(stats.polls >= 10);
    }

    #[test]
    fn one_reactor_thread_multiplexes_many_pipes() {
        // Four pipes, four parked tasks, one reactor thread: every message
        // sent from the main thread must be consumed by the right task.
        let mut reactor = Reactor::new();
        let mut senders = Vec::new();
        let received: Vec<Arc<AtomicU64>> =
            (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for counter in &received {
            let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
            senders.push(tx);
            let counter = Arc::clone(counter);
            reactor.spawn(async move {
                while let Some(v) = rx.recv_async().await {
                    counter.fetch_add(v, Ordering::Relaxed);
                }
            });
        }
        let handle = reactor.handle();
        let thread = std::thread::spawn(move || reactor.run());
        for (i, tx) in senders.iter().enumerate() {
            for v in 0..100u64 {
                tx.send((i as u64 + 1) * 1000 + v).unwrap();
            }
        }
        drop(senders); // Disconnect: every task drains and completes.
        thread.join().unwrap();
        for (i, counter) in received.iter().enumerate() {
            let expected: u64 = (0..100u64).map(|v| (i as u64 + 1) * 1000 + v).sum();
            assert_eq!(counter.load(Ordering::Relaxed), expected, "pipe {i}");
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, 4);
        assert!(stats.wakes > 0);
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let mut reactor = Reactor::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let timer = reactor.timer();
        for (label, ms) in [(3u8, 30u64), (1, 5), (2, 15)] {
            let order = Arc::clone(&order);
            let timer = timer.clone();
            reactor.spawn(async move {
                timer.sleep(Duration::from_millis(ms)).await;
                order.lock().unwrap().push(label);
            });
        }
        let handle = reactor.handle();
        reactor.run();
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3]);
        assert!(handle.stats().timers_fired >= 3);
    }

    #[test]
    fn sleep_sim_maps_microseconds_one_to_one() {
        let mut reactor = Reactor::new();
        let timer = reactor.timer();
        let elapsed = Arc::new(Mutex::new(Duration::ZERO));
        let out = Arc::clone(&elapsed);
        reactor.spawn(async move {
            let start = Instant::now();
            timer.sleep_sim(SimDuration::from_millis(20)).await;
            *out.lock().unwrap() = start.elapsed();
        });
        reactor.run();
        let took = *elapsed.lock().unwrap();
        assert!(took >= Duration::from_millis(20), "slept only {took:?}");
    }

    #[test]
    fn latency_model_samples_drive_reactor_sleeps() {
        let mut reactor = Reactor::new();
        let timer = reactor.timer();
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        reactor.spawn(async move {
            let mut rng = StdRng::seed_from_u64(5);
            let model = LatencyModel::Uniform {
                min: SimDuration::from_micros(100),
                max: SimDuration::from_millis(2),
            };
            for _ in 0..5 {
                timer.sleep_model(&model, &mut rng).await;
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        reactor.run();
        assert_eq!(fired.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn shutdown_abandons_parked_tasks() {
        let mut reactor = Reactor::new();
        let (_tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
        reactor.spawn(async move {
            // Parks forever: the sender is never dropped nor written to.
            let _ = rx.recv_async().await;
        });
        let handle = reactor.handle();
        assert!(!handle.is_shut_down());
        let thread = std::thread::spawn(move || reactor.run());
        // Test-only wall-clock coordination: let the reactor park first.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_millis(10));
        handle.shutdown();
        thread.join().unwrap();
        assert!(handle.is_shut_down());
        let stats = handle.stats();
        assert_eq!(stats.spawned, 1);
        assert_eq!(stats.completed, 0, "the parked task was abandoned");
    }

    #[test]
    fn task_id_displays() {
        assert_eq!(TaskId(3).to_string(), "task3");
    }
}
