//! Per-cache invalidation fan-out for multi-cache deployments.
//!
//! Cache serializability is defined *per cache server*: every edge cache has
//! its own invalidation pipe from the database, with its own loss and
//! latency characteristics (TransEdge-style deployments pair many edge
//! nodes with independently unreliable links). [`InvalidationFanout`] holds
//! one [`InvalidationChannel`] per cache; an update's invalidations are
//! broadcast to every channel, and each channel drops/delays them
//! independently.
//!
//! Reproducibility: each channel's RNG seed is derived from
//! `(run_seed, CacheId)` with [`tcache_types::seeding::cache_channel_seed`],
//! so the loss pattern a cache observes is a pure function of the run seed
//! and its id — independent of how many other caches exist, of event
//! interleaving, and of registration order.

use crate::channel::{ChannelStats, InvalidationChannel};
use crate::fault::LossModel;
use crate::latency::LatencyModel;
use crate::pipe::OverflowPolicy;
use tcache_db::Invalidation;
use tcache_types::{cache_channel_seed, CacheId, SimTime};

/// Loss, latency and pipe shape of one cache's invalidation link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLink {
    /// The cache this link feeds.
    pub cache: CacheId,
    /// Loss model of the link.
    pub loss: LossModel,
    /// Latency model of the link.
    pub latency: LatencyModel,
    /// In-flight capacity of the link's delivery pipe (`usize::MAX` for an
    /// unbounded pipe).
    pub capacity: usize,
    /// What the pipe does with sends arriving while it is at capacity.
    pub policy: OverflowPolicy,
}

impl CacheLink {
    /// A link with uniform loss probability, constant delay and an
    /// unbounded pipe — the shape every experiment in the evaluation uses.
    pub fn uniform(cache: CacheId, loss: f64, delay: tcache_types::SimDuration) -> Self {
        CacheLink {
            cache,
            loss: LossModel::uniform(loss),
            latency: LatencyModel::Constant(delay),
            capacity: usize::MAX,
            policy: OverflowPolicy::Block,
        }
    }

    /// Bounds the link's delivery pipe to `capacity` in-flight messages
    /// with the given overflow policy.
    pub fn with_pipe(mut self, capacity: usize, policy: OverflowPolicy) -> Self {
        self.capacity = capacity;
        self.policy = policy;
        self
    }
}

/// The database side of a multi-cache deployment: one discrete-event
/// invalidation channel per cache, independently seeded.
#[derive(Debug)]
pub struct InvalidationFanout {
    channels: Vec<(CacheId, InvalidationChannel)>,
}

impl InvalidationFanout {
    /// Builds one channel per link, deriving each channel's seed from
    /// `(run_seed, link.cache)`.
    ///
    /// # Panics
    /// Panics if two links name the same cache.
    pub fn new(run_seed: u64, links: impl IntoIterator<Item = CacheLink>) -> Self {
        let mut channels: Vec<(CacheId, InvalidationChannel)> = Vec::new();
        for link in links {
            assert!(
                channels.iter().all(|&(id, _)| id != link.cache),
                "duplicate channel for {}",
                link.cache
            );
            let seed = cache_channel_seed(run_seed, link.cache);
            channels.push((
                link.cache,
                InvalidationChannel::with_pipe(
                    link.loss,
                    link.latency,
                    seed,
                    link.capacity,
                    link.policy,
                ),
            ));
        }
        InvalidationFanout { channels }
    }

    /// Number of caches fanned out to.
    pub fn cache_count(&self) -> usize {
        self.channels.len()
    }

    /// The cache ids in registration order.
    pub fn cache_ids(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.channels.iter().map(|&(id, _)| id)
    }

    /// Broadcasts a batch of invalidations to every cache's channel at
    /// simulated time `now`. Each channel applies its own loss and latency
    /// independently.
    pub fn broadcast(&mut self, now: SimTime, invalidations: &[Invalidation]) {
        for (_, channel) in &mut self.channels {
            channel.send(now, invalidations.iter().copied());
        }
    }

    /// Submits invalidations to a single cache's channel (unicast).
    ///
    /// # Panics
    /// Panics if `cache` has no registered channel.
    pub fn send_to(
        &mut self,
        cache: CacheId,
        now: SimTime,
        invalidations: impl IntoIterator<Item = Invalidation>,
    ) {
        self.channel_mut(cache)
            .unwrap_or_else(|| panic!("no channel registered for {cache}"))
            .send(now, invalidations);
    }

    /// Pops every invalidation due by `now` across all channels, tagged with
    /// the cache it is addressed to. Channels are drained in registration
    /// order (deliveries to different caches never interact, so this order
    /// only needs to be deterministic).
    pub fn due(&mut self, now: SimTime) -> Vec<(CacheId, Invalidation)> {
        let mut out = Vec::new();
        for (id, channel) in &mut self.channels {
            for inv in channel.due(now) {
                out.push((*id, inv));
            }
        }
        out
    }

    /// The earliest pending delivery time across all channels.
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.channels
            .iter()
            .filter_map(|(_, c)| c.next_delivery_at())
            .min()
    }

    /// Total invalidations currently in flight across all channels.
    pub fn in_flight(&self) -> usize {
        self.channels.iter().map(|(_, c)| c.in_flight()).sum()
    }

    /// Per-cache channel statistics, in registration order.
    pub fn stats(&self) -> Vec<(CacheId, ChannelStats)> {
        self.channels.iter().map(|(id, c)| (*id, c.stats())).collect()
    }

    /// Statistics summed over every cache's channel.
    pub fn aggregate_stats(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for (_, channel) in &self.channels {
            total.merge(channel.stats());
        }
        total
    }

    /// Mutable access to one cache's channel.
    pub fn channel_mut(&mut self, cache: CacheId) -> Option<&mut InvalidationChannel> {
        self.channels
            .iter_mut()
            .find(|&&mut (id, _)| id == cache)
            .map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, SimDuration, TxnId, Version};

    fn inv(o: u64, v: u64) -> Invalidation {
        Invalidation::new(ObjectId(o), Version(v), TxnId(v))
    }

    fn links(losses: &[f64]) -> Vec<CacheLink> {
        losses
            .iter()
            .enumerate()
            .map(|(i, &loss)| {
                CacheLink::uniform(CacheId(i as u32), loss, SimDuration::from_millis(10))
            })
            .collect()
    }

    #[test]
    fn broadcast_reaches_every_cache_independently() {
        let mut fanout = InvalidationFanout::new(1, links(&[0.0, 0.0]));
        assert_eq!(fanout.cache_count(), 2);
        fanout.broadcast(SimTime::ZERO, &[inv(1, 1), inv(2, 1)]);
        assert_eq!(fanout.in_flight(), 4);
        assert_eq!(fanout.next_delivery_at(), Some(SimTime::from_millis(10)));
        let due = fanout.due(SimTime::from_millis(10));
        assert_eq!(due.len(), 4);
        assert_eq!(due.iter().filter(|&&(id, _)| id == CacheId(0)).count(), 2);
        assert_eq!(due.iter().filter(|&&(id, _)| id == CacheId(1)).count(), 2);
        let agg = fanout.aggregate_stats();
        assert_eq!(agg.sent, 4);
        assert_eq!(agg.delivered, 4);
    }

    #[test]
    fn per_cache_loss_is_heterogeneous_and_observed() {
        let mut fanout = InvalidationFanout::new(9, links(&[0.0, 0.5]));
        for i in 0..4_000u64 {
            fanout.broadcast(SimTime::from_millis(i), &[inv(i, i + 1)]);
        }
        let stats = fanout.stats();
        assert_eq!(stats[0].1.loss_ratio(), 0.0);
        let lossy = stats[1].1.loss_ratio();
        assert!((lossy - 0.5).abs() < 0.05, "lossy channel ratio {lossy}");
    }

    #[test]
    fn channel_seeds_are_stable_per_cache_id() {
        // The loss pattern of cache 1 must not depend on how many other
        // caches the fan-out hosts.
        let drops = |n_caches: usize| -> u64 {
            let mut losses = vec![0.3; n_caches];
            losses[0] = 0.0;
            let mut fanout = InvalidationFanout::new(7, links(&losses));
            for i in 0..2_000u64 {
                fanout.broadcast(SimTime::from_millis(i), &[inv(i, i + 1)]);
            }
            fanout
                .stats()
                .iter()
                .find(|&&(id, _)| id == CacheId(1))
                .unwrap()
                .1
                .dropped
        };
        assert_eq!(drops(2), drops(4));
    }

    #[test]
    fn unicast_targets_one_cache() {
        let mut fanout = InvalidationFanout::new(1, links(&[0.0, 0.0]));
        fanout.send_to(CacheId(1), SimTime::ZERO, [inv(5, 1)]);
        let due = fanout.due(SimTime::from_secs(1));
        assert_eq!(due, vec![(CacheId(1), inv(5, 1))]);
        assert!(fanout.channel_mut(CacheId(9)).is_none());
        assert_eq!(fanout.cache_ids().collect::<Vec<_>>(), vec![CacheId(0), CacheId(1)]);
    }

    #[test]
    fn bounded_links_report_per_cache_overflow() {
        // Cache 0 keeps an unbounded pipe, cache 1's pipe holds only two
        // in-flight messages and sheds the oldest. Overflow must show up on
        // cache 1's counters alone, and in the aggregate.
        let links = vec![
            CacheLink::uniform(CacheId(0), 0.0, SimDuration::from_millis(10)),
            CacheLink::uniform(CacheId(1), 0.0, SimDuration::from_millis(10))
                .with_pipe(2, crate::pipe::OverflowPolicy::DropOldest),
        ];
        let mut fanout = InvalidationFanout::new(1, links);
        fanout.broadcast(SimTime::ZERO, &[inv(1, 1), inv(2, 1), inv(3, 1), inv(4, 1)]);
        let stats = fanout.stats();
        assert_eq!(stats[0].1.overflowed, 0);
        assert_eq!(stats[1].1.overflowed, 2);
        assert_eq!(fanout.aggregate_stats().overflowed, 2);
        assert_eq!(fanout.in_flight(), 4 + 2);
    }

    #[test]
    #[should_panic(expected = "duplicate channel")]
    fn duplicate_cache_ids_panic() {
        let _ = InvalidationFanout::new(1, links(&[0.0]).into_iter().chain(links(&[0.1])));
    }
}
