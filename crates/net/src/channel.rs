//! Discrete-event delivery queue for invalidations.
//!
//! [`InvalidationChannel`] is the simulated DB→cache pipe: invalidations are
//! submitted at their send time, individually dropped according to the
//! configured [`LossModel`], delayed according to the [`LatencyModel`], and
//! handed back to the harness once simulated time passes their delivery
//! time. Deliveries for the same object may be reordered if the latency
//! model produces non-monotone delays — exactly the behaviour the paper's
//! best-effort pipelines exhibit.

use crate::fault::{LossModel, LossState};
use crate::latency::LatencyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tcache_db::Invalidation;
use tcache_types::{SimTime, TCacheResult};

/// An invalidation waiting to be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDelivery {
    /// When the invalidation reaches the cache.
    pub deliver_at: SimTime,
    /// The invalidation itself.
    pub invalidation: Invalidation,
    /// Monotone sequence number used to break delivery-time ties in send
    /// order (keeps the simulation deterministic).
    seq: u64,
}

impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Channel-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Invalidations submitted by the database.
    pub sent: u64,
    /// Invalidations dropped by the loss model.
    pub dropped: u64,
    /// Invalidations handed to the cache.
    pub delivered: u64,
}

impl ChannelStats {
    /// Observed loss ratio (0 when nothing was sent).
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    /// Accumulates another channel's counters into this one (used to build
    /// the aggregate view over a multi-cache fan-out).
    pub fn merge(&mut self, other: ChannelStats) {
        self.sent += other.sent;
        self.dropped += other.dropped;
        self.delivered += other.delivered;
    }
}

/// The simulated unreliable invalidation channel.
#[derive(Debug)]
pub struct InvalidationChannel {
    loss: LossState,
    latency: LatencyModel,
    rng: StdRng,
    queue: BinaryHeap<Reverse<PendingDelivery>>,
    stats: ChannelStats,
    next_seq: u64,
}

impl InvalidationChannel {
    /// Creates a channel with the given loss and latency models, seeded for
    /// reproducibility.
    pub fn new(loss: LossModel, latency: LatencyModel, seed: u64) -> Self {
        InvalidationChannel {
            loss: LossState::new(loss),
            latency,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            stats: ChannelStats::default(),
            next_seq: 0,
        }
    }

    /// A channel matching the paper's experimental setup: 20 % uniform loss
    /// and a constant modest delay.
    pub fn paper_default(seed: u64) -> Self {
        InvalidationChannel::new(LossModel::paper_default(), LatencyModel::default(), seed)
    }

    /// A perfectly reliable, zero-delay channel (useful in tests and for
    /// the Theorem 1 configuration).
    pub fn reliable(seed: u64) -> Self {
        InvalidationChannel::new(
            LossModel::None,
            LatencyModel::Constant(tcache_types::SimDuration::ZERO),
            seed,
        )
    }

    /// Submits a batch of invalidations at simulated time `now`. Messages
    /// surviving the loss model are queued for later delivery.
    pub fn send(&mut self, now: SimTime, invalidations: impl IntoIterator<Item = Invalidation>) {
        for inv in invalidations {
            self.stats.sent += 1;
            if self.loss.should_drop(&mut self.rng) {
                self.stats.dropped += 1;
                continue;
            }
            let delay = self.latency.sample(&mut self.rng);
            self.queue.push(Reverse(PendingDelivery {
                deliver_at: now + delay,
                invalidation: inv,
                seq: self.next_seq,
            }));
            self.next_seq += 1;
        }
    }

    /// Pops every invalidation whose delivery time is `<= now`, in delivery
    /// order.
    pub fn due(&mut self, now: SimTime) -> Vec<Invalidation> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(delivery) = self.queue.pop().expect("peeked entry exists");
            self.stats.delivered += 1;
            out.push(delivery.invalidation);
        }
        out
    }

    /// The delivery time of the next pending invalidation, if any; the
    /// simulation harness uses this to schedule its next channel event.
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(d)| d.deliver_at)
    }

    /// Number of invalidations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Channel statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Delivers everything currently in flight regardless of time; returns
    /// the drained invalidations. Used when shutting an experiment down.
    pub fn drain(&mut self) -> Vec<Invalidation> {
        let mut out = Vec::new();
        while let Some(Reverse(d)) = self.queue.pop() {
            self.stats.delivered += 1;
            out.push(d.invalidation);
        }
        out
    }

    /// Applies `f` to every delivered invalidation that is due at `now`,
    /// forwarding errors from the consumer.
    pub fn deliver_due<F>(&mut self, now: SimTime, mut f: F) -> TCacheResult<()>
    where
        F: FnMut(Invalidation) -> TCacheResult<()>,
    {
        for inv in self.due(now) {
            f(inv)?;
        }
        Ok(())
    }
}

#[cfg(test)]
impl InvalidationChannel {
    /// Test helper: drain all pending messages in delivery order.
    fn drain_ordered(&mut self) -> Vec<Invalidation> {
        let mut out = Vec::new();
        while let Some(Reverse(d)) = self.queue.pop() {
            out.push(d.invalidation);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, SimDuration, TxnId, Version};

    fn inv(o: u64, v: u64) -> Invalidation {
        Invalidation::new(ObjectId(o), Version(v), TxnId(v))
    }

    #[test]
    fn reliable_channel_delivers_everything_in_order() {
        let mut ch = InvalidationChannel::reliable(1);
        ch.send(SimTime::ZERO, vec![inv(1, 1), inv(2, 1), inv(3, 1)]);
        assert_eq!(ch.in_flight(), 3);
        let due = ch.due(SimTime::ZERO);
        assert_eq!(due.len(), 3);
        assert_eq!(due[0].object, ObjectId(1));
        assert_eq!(due[2].object, ObjectId(3));
        assert_eq!(ch.stats().delivered, 3);
        assert_eq!(ch.stats().dropped, 0);
        assert_eq!(ch.stats().loss_ratio(), 0.0);
    }

    #[test]
    fn messages_are_not_delivered_early() {
        let latency = LatencyModel::Constant(SimDuration::from_millis(100));
        let mut ch = InvalidationChannel::new(LossModel::None, latency, 1);
        ch.send(SimTime::ZERO, vec![inv(1, 1)]);
        assert!(ch.due(SimTime::from_millis(50)).is_empty());
        assert_eq!(ch.next_delivery_at(), Some(SimTime::from_millis(100)));
        assert_eq!(ch.due(SimTime::from_millis(100)).len(), 1);
        assert_eq!(ch.next_delivery_at(), None);
    }

    #[test]
    fn uniform_loss_drops_roughly_the_configured_fraction() {
        let mut ch = InvalidationChannel::paper_default(7);
        for i in 0..10_000u64 {
            ch.send(SimTime::from_millis(i), vec![inv(i, i)]);
        }
        let stats = ch.stats();
        assert_eq!(stats.sent, 10_000);
        let ratio = stats.loss_ratio();
        assert!((ratio - 0.2).abs() < 0.03, "loss ratio {ratio}");
    }

    #[test]
    fn drain_flushes_in_flight_messages() {
        let latency = LatencyModel::Constant(SimDuration::from_secs(1000));
        let mut ch = InvalidationChannel::new(LossModel::None, latency, 1);
        ch.send(SimTime::ZERO, vec![inv(1, 1), inv(2, 2)]);
        assert_eq!(ch.in_flight(), 2);
        let drained = ch.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(ch.in_flight(), 0);
        assert_eq!(ch.stats().delivered, 2);
    }

    #[test]
    fn deliver_due_invokes_consumer_for_each_message() {
        let mut ch = InvalidationChannel::reliable(1);
        ch.send(SimTime::ZERO, vec![inv(1, 1), inv(2, 2)]);
        let mut seen = Vec::new();
        ch.deliver_due(SimTime::ZERO, |i| {
            seen.push(i.object);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn variable_latency_can_reorder_messages() {
        // With a wide uniform latency, two messages sent in order can arrive
        // out of order. Send many pairs and check at least one inversion.
        let latency = LatencyModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(1000),
        };
        let mut ch = InvalidationChannel::new(LossModel::None, latency, 3);
        for i in 0..200u64 {
            ch.send(SimTime::from_millis(i), vec![inv(i, i)]);
        }
        let all = ch.drain_ordered();
        let mut inversions = 0;
        for w in all.windows(2) {
            if w[1].txn < w[0].txn {
                inversions += 1;
            }
        }
        assert!(inversions > 0, "expected at least one reordering");
    }

    #[test]
    fn same_delivery_time_breaks_ties_by_send_order() {
        let mut ch = InvalidationChannel::reliable(1);
        ch.send(SimTime::ZERO, vec![inv(9, 1)]);
        ch.send(SimTime::ZERO, vec![inv(3, 2)]);
        let due = ch.due(SimTime::ZERO);
        assert_eq!(due[0].object, ObjectId(9));
        assert_eq!(due[1].object, ObjectId(3));
    }
}
