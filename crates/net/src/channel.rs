//! Discrete-event delivery queue for invalidations.
//!
//! [`InvalidationChannel`] is the simulated DB→cache pipe: invalidations are
//! submitted at their send time, individually dropped according to the
//! configured [`LossModel`], delayed according to the [`LatencyModel`], and
//! handed back to the harness once simulated time passes their delivery
//! time. Deliveries for the same object may be reordered if the latency
//! model produces non-monotone delays — exactly the behaviour the paper's
//! best-effort pipelines exhibit.
//!
//! The channel can additionally model a *bounded* delivery pipe: with a
//! finite capacity, messages arriving while the pipe is full are handled by
//! an [`OverflowPolicy`] — dropped (newest or oldest first, counted in
//! [`ChannelStats::overflowed`]) or admitted late behind the backlog
//! (`Block`, counted in [`ChannelStats::stalled`]), mirroring the live
//! [`crate::pipe`] semantics inside the discrete-event simulation.

use crate::fault::{LossModel, LossState};
use crate::latency::LatencyModel;
use crate::pipe::OverflowPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tcache_db::Invalidation;
use tcache_types::{SimDuration, SimTime, TCacheResult};

/// An invalidation waiting to be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDelivery {
    /// When the invalidation reaches the cache.
    pub deliver_at: SimTime,
    /// The invalidation itself.
    pub invalidation: Invalidation,
    /// Monotone sequence number used to break delivery-time ties in send
    /// order (keeps the simulation deterministic).
    seq: u64,
}

impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Channel-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Invalidations submitted by the database.
    pub sent: u64,
    /// Invalidations dropped by the loss model.
    pub dropped: u64,
    /// Invalidations handed to the cache.
    pub delivered: u64,
    /// Invalidations lost because the pipe was at capacity (per-cache
    /// overflow under `DropNewest` / `DropOldest`).
    pub overflowed: u64,
    /// Sends that found the pipe at capacity under the `Block` policy and
    /// were admitted late behind the backlog (publish-side stalls).
    pub stalled: u64,
}

impl ChannelStats {
    /// Observed loss ratio (0 when nothing was sent).
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    /// Observed overflow ratio: fraction of sent messages lost to a full
    /// pipe (0 when nothing was sent).
    pub fn overflow_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.overflowed as f64 / self.sent as f64
        }
    }

    /// Accumulates another channel's counters into this one (used to build
    /// the aggregate view over a multi-cache fan-out). Sums saturate
    /// instead of wrapping so long sweeps cannot corrupt aggregates.
    pub fn merge(&mut self, other: ChannelStats) {
        self.sent = self.sent.saturating_add(other.sent);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.delivered = self.delivered.saturating_add(other.delivered);
        self.overflowed = self.overflowed.saturating_add(other.overflowed);
        self.stalled = self.stalled.saturating_add(other.stalled);
    }
}

/// The simulated unreliable invalidation channel.
#[derive(Debug)]
pub struct InvalidationChannel {
    loss: LossState,
    latency: LatencyModel,
    rng: StdRng,
    queue: BinaryHeap<Reverse<PendingDelivery>>,
    stats: ChannelStats,
    next_seq: u64,
    /// In-flight messages admitted before the overflow policy engages.
    capacity: usize,
    policy: OverflowPolicy,
    /// Additional delay added on top of every sampled latency — a fault
    /// plan's delay spike. Applied at send time, so messages already in
    /// flight keep their original delivery times.
    extra_delay: SimDuration,
    /// `Block` bookkeeping: one entry per occupied pipe slot, holding the
    /// time that slot frees (the occupant's delivery time). A message
    /// finding every slot busy is admitted only when the earliest slot
    /// frees — so successive over-capacity sends queue up behind each
    /// other, exactly like a c-server queue with c = capacity.
    block_slots: BinaryHeap<Reverse<SimTime>>,
}

impl InvalidationChannel {
    /// Creates a channel with the given loss and latency models, seeded for
    /// reproducibility. The pipe is unbounded; use
    /// [`InvalidationChannel::with_pipe`] to bound it.
    pub fn new(loss: LossModel, latency: LatencyModel, seed: u64) -> Self {
        InvalidationChannel::with_pipe(loss, latency, seed, usize::MAX, OverflowPolicy::Block)
    }

    /// Creates a channel whose delivery pipe holds at most `capacity`
    /// in-flight messages, applying `policy` when a send finds it full.
    /// `capacity` is clamped to at least 1.
    pub fn with_pipe(
        loss: LossModel,
        latency: LatencyModel,
        seed: u64,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> Self {
        InvalidationChannel {
            loss: LossState::new(loss),
            latency,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            stats: ChannelStats::default(),
            next_seq: 0,
            capacity: capacity.max(1),
            policy,
            block_slots: BinaryHeap::new(),
            extra_delay: SimDuration::ZERO,
        }
    }

    /// Sets the delay-spike surcharge added to every subsequent send's
    /// sampled latency (zero clears the spike). The latency RNG stream is
    /// untouched: the same delays are sampled, merely shifted.
    pub fn set_extra_delay(&mut self, extra: SimDuration) {
        self.extra_delay = extra;
    }

    /// A channel matching the paper's experimental setup: 20 % uniform loss
    /// and a constant modest delay.
    pub fn paper_default(seed: u64) -> Self {
        InvalidationChannel::new(LossModel::paper_default(), LatencyModel::default(), seed)
    }

    /// A perfectly reliable, zero-delay channel (useful in tests and for
    /// the Theorem 1 configuration).
    pub fn reliable(seed: u64) -> Self {
        InvalidationChannel::new(
            LossModel::None,
            LatencyModel::Constant(tcache_types::SimDuration::ZERO),
            seed,
        )
    }

    /// Submits a batch of invalidations at simulated time `now`. Messages
    /// surviving the loss model are queued for later delivery; once the
    /// pipe holds `capacity` messages, the overflow policy decides what
    /// happens: `DropNewest` rejects the incoming message, `DropOldest`
    /// evicts the earliest pending delivery, and `Block` admits the message
    /// late — it occupies a pipe slot only once one frees, so successive
    /// over-capacity sends queue up behind each other (a stall of the
    /// publisher, counted per message that actually had to wait).
    pub fn send(&mut self, now: SimTime, invalidations: impl IntoIterator<Item = Invalidation>) {
        for inv in invalidations {
            self.stats.sent += 1;
            if self.loss.should_drop(&mut self.rng) {
                self.stats.dropped += 1;
                continue;
            }
            let delay = self.latency.sample(&mut self.rng) + self.extra_delay;
            let mut send_at = now;
            if self.policy == OverflowPolicy::Block && self.capacity != usize::MAX {
                // Slot bookkeeping: each of the `capacity` slots is busy
                // until its occupant's delivery time. Take the earliest
                // slot; if it is still busy, the publisher stalls until it
                // frees.
                if self.block_slots.len() >= self.capacity {
                    let Reverse(free_at) =
                        self.block_slots.pop().expect("slots at capacity");
                    if free_at > now {
                        self.stats.stalled += 1;
                        send_at = free_at;
                    }
                }
                self.block_slots.push(Reverse(send_at + delay));
            } else if self.queue.len() >= self.capacity {
                match self.policy {
                    OverflowPolicy::DropNewest => {
                        self.stats.overflowed += 1;
                        continue;
                    }
                    OverflowPolicy::DropOldest => {
                        // Evict the oldest *sent* message (smallest seq),
                        // mirroring the live pipe's FIFO eviction — under
                        // non-monotone latency that is not necessarily the
                        // earliest delivery, so the heap head won't do.
                        // O(capacity), and only paid on overflow.
                        let mut entries = std::mem::take(&mut self.queue).into_vec();
                        if let Some(pos) = entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, Reverse(d))| d.seq)
                            .map(|(i, _)| i)
                        {
                            entries.swap_remove(pos);
                        }
                        self.queue = entries.into();
                        self.stats.overflowed += 1;
                    }
                    OverflowPolicy::Block => unreachable!("handled above"),
                }
            }
            self.queue.push(Reverse(PendingDelivery {
                deliver_at: send_at + delay,
                invalidation: inv,
                seq: self.next_seq,
            }));
            self.next_seq += 1;
        }
    }

    /// Pops every invalidation whose delivery time is `<= now`, in delivery
    /// order.
    pub fn due(&mut self, now: SimTime) -> Vec<Invalidation> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(delivery) = self.queue.pop().expect("peeked entry exists");
            self.stats.delivered += 1;
            out.push(delivery.invalidation);
        }
        out
    }

    /// The delivery time of the next pending invalidation, if any; the
    /// simulation harness uses this to schedule its next channel event.
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(d)| d.deliver_at)
    }

    /// Number of invalidations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Channel statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Delivers everything currently in flight regardless of time; returns
    /// the drained invalidations. Used when shutting an experiment down.
    pub fn drain(&mut self) -> Vec<Invalidation> {
        let mut out = Vec::new();
        while let Some(Reverse(d)) = self.queue.pop() {
            self.stats.delivered += 1;
            out.push(d.invalidation);
        }
        out
    }

    /// Applies `f` to every delivered invalidation that is due at `now`,
    /// forwarding errors from the consumer.
    pub fn deliver_due<F>(&mut self, now: SimTime, mut f: F) -> TCacheResult<()>
    where
        F: FnMut(Invalidation) -> TCacheResult<()>,
    {
        for inv in self.due(now) {
            f(inv)?;
        }
        Ok(())
    }
}

#[cfg(test)]
impl InvalidationChannel {
    /// Test helper: drain all pending messages in delivery order.
    fn drain_ordered(&mut self) -> Vec<Invalidation> {
        let mut out = Vec::new();
        while let Some(Reverse(d)) = self.queue.pop() {
            out.push(d.invalidation);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, SimDuration, TxnId, Version};

    fn inv(o: u64, v: u64) -> Invalidation {
        Invalidation::new(ObjectId(o), Version(v), TxnId(v))
    }

    #[test]
    fn reliable_channel_delivers_everything_in_order() {
        let mut ch = InvalidationChannel::reliable(1);
        ch.send(SimTime::ZERO, vec![inv(1, 1), inv(2, 1), inv(3, 1)]);
        assert_eq!(ch.in_flight(), 3);
        let due = ch.due(SimTime::ZERO);
        assert_eq!(due.len(), 3);
        assert_eq!(due[0].object, ObjectId(1));
        assert_eq!(due[2].object, ObjectId(3));
        assert_eq!(ch.stats().delivered, 3);
        assert_eq!(ch.stats().dropped, 0);
        assert_eq!(ch.stats().loss_ratio(), 0.0);
    }

    #[test]
    fn messages_are_not_delivered_early() {
        let latency = LatencyModel::Constant(SimDuration::from_millis(100));
        let mut ch = InvalidationChannel::new(LossModel::None, latency, 1);
        ch.send(SimTime::ZERO, vec![inv(1, 1)]);
        assert!(ch.due(SimTime::from_millis(50)).is_empty());
        assert_eq!(ch.next_delivery_at(), Some(SimTime::from_millis(100)));
        assert_eq!(ch.due(SimTime::from_millis(100)).len(), 1);
        assert_eq!(ch.next_delivery_at(), None);
    }

    #[test]
    fn uniform_loss_drops_roughly_the_configured_fraction() {
        let mut ch = InvalidationChannel::paper_default(7);
        for i in 0..10_000u64 {
            ch.send(SimTime::from_millis(i), vec![inv(i, i)]);
        }
        let stats = ch.stats();
        assert_eq!(stats.sent, 10_000);
        let ratio = stats.loss_ratio();
        assert!((ratio - 0.2).abs() < 0.03, "loss ratio {ratio}");
    }

    #[test]
    fn drain_flushes_in_flight_messages() {
        let latency = LatencyModel::Constant(SimDuration::from_secs(1000));
        let mut ch = InvalidationChannel::new(LossModel::None, latency, 1);
        ch.send(SimTime::ZERO, vec![inv(1, 1), inv(2, 2)]);
        assert_eq!(ch.in_flight(), 2);
        let drained = ch.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(ch.in_flight(), 0);
        assert_eq!(ch.stats().delivered, 2);
    }

    #[test]
    fn deliver_due_invokes_consumer_for_each_message() {
        let mut ch = InvalidationChannel::reliable(1);
        ch.send(SimTime::ZERO, vec![inv(1, 1), inv(2, 2)]);
        let mut seen = Vec::new();
        ch.deliver_due(SimTime::ZERO, |i| {
            seen.push(i.object);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn variable_latency_can_reorder_messages() {
        // With a wide uniform latency, two messages sent in order can arrive
        // out of order. Send many pairs and check at least one inversion.
        let latency = LatencyModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(1000),
        };
        let mut ch = InvalidationChannel::new(LossModel::None, latency, 3);
        for i in 0..200u64 {
            ch.send(SimTime::from_millis(i), vec![inv(i, i)]);
        }
        let all = ch.drain_ordered();
        let mut inversions = 0;
        for w in all.windows(2) {
            if w[1].txn < w[0].txn {
                inversions += 1;
            }
        }
        assert!(inversions > 0, "expected at least one reordering");
    }

    #[test]
    fn bounded_channel_drop_newest_rejects_the_incoming_message() {
        let latency = LatencyModel::Constant(SimDuration::from_millis(100));
        let mut ch = InvalidationChannel::with_pipe(
            LossModel::None,
            latency,
            1,
            2,
            OverflowPolicy::DropNewest,
        );
        ch.send(SimTime::ZERO, (0..5u64).map(|i| inv(i, 1)));
        assert_eq!(ch.in_flight(), 2);
        let stats = ch.stats();
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.overflowed, 3);
        assert_eq!(stats.stalled, 0);
        assert!((stats.overflow_ratio() - 0.6).abs() < 1e-9);
        // The two oldest messages survived.
        let due: Vec<_> = ch.due(SimTime::from_secs(1));
        assert_eq!(due.iter().map(|i| i.object).collect::<Vec<_>>(), vec![
            ObjectId(0),
            ObjectId(1)
        ]);
    }

    #[test]
    fn bounded_channel_drop_oldest_keeps_the_freshest_messages() {
        let latency = LatencyModel::Constant(SimDuration::from_millis(100));
        let mut ch = InvalidationChannel::with_pipe(
            LossModel::None,
            latency,
            1,
            2,
            OverflowPolicy::DropOldest,
        );
        ch.send(SimTime::ZERO, (0..5u64).map(|i| inv(i, 1)));
        assert_eq!(ch.in_flight(), 2);
        assert_eq!(ch.stats().overflowed, 3);
        let due: Vec<_> = ch.due(SimTime::from_secs(1));
        assert_eq!(due.iter().map(|i| i.object).collect::<Vec<_>>(), vec![
            ObjectId(3),
            ObjectId(4)
        ]);
    }

    #[test]
    fn drop_oldest_evicts_by_send_order_not_delivery_order() {
        // With a wide uniform latency the earliest *delivery* need not be
        // the oldest *send*; eviction must follow send order (FIFO, like
        // the live pipe) no matter what delays were sampled.
        let latency = LatencyModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_secs(1000),
        };
        let mut ch = InvalidationChannel::with_pipe(
            LossModel::None,
            latency,
            3,
            2,
            OverflowPolicy::DropOldest,
        );
        ch.send(SimTime::ZERO, (0..3u64).map(|i| inv(i, 1)));
        assert_eq!(ch.stats().overflowed, 1);
        let mut survivors: Vec<_> = ch.drain().iter().map(|i| i.object).collect();
        survivors.sort();
        assert_eq!(
            survivors,
            vec![ObjectId(1), ObjectId(2)],
            "object 0 (the oldest send) must be the evicted one"
        );
    }

    #[test]
    fn bounded_channel_block_delays_behind_the_backlog() {
        let latency = LatencyModel::Constant(SimDuration::from_millis(100));
        let mut ch = InvalidationChannel::with_pipe(
            LossModel::None,
            latency,
            1,
            1,
            OverflowPolicy::Block,
        );
        ch.send(SimTime::ZERO, vec![inv(1, 1), inv(2, 1), inv(3, 1)]);
        // Nothing is lost…
        assert_eq!(ch.in_flight(), 3);
        assert_eq!(ch.stats().overflowed, 0);
        assert_eq!(ch.stats().stalled, 2);
        // …but each message only enters the single-slot pipe once its
        // predecessor has delivered: the backlog serializes, so the three
        // messages arrive a full latency apart (100 / 200 / 300 ms).
        assert_eq!(ch.due(SimTime::from_millis(100)).len(), 1);
        assert_eq!(ch.next_delivery_at(), Some(SimTime::from_millis(200)));
        assert_eq!(ch.due(SimTime::from_millis(200)).len(), 1);
        assert_eq!(ch.next_delivery_at(), Some(SimTime::from_millis(300)));
        // A later send that finds a free slot does not count as a stall.
        ch.send(SimTime::from_millis(400), vec![inv(4, 1)]);
        assert_eq!(ch.stats().stalled, 2);
        assert_eq!(ch.next_delivery_at(), Some(SimTime::from_millis(300)));
    }

    #[test]
    fn delay_spikes_shift_only_subsequent_sends() {
        let latency = LatencyModel::Constant(SimDuration::from_millis(10));
        let mut ch = InvalidationChannel::new(LossModel::None, latency, 1);
        ch.send(SimTime::ZERO, vec![inv(1, 1)]);
        ch.set_extra_delay(SimDuration::from_millis(500));
        ch.send(SimTime::ZERO, vec![inv(2, 1)]);
        // The in-flight message keeps its original delivery time…
        assert_eq!(ch.due(SimTime::from_millis(10)).len(), 1);
        // …while the spiked send arrives only after latency + spike.
        assert_eq!(ch.next_delivery_at(), Some(SimTime::from_millis(510)));
        ch.set_extra_delay(SimDuration::ZERO);
        ch.send(SimTime::from_millis(600), vec![inv(3, 1)]);
        assert_eq!(ch.due(SimTime::from_millis(610)).len(), 2, "spike cleared");
    }

    #[test]
    fn same_delivery_time_breaks_ties_by_send_order() {
        let mut ch = InvalidationChannel::reliable(1);
        ch.send(SimTime::ZERO, vec![inv(9, 1)]);
        ch.send(SimTime::ZERO, vec![inv(3, 2)]);
        let due = ch.due(SimTime::ZERO);
        assert_eq!(due[0].object, ObjectId(9));
        assert_eq!(due[1].object, ObjectId(3));
    }
}
