//! Bounded invalidation pipes with explicit overflow policies.
//!
//! The live transport's original queue was unbounded: a slow cache simply
//! grew its queue without limit and the system gave no backpressure signal.
//! [`bounded_pipe`] replaces it with a capacity-limited MPSC queue whose
//! behaviour at capacity is an explicit [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Block`] — the sender waits for a free slot; the
//!   commit path absorbs the backpressure (and the stall is counted so it
//!   can be attributed).
//! * [`OverflowPolicy::DropNewest`] — the incoming message is rejected; the
//!   cache keeps its oldest pending invalidations.
//! * [`OverflowPolicy::DropOldest`] — the oldest pending message is evicted
//!   to make room; the cache always sees the freshest invalidations.
//!
//! Every transition is counted in [`PipeStats`] so overflow and stalls are
//! observable per cache. The receiving side supports blocking, timed and
//! *asynchronous* receives; [`PipeReceiver::recv_async`] registers a
//! [`std::task::Waker`], which is what lets one reactor thread multiplex
//! many caches' pipes (see [`crate::reactor`]).

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// What a pipe does with an incoming message while it is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// The sender blocks until a slot frees (backpressure onto the
    /// publisher / commit path).
    #[default]
    Block,
    /// The incoming message is dropped; pending messages are kept.
    DropNewest,
    /// The oldest pending message is evicted to admit the incoming one.
    DropOldest,
}

impl std::fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverflowPolicy::Block => write!(f, "block"),
            OverflowPolicy::DropNewest => write!(f, "drop-newest"),
            OverflowPolicy::DropOldest => write!(f, "drop-oldest"),
        }
    }
}

/// Monotone counters describing one pipe's traffic. All counters are
/// atomics; snapshot them with [`PipeStats::snapshot`].
#[derive(Debug, Default)]
pub struct PipeStats {
    enqueued: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
    received: AtomicU64,
    stalled_sends: AtomicU64,
    stall_micros: AtomicU64,
    batched_polls: AtomicU64,
    max_drain: AtomicU64,
    coalesced_wakeups: AtomicU64,
    budget_yields: AtomicU64,
}

/// A point-in-time copy of [`PipeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipeStatsSnapshot {
    /// Messages accepted into the queue (including ones later evicted by
    /// [`OverflowPolicy::DropOldest`]).
    pub enqueued: u64,
    /// Incoming messages rejected at capacity ([`OverflowPolicy::DropNewest`]).
    pub rejected: u64,
    /// Pending messages evicted at capacity ([`OverflowPolicy::DropOldest`]).
    pub evicted: u64,
    /// Messages handed to the receiver.
    pub received: u64,
    /// Sends that had to wait for a slot ([`OverflowPolicy::Block`]).
    pub stalled_sends: u64,
    /// Total wall-clock time senders spent waiting for slots, in
    /// microseconds.
    pub stall_micros: u64,
    /// Batch-receive polls ([`PipeReceiver::recv_batch_async`] /
    /// [`PipeReceiver::drain_into`]) that handed out at least one message.
    pub batched_polls: u64,
    /// Largest number of messages a single batch poll drained.
    pub max_drain: u64,
    /// Sends that found a wakeup already in flight and skipped firing the
    /// receiver's waker again (the receiver observes the message in the
    /// drain the pending wakeup triggers).
    pub coalesced_wakeups: u64,
    /// Times the receiver's apply loop exhausted its per-poll budget with
    /// backlog remaining and cooperatively re-yielded to the reactor
    /// (reported via [`PipeReceiver::note_budget_yield`]).
    pub budget_yields: u64,
}

impl PipeStatsSnapshot {
    /// Messages lost to overflow under either drop policy.
    pub fn overflow_dropped(&self) -> u64 {
        self.rejected.saturating_add(self.evicted)
    }

    /// Mean messages drained per successful batch poll (0 when no batch
    /// poll has completed).
    pub fn mean_drain(&self) -> f64 {
        if self.batched_polls == 0 {
            0.0
        } else {
            self.received as f64 / self.batched_polls as f64
        }
    }

    /// Accumulates another pipe's counters into this one. Counter sums
    /// saturate instead of wrapping so long sweeps cannot corrupt
    /// aggregates; `max_drain` takes the maximum, not the sum.
    pub fn merge(&mut self, other: PipeStatsSnapshot) {
        self.enqueued = self.enqueued.saturating_add(other.enqueued);
        self.rejected = self.rejected.saturating_add(other.rejected);
        self.evicted = self.evicted.saturating_add(other.evicted);
        self.received = self.received.saturating_add(other.received);
        self.stalled_sends = self.stalled_sends.saturating_add(other.stalled_sends);
        self.stall_micros = self.stall_micros.saturating_add(other.stall_micros);
        self.batched_polls = self.batched_polls.saturating_add(other.batched_polls);
        self.max_drain = self.max_drain.max(other.max_drain);
        self.coalesced_wakeups = self.coalesced_wakeups.saturating_add(other.coalesced_wakeups);
        self.budget_yields = self.budget_yields.saturating_add(other.budget_yields);
    }
}

impl PipeStats {
    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> PipeStatsSnapshot {
        PipeStatsSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            stalled_sends: self.stalled_sends.load(Ordering::Relaxed),
            stall_micros: self.stall_micros.load(Ordering::Relaxed),
            batched_polls: self.batched_polls.load(Ordering::Relaxed),
            max_drain: self.max_drain.load(Ordering::Relaxed),
            coalesced_wakeups: self.coalesced_wakeups.load(Ordering::Relaxed),
            budget_yields: self.budget_yields.load(Ordering::Relaxed),
        }
    }
}

/// What a successful [`PipeSender::send`] / [`PipeSender::try_send`] did
/// with the message, so callers can attribute overflow to the policy that
/// caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message was enqueued into a free slot.
    Enqueued,
    /// The message was enqueued, evicting the oldest pending message
    /// ([`OverflowPolicy::DropOldest`] at capacity) — one message was lost.
    EnqueuedEvictingOldest,
    /// The message was rejected ([`OverflowPolicy::DropNewest`] at
    /// capacity) — this message was lost.
    Rejected,
}

impl SendOutcome {
    /// Whether the sent message itself entered the queue.
    pub fn was_enqueued(&self) -> bool {
        !matches!(self, SendOutcome::Rejected)
    }

    /// Whether the send cost a message (the incoming one or an evicted
    /// pending one).
    pub fn lost_a_message(&self) -> bool {
        !matches!(self, SendOutcome::Enqueued)
    }
}

/// Error returned by [`PipeSender::send`] / [`PipeSender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeSendError<T> {
    /// The receiver has been dropped; the value is handed back.
    Disconnected(T),
    /// The pipe is full and the policy is [`OverflowPolicy::Block`]
    /// (returned by `try_send` only — `send` waits instead).
    Full(T),
}

impl<T> PipeSendError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            PipeSendError::Disconnected(v) | PipeSendError::Full(v) => v,
        }
    }
}

struct PipeInner<T> {
    queue: VecDeque<T>,
    /// Waker of a pending [`RecvFuture`] / [`RecvBatchFuture`], if the
    /// receiver is parked.
    recv_waker: Option<Waker>,
    /// A wakeup has been fired but the receiver has not polled since.
    /// While set, further sends coalesce into the in-flight wakeup instead
    /// of firing again (the receiver drains the whole backlog when it
    /// runs). Cleared at the top of every receive poll.
    wake_pending: bool,
    senders: usize,
    receiver_alive: bool,
}

struct PipeShared<T> {
    inner: Mutex<PipeInner<T>>,
    /// Signalled when a message arrives or the last sender disconnects.
    not_empty: Condvar,
    /// Signalled when a slot frees or the receiver disconnects.
    not_full: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
    stats: PipeStats,
}

impl<T> PipeShared<T> {
    /// Pops one message, updating counters and signalling writers.
    fn pop(&self, inner: &mut PipeInner<T>) -> Option<T> {
        let value = inner.queue.pop_front()?;
        self.stats.received.fetch_add(1, Ordering::Relaxed);
        self.not_full.notify_one();
        Some(value)
    }

    /// Applies the drop policies to a queue at capacity. The caller must
    /// ensure the queue is full and the policy is not `Block`.
    fn drop_policy_outcome(&self, inner: &mut PipeInner<T>) -> SendOutcome {
        match self.policy {
            OverflowPolicy::DropNewest => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                SendOutcome::Rejected
            }
            OverflowPolicy::DropOldest => {
                inner.queue.pop_front();
                self.stats.evicted.fetch_add(1, Ordering::Relaxed);
                SendOutcome::EnqueuedEvictingOldest
            }
            OverflowPolicy::Block => unreachable!("Block is handled by the caller"),
        }
    }

    /// Pops up to `max` messages into `buf`, updating the batch counters
    /// once for the whole drain and signalling writers once instead of
    /// per message. Returns the number of messages drained.
    fn pop_batch(&self, inner: &mut PipeInner<T>, buf: &mut Vec<T>, max: usize) -> usize {
        let n = inner.queue.len().min(max);
        if n == 0 {
            return 0;
        }
        buf.extend(inner.queue.drain(..n));
        self.stats.received.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.batched_polls.fetch_add(1, Ordering::Relaxed);
        self.stats.max_drain.fetch_max(n as u64, Ordering::Relaxed);
        // One notify_all for the whole batch: every blocked sender
        // re-checks capacity under the lock, so over-notifying is safe and
        // far cheaper than n notify_one calls.
        self.not_full.notify_all();
        n
    }

    /// Enqueues `value` and wakes the receiver (waker first, then the
    /// condvar), releasing the lock before firing the waker. If a wakeup is
    /// already in flight the send coalesces into it: nothing is re-fired
    /// and the receiver picks this message up in the same drain.
    fn push_and_wake(&self, mut inner: std::sync::MutexGuard<'_, PipeInner<T>>, value: T) {
        inner.queue.push_back(value);
        self.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        let waker = if inner.wake_pending {
            self.stats.coalesced_wakeups.fetch_add(1, Ordering::Relaxed);
            None
        } else {
            match inner.recv_waker.take() {
                Some(w) => {
                    inner.wake_pending = true;
                    Some(w)
                }
                None => None,
            }
        };
        self.not_empty.notify_one();
        drop(inner);
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// The sending half of a bounded pipe. Cloneable.
pub struct PipeSender<T> {
    shared: Arc<PipeShared<T>>,
}

/// The receiving half of a bounded pipe.
pub struct PipeReceiver<T> {
    shared: Arc<PipeShared<T>>,
}

impl<T> std::fmt::Debug for PipeSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeSender")
            .field("capacity", &self.shared.capacity)
            .field("policy", &self.shared.policy)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for PipeReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeReceiver")
            .field("capacity", &self.shared.capacity)
            .field("policy", &self.shared.policy)
            .finish_non_exhaustive()
    }
}

/// Creates a bounded pipe with the given capacity and overflow policy.
/// `capacity` is clamped to at least 1; pass [`UNBOUNDED`] for a pipe that
/// never overflows.
pub fn bounded_pipe<T>(
    capacity: usize,
    policy: OverflowPolicy,
) -> (PipeSender<T>, PipeReceiver<T>) {
    let shared = Arc::new(PipeShared {
        inner: Mutex::new(PipeInner {
            queue: VecDeque::new(),
            recv_waker: None,
            wake_pending: false,
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
        policy,
        stats: PipeStats::default(),
    });
    (
        PipeSender {
            shared: Arc::clone(&shared),
        },
        PipeReceiver { shared },
    )
}

/// Capacity value meaning "effectively unbounded".
pub const UNBOUNDED: usize = usize::MAX;

impl<T> Clone for PipeSender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("pipe lock").senders += 1;
        PipeSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for PipeSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut inner = self.shared.inner.lock().expect("pipe lock");
            inner.senders -= 1;
            if inner.senders == 0 {
                self.shared.not_empty.notify_all();
                match inner.recv_waker.take() {
                    Some(w) => {
                        inner.wake_pending = true;
                        Some(w)
                    }
                    None => None,
                }
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for PipeReceiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("pipe lock");
        inner.receiver_alive = false;
        self.shared.not_full.notify_all();
    }
}

impl<T> PipeSender<T> {
    /// Sends `value`, applying the overflow policy at capacity: `Block`
    /// waits for a slot, `DropNewest` rejects `value`, `DropOldest` evicts
    /// the oldest pending message. The returned [`SendOutcome`] says which
    /// of those happened.
    ///
    /// # Errors
    /// Returns [`PipeSendError::Disconnected`] when the receiver is gone.
    pub fn send(&self, value: T) -> Result<SendOutcome, PipeSendError<T>> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().expect("pipe lock");
        if !inner.receiver_alive {
            return Err(PipeSendError::Disconnected(value));
        }
        let mut outcome = SendOutcome::Enqueued;
        if inner.queue.len() >= shared.capacity {
            if shared.policy == OverflowPolicy::Block {
                shared.stats.stalled_sends.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                while inner.queue.len() >= shared.capacity && inner.receiver_alive {
                    inner = shared.not_full.wait(inner).expect("pipe lock");
                }
                shared.stats.stall_micros.fetch_add(
                    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
                if !inner.receiver_alive {
                    return Err(PipeSendError::Disconnected(value));
                }
            } else {
                outcome = shared.drop_policy_outcome(&mut inner);
                if outcome == SendOutcome::Rejected {
                    return Ok(outcome);
                }
            }
        }
        shared.push_and_wake(inner, value);
        Ok(outcome)
    }

    /// Sends without ever blocking: at capacity, `Block` behaves like a
    /// plain bounded channel and returns [`PipeSendError::Full`]; the drop
    /// policies behave exactly as in [`PipeSender::send`].
    ///
    /// # Errors
    /// [`PipeSendError::Full`] under `Block` at capacity,
    /// [`PipeSendError::Disconnected`] when the receiver is gone.
    pub fn try_send(&self, value: T) -> Result<SendOutcome, PipeSendError<T>> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().expect("pipe lock");
        if !inner.receiver_alive {
            return Err(PipeSendError::Disconnected(value));
        }
        let mut outcome = SendOutcome::Enqueued;
        if inner.queue.len() >= shared.capacity {
            if shared.policy == OverflowPolicy::Block {
                return Err(PipeSendError::Full(value));
            }
            outcome = shared.drop_policy_outcome(&mut inner);
            if outcome == SendOutcome::Rejected {
                return Ok(outcome);
            }
        }
        shared.push_and_wake(inner, value);
        Ok(outcome)
    }

    /// Sends every message in `batch`, taking the pipe lock once per
    /// capacity window instead of once per message and firing at most one
    /// wakeup per window. With room for the whole batch (the common case
    /// on the invalidation plane, which runs unbounded) that is a single
    /// lock acquisition and a single wakeup no matter how many messages
    /// are enqueued — the producer-side complement of
    /// [`PipeReceiver::recv_batch_async`].
    ///
    /// Overflow follows [`PipeSender::send`] per message: `Block` parks
    /// until a slot frees (the window already enqueued is signalled first,
    /// so a parked receiver always drains it), `DropNewest` rejects the
    /// overflowing message, `DropOldest` evicts the head. Returns the
    /// number of messages enqueued.
    ///
    /// # Errors
    /// Returns [`PipeSendError::Disconnected`] carrying the first
    /// undelivered message when the receiver is gone; the rest of the
    /// batch is dropped.
    pub fn send_batch<I>(&self, batch: I) -> Result<u64, PipeSendError<T>>
    where
        I: IntoIterator<Item = T>,
    {
        let shared = &self.shared;
        let mut iter = batch.into_iter();
        let mut pending: Option<T> = iter.next();
        let mut total = 0u64;
        while pending.is_some() {
            let mut inner = shared.inner.lock().expect("pipe lock");
            if shared.policy == OverflowPolicy::Block && inner.queue.len() >= shared.capacity {
                shared.stats.stalled_sends.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                while inner.queue.len() >= shared.capacity && inner.receiver_alive {
                    inner = shared.not_full.wait(inner).expect("pipe lock");
                }
                shared.stats.stall_micros.fetch_add(
                    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                    Ordering::Relaxed,
                );
            }
            if !inner.receiver_alive {
                return Err(PipeSendError::Disconnected(
                    pending.take().expect("pending message"),
                ));
            }
            let mut window = 0u64;
            while let Some(value) = pending.take() {
                if inner.queue.len() >= shared.capacity {
                    if shared.policy == OverflowPolicy::Block {
                        // Window closed: signal what we have, then park
                        // for a slot on the next pass round the loop.
                        pending = Some(value);
                        break;
                    }
                    if shared.drop_policy_outcome(&mut inner) == SendOutcome::Rejected {
                        pending = iter.next();
                        continue;
                    }
                    // DropOldest freed a slot; fall through and enqueue.
                }
                inner.queue.push_back(value);
                window += 1;
                pending = iter.next();
            }
            let waker = if window == 0 {
                None
            } else {
                shared.stats.enqueued.fetch_add(window, Ordering::Relaxed);
                total += window;
                shared.not_empty.notify_one();
                if inner.wake_pending {
                    shared.stats.coalesced_wakeups.fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    match inner.recv_waker.take() {
                        Some(w) => {
                            inner.wake_pending = true;
                            Some(w)
                        }
                        None => None,
                    }
                }
            };
            drop(inner);
            if let Some(w) = waker {
                w.wake();
            }
        }
        Ok(total)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("pipe lock").queue.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pipe's capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The pipe's overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.shared.policy
    }

    /// A snapshot of the pipe's counters.
    pub fn stats(&self) -> PipeStatsSnapshot {
        self.shared.stats.snapshot()
    }
}

impl<T> PipeReceiver<T> {
    /// Receives without blocking; `None` means the pipe is currently empty
    /// (disconnection is reported by [`PipeReceiver::recv`]).
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().expect("pipe lock");
        self.shared.pop(&mut inner)
    }

    /// Blocks until a message arrives or every sender is dropped (`None`).
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().expect("pipe lock");
        loop {
            if let Some(v) = self.shared.pop(&mut inner) {
                return Some(v);
            }
            if inner.senders == 0 {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).expect("pipe lock");
        }
    }

    /// Blocks until a message arrives, the timeout elapses, or every sender
    /// is dropped. `None` covers both timeout and disconnection; check
    /// [`PipeReceiver::is_disconnected`] to distinguish them.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("pipe lock");
        loop {
            if let Some(v) = self.shared.pop(&mut inner) {
                return Some(v);
            }
            if inner.senders == 0 {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("pipe lock");
            inner = guard;
        }
    }

    /// Drains every message currently queued without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.shared.inner.lock().expect("pipe lock");
        let mut out = Vec::with_capacity(inner.queue.len());
        while let Some(v) = self.shared.pop(&mut inner) {
            out.push(v);
        }
        out
    }

    /// Drains up to `max` currently-queued messages into `buf` without
    /// blocking, returning how many were moved. Counters are updated once
    /// for the whole batch and blocked senders are signalled once — this is
    /// the cheap path a batch-dequeuing apply task uses.
    pub fn drain_into(&self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut inner = self.shared.inner.lock().expect("pipe lock");
        self.shared.pop_batch(&mut inner, buf, max)
    }

    /// Returns a future resolving to the next message, or `None` once every
    /// sender is dropped and the queue is drained. This is the reactor
    /// integration point: the future registers its [`Waker`] with the pipe
    /// and senders wake it on delivery.
    pub fn recv_async(&self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self }
    }

    /// Returns a future that waits until the pipe is non-empty, then drains
    /// up to `max` messages into `buf` in one poll, resolving to the number
    /// drained. Resolves to `0` only once every sender is dropped and the
    /// queue is fully drained. One wakeup services the whole backlog — the
    /// batch-dequeue half of the reactor apply path.
    pub fn recv_batch_async<'a>(
        &'a self,
        buf: &'a mut Vec<T>,
        max: usize,
    ) -> RecvBatchFuture<'a, T> {
        RecvBatchFuture {
            receiver: self,
            buf,
            max: max.max(1),
        }
    }

    /// Records one cooperative budget yield in this pipe's counters: the
    /// apply loop drained a full budget, saw backlog remaining, and handed
    /// the reactor back to its sibling tasks.
    pub fn note_budget_yield(&self) {
        self.shared
            .stats
            .budget_yields
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Returns `true` once every sender has been dropped.
    pub fn is_disconnected(&self) -> bool {
        self.shared.inner.lock().expect("pipe lock").senders == 0
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("pipe lock").queue.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the pipe's counters.
    pub fn stats(&self) -> PipeStatsSnapshot {
        self.shared.stats.snapshot()
    }
}

/// Future returned by [`PipeReceiver::recv_async`].
pub struct RecvFuture<'a, T> {
    receiver: &'a PipeReceiver<T>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let shared = &self.receiver.shared;
        let mut inner = shared.inner.lock().expect("pipe lock");
        inner.wake_pending = false;
        if let Some(v) = shared.pop(&mut inner) {
            return Poll::Ready(Some(v));
        }
        if inner.senders == 0 {
            return Poll::Ready(None);
        }
        inner.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Future returned by [`PipeReceiver::recv_batch_async`]: resolves to the
/// number of messages drained into the caller's buffer (`0` means every
/// sender is gone and the pipe is empty).
pub struct RecvBatchFuture<'a, T> {
    receiver: &'a PipeReceiver<T>,
    buf: &'a mut Vec<T>,
    max: usize,
}

impl<T> Future for RecvBatchFuture<'_, T> {
    type Output = usize;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let shared = &this.receiver.shared;
        let mut inner = shared.inner.lock().expect("pipe lock");
        inner.wake_pending = false;
        let n = shared.pop_batch(&mut inner, this.buf, this.max);
        if n > 0 {
            return Poll::Ready(n);
        }
        if inner.senders == 0 {
            return Poll::Ready(0);
        }
        inner.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_pipe_round_trip() {
        let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
        for i in 0..100 {
            assert_eq!(tx.send(i), Ok(SendOutcome::Enqueued));
        }
        assert_eq!(tx.len(), 100);
        assert_eq!(rx.drain(), (0..100).collect::<Vec<_>>());
        assert!(tx.is_empty() && rx.is_empty());
        let stats = tx.stats();
        assert_eq!(stats.enqueued, 100);
        assert_eq!(stats.received, 100);
        assert_eq!(stats.overflow_dropped(), 0);
    }

    #[test]
    fn send_batch_enqueues_everything_in_one_window() {
        let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
        assert_eq!(tx.send_batch(0..100), Ok(100));
        assert_eq!(tx.send_batch(std::iter::empty()), Ok(0));
        assert_eq!(rx.drain(), (0..100).collect::<Vec<_>>());
        assert_eq!(tx.stats().enqueued, 100);
    }

    #[test]
    fn send_batch_applies_drop_policies_per_message() {
        let (tx, rx) = bounded_pipe::<u64>(2, OverflowPolicy::DropNewest);
        assert_eq!(tx.send_batch(0..5), Ok(2), "only the window fits");
        assert_eq!(rx.drain(), vec![0, 1]);
        assert_eq!(rx.stats().rejected, 3);

        let (tx, rx) = bounded_pipe::<u64>(2, OverflowPolicy::DropOldest);
        assert_eq!(tx.send_batch(0..5), Ok(5), "evictions still enqueue");
        assert_eq!(rx.drain(), vec![3, 4]);
        assert_eq!(rx.stats().evicted, 3);
    }

    #[test]
    fn send_batch_crosses_capacity_windows_under_block() {
        let (tx, rx) = bounded_pipe::<u64>(4, OverflowPolicy::Block);
        let handle = std::thread::spawn(move || tx.send_batch(0..64));
        let mut got = Vec::new();
        while got.len() < 64 {
            got.push(rx.recv().expect("sender alive until batch done"));
        }
        assert_eq!(handle.join().unwrap(), Ok(64));
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn send_batch_reports_disconnect_with_first_undelivered() {
        let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
        drop(rx);
        assert_eq!(tx.send_batch(7..10), Err(PipeSendError::Disconnected(7)));
    }

    #[test]
    fn drop_newest_rejects_at_capacity() {
        let (tx, rx) = bounded_pipe::<u64>(2, OverflowPolicy::DropNewest);
        assert_eq!(tx.send(1), Ok(SendOutcome::Enqueued));
        assert_eq!(tx.send(2), Ok(SendOutcome::Enqueued));
        assert_eq!(tx.send(3), Ok(SendOutcome::Rejected));
        assert_eq!(rx.drain(), vec![1, 2]);
        let stats = rx.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.enqueued, 2);
        assert_eq!(stats.overflow_dropped(), 1);
    }

    #[test]
    fn drop_oldest_evicts_at_capacity() {
        let (tx, rx) = bounded_pipe::<u64>(2, OverflowPolicy::DropOldest);
        assert_eq!(tx.send(1), Ok(SendOutcome::Enqueued));
        assert_eq!(tx.send(2), Ok(SendOutcome::Enqueued));
        for i in 3..=5 {
            let outcome = tx.send(i).unwrap();
            assert_eq!(outcome, SendOutcome::EnqueuedEvictingOldest);
            assert!(outcome.was_enqueued() && outcome.lost_a_message());
        }
        assert_eq!(rx.drain(), vec![4, 5]);
        let stats = rx.stats();
        assert_eq!(stats.evicted, 3);
        assert_eq!(stats.enqueued, 5);
        assert_eq!(stats.received, 2);
    }

    #[test]
    fn block_policy_stalls_the_sender_until_a_slot_frees() {
        let (tx, rx) = bounded_pipe::<u64>(1, OverflowPolicy::Block);
        assert_eq!(tx.send(1), Ok(SendOutcome::Enqueued));
        let handle = std::thread::spawn(move || tx.send(2).map(|_| tx.stats()));
        // Give the sender time to park, then free the slot (test-only
        // wall-clock coordination).
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.stalled_sends, 1);
        assert!(stats.stall_micros > 0);
        assert_eq!(rx.recv(), Some(2), "the stalled send completed");
        assert_eq!(rx.recv(), None, "sender dropped after its send completed");
        assert_eq!(rx.stats().received, 2);
    }

    #[test]
    fn try_send_reports_full_under_block() {
        let (tx, rx) = bounded_pipe::<u64>(1, OverflowPolicy::Block);
        assert_eq!(tx.try_send(1), Ok(SendOutcome::Enqueued));
        assert_eq!(tx.try_send(2), Err(PipeSendError::Full(2)));
        assert_eq!(tx.capacity(), 1);
        assert_eq!(tx.policy(), OverflowPolicy::Block);
        drop(rx);
        assert_eq!(tx.try_send(3), Err(PipeSendError::Disconnected(3)));
        assert_eq!(tx.send(4).unwrap_err().into_inner(), 4);
    }

    #[test]
    fn recv_blocks_until_message_or_disconnect() {
        let (tx, rx) = bounded_pipe::<u64>(4, OverflowPolicy::Block);
        let handle = std::thread::spawn(move || rx.recv());
        tx.send(7).unwrap();
        assert_eq!(handle.join().unwrap(), Some(7));

        let (tx, rx) = bounded_pipe::<u64>(4, OverflowPolicy::Block);
        let handle = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn recv_timeout_expires_without_traffic() {
        let (tx, rx) = bounded_pipe::<u64>(4, OverflowPolicy::Block);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), None);
        assert!(!rx.is_disconnected());
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Some(1));
        drop(tx);
        assert!(rx.is_disconnected());
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded_pipe::<u64>(1, OverflowPolicy::Block);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        // Test-only wall-clock coordination: let the sender park first.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(PipeSendError::Disconnected(2)));
    }

    /// Overflow counters must match a sequential oracle: replay the same
    /// bounded-queue semantics over a plain `VecDeque` and compare every
    /// counter for both drop policies.
    #[test]
    fn overflow_counters_match_a_sequential_oracle() {
        for policy in [OverflowPolicy::DropNewest, OverflowPolicy::DropOldest] {
            let capacity = 7usize;
            let (tx, rx) = bounded_pipe::<u64>(capacity, policy);
            let mut oracle: VecDeque<u64> = VecDeque::new();
            let (mut enqueued, mut rejected, mut evicted) = (0u64, 0u64, 0u64);
            // A deterministic on/off traffic pattern: bursts of sends
            // interleaved with partial drains.
            for round in 0..50u64 {
                for i in 0..(round % 11) {
                    let v = round * 100 + i;
                    if oracle.len() >= capacity {
                        match policy {
                            OverflowPolicy::DropNewest => {
                                rejected += 1;
                                assert_eq!(tx.send(v), Ok(SendOutcome::Rejected));
                                continue;
                            }
                            OverflowPolicy::DropOldest => {
                                oracle.pop_front();
                                evicted += 1;
                            }
                            OverflowPolicy::Block => unreachable!(),
                        }
                        assert_eq!(tx.send(v), Ok(SendOutcome::EnqueuedEvictingOldest));
                    } else {
                        assert_eq!(tx.send(v), Ok(SendOutcome::Enqueued));
                    }
                    oracle.push_back(v);
                    enqueued += 1;
                }
                for _ in 0..(round % 5) {
                    assert_eq!(rx.try_recv(), oracle.pop_front());
                }
            }
            // Drain the tail and compare the full counter set.
            let tail: Vec<u64> = rx.drain();
            assert_eq!(tail, oracle.into_iter().collect::<Vec<_>>());
            let stats = rx.stats();
            assert_eq!(stats.enqueued, enqueued, "{policy}");
            assert_eq!(stats.rejected, rejected, "{policy}");
            assert_eq!(stats.evicted, evicted, "{policy}");
            assert_eq!(stats.received, stats.enqueued - stats.evicted, "{policy}");
            assert_eq!(stats.overflow_dropped(), rejected + evicted, "{policy}");
        }
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = PipeStatsSnapshot {
            enqueued: 1,
            rejected: 2,
            evicted: 3,
            received: 4,
            stalled_sends: 5,
            stall_micros: 6,
            batched_polls: 2,
            max_drain: 7,
            coalesced_wakeups: 8,
            budget_yields: 9,
        };
        a.merge(a);
        assert_eq!(a.enqueued, 2);
        assert_eq!(a.stall_micros, 12);
        assert_eq!(a.overflow_dropped(), 10);
        assert_eq!(a.batched_polls, 4);
        assert_eq!(a.max_drain, 7, "max_drain takes the max, not the sum");
        assert_eq!(a.coalesced_wakeups, 16);
        assert_eq!(a.budget_yields, 18);
    }

    /// Long sweeps aggregate many snapshots; sums must saturate instead of
    /// wrapping (the satellite fix for u64 counter aggregation).
    #[test]
    fn stats_merge_saturates_instead_of_wrapping() {
        let mut a = PipeStatsSnapshot {
            enqueued: u64::MAX - 1,
            rejected: u64::MAX,
            evicted: u64::MAX,
            received: u64::MAX - 3,
            stalled_sends: 1,
            stall_micros: u64::MAX,
            batched_polls: u64::MAX,
            max_drain: 5,
            coalesced_wakeups: u64::MAX,
            budget_yields: u64::MAX,
        };
        a.merge(a);
        assert_eq!(a.enqueued, u64::MAX);
        assert_eq!(a.rejected, u64::MAX);
        assert_eq!(a.received, u64::MAX);
        assert_eq!(a.stalled_sends, 2);
        assert_eq!(a.stall_micros, u64::MAX);
        assert_eq!(a.overflow_dropped(), u64::MAX, "overflow sum saturates too");
        assert_eq!(a.max_drain, 5);
    }

    #[test]
    fn policy_displays() {
        assert_eq!(OverflowPolicy::Block.to_string(), "block");
        assert_eq!(OverflowPolicy::DropNewest.to_string(), "drop-newest");
        assert_eq!(OverflowPolicy::DropOldest.to_string(), "drop-oldest");
        assert_eq!(OverflowPolicy::default(), OverflowPolicy::Block);
    }
}
