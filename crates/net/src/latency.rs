//! Delay models for the invalidation channel.

use rand::Rng;
use rand_distr::{Distribution, Exp};
use tcache_types::SimDuration;

/// Decides how long an invalidation is in flight before reaching the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Delay drawn uniformly between the two bounds.
    Uniform {
        /// Minimum delay.
        min: SimDuration,
        /// Maximum delay.
        max: SimDuration,
    },
    /// Exponentially distributed delay with the given mean; models the long
    /// tail of a congested asynchronous pipeline. Samples are capped at
    /// 20× the mean to keep event queues bounded.
    Exponential {
        /// Mean delay.
        mean: SimDuration,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        // A modest wide-area one-way delay.
        LatencyModel::Constant(SimDuration::from_millis(50))
    }
}

impl LatencyModel {
    /// Samples a delay for one message.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                if max <= min {
                    min
                } else {
                    SimDuration::from_micros(rng.gen_range(min.as_micros()..=max.as_micros()))
                }
            }
            LatencyModel::Exponential { mean } => {
                let mean_us = mean.as_micros().max(1) as f64;
                let exp = Exp::new(1.0 / mean_us).expect("positive rate");
                let sample = exp.sample(rng).min(mean_us * 20.0);
                SimDuration::from_micros(sample.round() as u64)
            }
        }
    }

    /// The mean delay of the model.
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                SimDuration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_always_returns_the_same_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Constant(SimDuration::from_millis(10));
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(10));
        }
        assert_eq!(m.mean(), SimDuration::from_millis(10));
    }

    #[test]
    fn uniform_stays_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let min = SimDuration::from_millis(5);
        let max = SimDuration::from_millis(20);
        let m = LatencyModel::Uniform { min, max };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= min && d <= max);
        }
        assert_eq!(m.mean(), SimDuration::from_micros(12_500));
    }

    #[test]
    fn degenerate_uniform_returns_min() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SimDuration::from_millis(5);
        let m = LatencyModel::Uniform { min: d, max: d };
        assert_eq!(m.sample(&mut rng), d);
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(9),
            max: SimDuration::from_millis(1),
        };
        assert_eq!(m.sample(&mut rng), SimDuration::from_millis(9));
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean = SimDuration::from_millis(100);
        let m = LatencyModel::Exponential { mean };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut rng).as_micros()).sum();
        let observed = total as f64 / n as f64;
        let expected = mean.as_micros() as f64;
        assert!(
            (observed - expected).abs() / expected < 0.1,
            "observed mean {observed}, expected {expected}"
        );
        assert_eq!(m.mean(), mean);
    }

    #[test]
    fn default_is_constant() {
        assert_eq!(
            LatencyModel::default(),
            LatencyModel::Constant(SimDuration::from_millis(50))
        );
    }
}
