//! In-reactor modeled delivery: the channel's loss and latency applied
//! *inside* each cache's reactor apply task.
//!
//! The discrete-event plane models the unreliable invalidation link with
//! [`crate::channel`], driven by a virtual clock. The live plane runs the
//! same models in wall-clock time instead: the publisher enqueues every
//! invalidation onto the cache's bounded [`pipe`](crate::pipe) unmodified,
//! and the cache's reactor task draws the drop decision and sleeps the
//! sampled delay ([`TimerHandle::sleep_model`]) before applying — the link
//! is modeled at the *receiving* end, where a real deployment's network
//! and kernel queues live. This replaces the old `LiveSender` design that
//! drew loss decisions inline on the publishing thread.
//!
//! Reproducibility follows the repo-wide convention: the loss RNG is
//! seeded from `(run_seed, CacheId)` with
//! [`tcache_types::seeding::cache_channel_seed`] — the same stream the
//! discrete-event channel uses — and the latency RNG gets its own disjoint
//! stream ([`tcache_types::seeding::cache_delay_seed`]), so delay sampling
//! never perturbs the drop pattern. With a latency model that draws no
//! randomness (the constant model), the messages a cache loses are
//! bit-identical across both execution planes and invariant to how many
//! caches are deployed.
//!
//! Because one task serves one cache, the modeled delay is a *service
//! time*: a sleeping message delays the messages queued behind it, like a
//! single-consumer store-and-forward pipeline. The discrete-event channel
//! instead delays every message independently (messages can overlap and
//! reorder). The two agree at zero delay — the configuration the
//! cross-plane parity tests pin down.

use crate::fault::{LossModel, LossState};
use crate::latency::LatencyModel;
use crate::pipe::PipeReceiver;
use crate::reactor::TimerHandle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tcache_types::SimDuration;

/// The unreliable-link model one live delivery task applies: every message
/// popped from the pipe is independently dropped per `loss`, and survivors
/// are applied only after a delay sampled from `latency`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeliveryModel {
    /// Drop process of the link.
    pub loss: LossModel,
    /// Delay process of the link (a service time: it holds up the messages
    /// queued behind it, see the module docs).
    pub latency: LatencyModel,
}

impl DeliveryModel {
    /// A perfectly reliable, zero-delay link (the default).
    pub fn reliable() -> Self {
        DeliveryModel {
            loss: LossModel::None,
            latency: LatencyModel::Constant(SimDuration::ZERO),
        }
    }

    /// Uniform loss probability with a constant delay — the link shape
    /// every experiment in the evaluation uses.
    pub fn uniform(loss: f64, delay: SimDuration) -> Self {
        DeliveryModel {
            loss: LossModel::uniform(loss),
            latency: LatencyModel::Constant(delay),
        }
    }
}

/// Monotone counters of one live delivery task. Shared between the task
/// and the observers sampling [`DeliveryCounters::snapshot`].
#[derive(Debug, Default)]
pub struct DeliveryCounters {
    offered: AtomicU64,
    dropped: AtomicU64,
    delivered: AtomicU64,
    delay_micros: AtomicU64,
}

/// A point-in-time copy of [`DeliveryCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryStatsSnapshot {
    /// Messages the task popped off its pipe.
    pub offered: u64,
    /// Messages the loss model dropped before application.
    pub dropped: u64,
    /// Messages applied to the cache.
    pub delivered: u64,
    /// Total modeled delay slept before applications, in microseconds.
    pub delay_micros: u64,
}

impl DeliveryStatsSnapshot {
    /// Messages the task has finished with (dropped or applied). Equal to
    /// [`DeliveryStatsSnapshot::offered`] once the task is idle — the
    /// quiesce condition of the live plane.
    pub fn processed(&self) -> u64 {
        self.dropped + self.delivered
    }

    /// Observed loss ratio (0 when nothing was offered).
    pub fn loss_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Mean modeled delay per applied message, in microseconds (0 when
    /// nothing was delivered).
    pub fn mean_delay_micros(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.delay_micros as f64 / self.delivered as f64
        }
    }

    /// Accumulates another task's counters into this one. Sums saturate
    /// instead of wrapping so long sweeps cannot corrupt aggregates.
    pub fn merge(&mut self, other: DeliveryStatsSnapshot) {
        self.offered = self.offered.saturating_add(other.offered);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.delivered = self.delivered.saturating_add(other.delivered);
        self.delay_micros = self.delay_micros.saturating_add(other.delay_micros);
    }
}

impl DeliveryCounters {
    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> DeliveryStatsSnapshot {
        DeliveryStatsSnapshot {
            offered: self.offered.load(Ordering::Acquire),
            dropped: self.dropped.load(Ordering::Acquire),
            delivered: self.delivered.load(Ordering::Acquire),
            delay_micros: self.delay_micros.load(Ordering::Acquire),
        }
    }

    /// Messages finished with (dropped or applied), loaded directly.
    pub fn processed(&self) -> u64 {
        self.dropped.load(Ordering::Acquire) + self.delivered.load(Ordering::Acquire)
    }
}

/// Everything one modeled delivery task needs besides its pipe and timer:
/// the link model, the two disjoint RNG stream seeds (pass
/// [`tcache_types::seeding::cache_channel_seed`] /
/// [`tcache_types::seeding::cache_delay_seed`] values — see the module
/// docs), the shared counters, and the pause flag.
#[derive(Debug)]
pub struct DeliveryTask {
    /// Link model the task applies.
    pub model: DeliveryModel,
    /// Seed of the loss RNG stream (the discrete-event channel's stream).
    pub loss_seed: u64,
    /// Seed of the latency RNG stream (disjoint from the loss stream).
    pub delay_seed: u64,
    /// Counters the task updates; observers snapshot them.
    pub counters: Arc<DeliveryCounters>,
    /// While set, the task holds deliveries (backlog stays in the pipe).
    pub paused: Arc<AtomicBool>,
    /// Extra delay (microseconds) added on top of every sampled latency —
    /// a fault plan's delay spike, adjustable while the task runs. Zero
    /// restores the configured latency model untouched.
    pub extra_delay_micros: Arc<AtomicU64>,
    /// Maximum messages drained and applied per wakeup before the task
    /// cooperatively yields back to the reactor so sibling caches get a
    /// turn. Clamped to at least 1; [`DEFAULT_BATCH_BUDGET`] is the tuned
    /// default.
    pub batch_budget: usize,
}

/// Default per-poll apply budget of a delivery task: large enough that a
/// backlog is drained in a handful of wakeups, small enough that one hot
/// cache cannot monopolise the shared reactor thread.
pub const DEFAULT_BATCH_BUDGET: usize = 64;

/// Runs one cache's modeled delivery loop until its pipe disconnects:
/// drain a batch → per message (hold while `task.paused`) → draw the drop
/// decision → sleep the sampled delay on `timer` → `apply`. One wakeup
/// services up to [`DeliveryTask::batch_budget`] messages; if backlog
/// remains after a full batch the task cooperatively yields so sibling
/// caches on the shared reactor get a turn. Spawn the returned future onto
/// a [`Reactor`](crate::reactor::Reactor) — one task per cache, every task
/// multiplexed on the same reactor thread.
///
/// Accounting counts every drained message individually: `offered` /
/// `dropped` / `delivered` advance per message inside the batch, so the
/// live plane's quiesce condition (`processed() == pipe received`) holds
/// regardless of how the backlog was chunked into batches.
pub async fn run_delivery<T, F>(rx: PipeReceiver<T>, timer: TimerHandle, task: DeliveryTask, mut apply: F)
where
    F: FnMut(T),
{
    let DeliveryTask {
        model,
        loss_seed,
        delay_seed,
        counters,
        paused,
        extra_delay_micros,
        batch_budget,
    } = task;
    let mut loss = LossState::new(model.loss);
    let mut loss_rng = StdRng::seed_from_u64(loss_seed);
    let mut delay_rng = StdRng::seed_from_u64(delay_seed);
    // Only the constant-zero model skips sampling entirely: it draws no
    // randomness and sleeps nothing. Gating on the mean would also swallow
    // random models whose integer-microsecond mean rounds to zero (e.g.
    // Uniform { 0, 1 µs }) even though they are configured to delay.
    let zero_delay = model.latency == LatencyModel::Constant(SimDuration::ZERO);
    let budget = batch_budget.max(1);
    let mut batch: Vec<T> = Vec::with_capacity(budget.min(1024));
    loop {
        let drained = rx.recv_batch_async(&mut batch, budget).await;
        if drained == 0 {
            return; // Every sender dropped and the pipe is drained.
        }
        for message in batch.drain(..) {
            // A paused cache applies nothing: drained messages are held
            // here (the rest of the backlog stays in the pipe, where the
            // overflow policy governs it) until resume. Polling keeps the
            // task simple — pause is a modeling facility and a 1 ms cycle
            // bounds resume latency.
            while paused.load(Ordering::Acquire) {
                timer.sleep(std::time::Duration::from_millis(1)).await;
            }
            counters.offered.fetch_add(1, Ordering::Release);
            if loss.should_drop(&mut loss_rng) {
                counters.dropped.fetch_add(1, Ordering::Release);
                continue;
            }
            // The spike surcharge is added *after* sampling, so toggling it
            // never perturbs the delay RNG stream (and the zero-delay fast
            // path draws nothing, exactly as without a spike).
            let extra = SimDuration::from_micros(extra_delay_micros.load(Ordering::Acquire));
            if !zero_delay || extra > SimDuration::ZERO {
                let delay = if zero_delay {
                    extra
                } else {
                    model.latency.sample(&mut delay_rng) + extra
                };
                timer.sleep_sim(delay).await;
                counters
                    .delay_micros
                    .fetch_add(delay.as_micros(), Ordering::Release);
            }
            apply(message);
            counters.delivered.fetch_add(1, Ordering::Release);
        }
        if !rx.is_empty() {
            // Budget exhausted with backlog remaining: hand the reactor
            // back to sibling tasks before draining the next batch.
            rx.note_budget_yield();
            crate::reactor::yield_now().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::{bounded_pipe, OverflowPolicy, UNBOUNDED};
    use crate::reactor::Reactor;
    use std::sync::Mutex;
    use tcache_types::{cache_channel_seed, CacheId};

    fn run_messages(model: DeliveryModel, seed: u64, count: u64) -> (Vec<u64>, DeliveryStatsSnapshot) {
        let mut reactor = Reactor::new();
        let timer = reactor.timer();
        let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
        let counters = Arc::new(DeliveryCounters::default());
        let applied = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&applied);
        reactor.spawn(run_delivery(
            rx,
            timer,
            DeliveryTask {
                model,
                loss_seed: seed,
                delay_seed: seed ^ 0xdead_beef,
                counters: Arc::clone(&counters),
                paused: Arc::new(AtomicBool::new(false)),
                extra_delay_micros: Arc::new(AtomicU64::new(0)),
                batch_budget: DEFAULT_BATCH_BUDGET,
            },
            move |v| sink.lock().unwrap().push(v),
        ));
        for v in 0..count {
            tx.send(v).unwrap();
        }
        drop(tx);
        reactor.run();
        let out = applied.lock().unwrap().clone();
        (out, counters.snapshot())
    }

    #[test]
    fn reliable_model_applies_everything_in_order() {
        let (applied, stats) = run_messages(DeliveryModel::reliable(), 1, 100);
        assert_eq!(applied, (0..100).collect::<Vec<_>>());
        assert_eq!(stats.offered, 100);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.processed(), 100);
        assert_eq!(stats.delay_micros, 0);
        assert_eq!(stats.loss_ratio(), 0.0);
        assert_eq!(stats.mean_delay_micros(), 0.0);
    }

    #[test]
    fn drop_pattern_matches_the_seeded_loss_oracle_exactly() {
        // The loss RNG stream is the discrete-event channel's: replaying
        // LossState over the same seed predicts exactly which messages the
        // live task drops.
        let seed = cache_channel_seed(42, CacheId(1));
        let model = DeliveryModel::uniform(0.4, SimDuration::ZERO);
        let (applied, stats) = run_messages(model, seed, 2_000);

        let mut oracle_rng = StdRng::seed_from_u64(seed);
        let mut oracle = LossState::new(LossModel::uniform(0.4));
        let survivors: Vec<u64> = (0..2_000)
            .filter(|_| !oracle.should_drop(&mut oracle_rng))
            .collect();
        assert_eq!(applied, survivors);
        assert_eq!(stats.dropped, 2_000 - survivors.len() as u64);
        assert!((stats.loss_ratio() - 0.4).abs() < 0.05);
    }

    #[test]
    fn sampled_delays_are_slept_and_accounted() {
        let model = DeliveryModel::uniform(0.0, SimDuration::from_millis(2));
        let start = std::time::Instant::now();
        let (applied, stats) = run_messages(model, 3, 5);
        assert_eq!(applied.len(), 5);
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.delay_micros, 5 * 2_000);
        assert!((stats.mean_delay_micros() - 2_000.0).abs() < 1e-9);
        assert!(start.elapsed() >= std::time::Duration::from_millis(10));
    }

    #[test]
    fn paused_task_holds_delivery_until_resumed() {
        let mut reactor = Reactor::new();
        let timer = reactor.timer();
        let (tx, rx) = bounded_pipe::<u64>(UNBOUNDED, OverflowPolicy::Block);
        let counters = Arc::new(DeliveryCounters::default());
        let paused = Arc::new(AtomicBool::new(true));
        let applied = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&applied);
        reactor.spawn(run_delivery(
            rx,
            timer,
            DeliveryTask {
                model: DeliveryModel::reliable(),
                loss_seed: 1,
                delay_seed: 2,
                counters: Arc::clone(&counters),
                paused: Arc::clone(&paused),
                extra_delay_micros: Arc::new(AtomicU64::new(0)),
                batch_budget: DEFAULT_BATCH_BUDGET,
            },
            move |_| {
                sink.fetch_add(1, Ordering::Relaxed);
            },
        ));
        tx.send(7).unwrap();
        drop(tx);
        let flag = Arc::clone(&paused);
        let unpause = std::thread::spawn(move || {
            // Test-only cross-thread coordination on wall time.
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(std::time::Duration::from_millis(20));
            flag.store(false, Ordering::Release);
        });
        reactor.run();
        unpause.join().unwrap();
        assert_eq!(applied.load(Ordering::Relaxed), 1);
        assert_eq!(counters.snapshot().delivered, 1);
    }

    #[test]
    fn merged_snapshots_accumulate() {
        let (_, a) = run_messages(DeliveryModel::reliable(), 1, 10);
        let mut total = DeliveryStatsSnapshot::default();
        total.merge(a);
        total.merge(a);
        assert_eq!(total.offered, 20);
        assert_eq!(total.delivered, 20);
    }
}
