//! Live transport for the prototype mode.
//!
//! The discrete-event channel in [`crate::channel`] is what the simulation
//! harness uses; this module provides the equivalent building block for a
//! live deployment where the database and the cache run on separate threads
//! (or share one reactor thread, see [`crate::reactor`]) and invalidations
//! flow over a real queue.
//!
//! The queue underneath is a bounded pipe ([`BoundedPipe`]): [`live_channel`]
//! keeps the historical unbounded shape, [`live_channel_with`] bounds the
//! pipe and picks an [`OverflowPolicy`], which is how a live deployment gets
//! backpressure (or bounded staleness) instead of an ever-growing queue
//! behind a slow cache.
//!
//! The channel itself is *reliable*: it transports every message the
//! publisher enqueues (modulo the pipe's overflow policy). The unreliable
//! behaviour of the paper's invalidation links — loss and delay — is
//! modeled at the receiving end by the reactor delivery tasks
//! ([`crate::delivery`]), which draw per-cache seeded drop decisions and
//! sleep sampled delays before applying. Earlier revisions drew loss
//! decisions inline in the sender; that path is gone — one model, one
//! place.
//!
//! [`BoundedPipe`]: crate::pipe::bounded_pipe

use crate::pipe::{
    bounded_pipe, OverflowPolicy, PipeReceiver, PipeSender, PipeStatsSnapshot, RecvBatchFuture,
    RecvFuture, UNBOUNDED,
};
use tcache_db::Invalidation;

/// Sending half of a live invalidation channel. Cloneable so the database
/// façade and background flusher threads can share it.
#[derive(Debug, Clone)]
pub struct LiveSender {
    tx: PipeSender<Invalidation>,
}

/// Receiving half of a live invalidation channel, owned by the cache's
/// invalidation-upcall thread or reactor task.
#[derive(Debug)]
pub struct LiveReceiver {
    rx: PipeReceiver<Invalidation>,
}

/// A live send's outcome, for publish-side attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendReport {
    /// Messages enqueued onto the pipe (under `DropOldest` this includes
    /// sends that evicted a pending message to make room).
    pub enqueued: usize,
    /// Messages lost to pipe overflow: incoming messages rejected by
    /// `DropNewest` plus pending messages evicted by `DropOldest`.
    pub overflowed: usize,
}

/// Creates a connected live sender/receiver pair over an unbounded pipe.
pub fn live_channel() -> (LiveSender, LiveReceiver) {
    live_channel_with(UNBOUNDED, OverflowPolicy::Block)
}

/// Creates a connected live sender/receiver pair whose pipe holds at most
/// `capacity` messages, applying `policy` when full.
pub fn live_channel_with(capacity: usize, policy: OverflowPolicy) -> (LiveSender, LiveReceiver) {
    let (tx, rx) = bounded_pipe(capacity, policy);
    (LiveSender { tx }, LiveReceiver { rx })
}

impl LiveSender {
    /// Sends a batch of invalidations, applying the pipe's overflow policy,
    /// and returns the number actually enqueued. The batch flows straight
    /// from the caller's iterator — no intermediate buffering, no locks, so
    /// cloned senders on other threads enqueue concurrently.
    pub fn send(&self, invalidations: impl IntoIterator<Item = Invalidation>) -> usize {
        self.send_report(invalidations).enqueued
    }

    /// Like [`LiveSender::send`], reporting overflow alongside the enqueued
    /// count so the publisher can attribute what happened.
    pub fn send_report(&self, invalidations: impl IntoIterator<Item = Invalidation>) -> SendReport {
        let mut report = SendReport::default();
        for inv in invalidations {
            // A send only fails if the receiver is gone, which simply means
            // the cache has shut down — the paper's channel is best-effort,
            // so dropping is the correct behaviour.
            if let Ok(outcome) = self.tx.send(inv) {
                if outcome.was_enqueued() {
                    report.enqueued += 1;
                }
                if outcome.lost_a_message() {
                    report.overflowed += 1;
                }
            }
        }
        report
    }

    /// Number of invalidations currently queued in the pipe.
    pub fn backlog(&self) -> usize {
        self.tx.len()
    }

    /// The pipe's counters (enqueued / evicted / rejected / stalls).
    pub fn pipe_stats(&self) -> PipeStatsSnapshot {
        self.tx.stats()
    }
}

impl LiveReceiver {
    /// Receives every invalidation currently queued without blocking.
    pub fn drain(&self) -> Vec<Invalidation> {
        self.rx.drain()
    }

    /// Blocks until one invalidation arrives or the sender side is dropped.
    pub fn recv(&self) -> Option<Invalidation> {
        self.rx.recv()
    }

    /// Asynchronously receives the next invalidation; resolves to `None`
    /// once every sender is dropped and the queue is drained. Poll this
    /// from a [`crate::reactor`] task to multiplex many receivers on one
    /// thread.
    pub fn recv_async(&self) -> RecvFuture<'_, Invalidation> {
        self.rx.recv_async()
    }

    /// Asynchronously waits for traffic, then drains up to `max` queued
    /// invalidations into `buf` in one poll; resolves to the number drained
    /// (`0` once every sender is dropped and the queue is empty). The
    /// batch-dequeue counterpart of [`LiveReceiver::recv_async`].
    pub fn recv_batch_async<'a>(
        &'a self,
        buf: &'a mut Vec<Invalidation>,
        max: usize,
    ) -> RecvBatchFuture<'a, Invalidation> {
        self.rx.recv_batch_async(buf, max)
    }

    /// Number of invalidations currently queued.
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }

    /// The pipe's counters (enqueued / evicted / rejected / stalls).
    pub fn pipe_stats(&self) -> PipeStatsSnapshot {
        self.rx.stats()
    }

    /// Unwraps the underlying pipe receiver, e.g. to hand it to a modeled
    /// delivery task ([`crate::delivery::run_delivery`]).
    pub fn into_pipe_receiver(self) -> PipeReceiver<Invalidation> {
        self.rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, TxnId, Version};

    fn inv(o: u64) -> Invalidation {
        Invalidation::new(ObjectId(o), Version(1), TxnId(1))
    }

    #[test]
    fn channel_delivers_everything() {
        let (tx, rx) = live_channel();
        let sent = tx.send((0..100).map(inv));
        assert_eq!(sent, 100);
        assert_eq!(rx.drain().len(), 100);
        assert!(rx.drain().is_empty());
    }

    #[test]
    fn batches_flow_straight_from_the_iterator() {
        // A one-shot iterator (not a collected Vec) flows straight through.
        let (tx, rx) = live_channel();
        let report = tx.send_report(std::iter::from_fn({
            let mut n = 0u64;
            move || {
                n += 1;
                (n <= 10).then(|| inv(n))
            }
        }));
        assert_eq!(report.enqueued, 10);
        assert_eq!(report.overflowed, 0);
        assert_eq!(tx.backlog(), 10);
        assert_eq!(rx.drain().len(), 10);
    }

    #[test]
    fn bounded_channel_reports_overflow_per_policy() {
        let (tx, rx) = live_channel_with(3, OverflowPolicy::DropNewest);
        let report = tx.send_report((0..10).map(inv));
        assert_eq!(report.enqueued, 3);
        assert_eq!(report.overflowed, 7);
        assert_eq!(rx.pipe_stats().rejected, 7);
        let kept: Vec<_> = rx.drain().iter().map(|i| i.object).collect();
        assert_eq!(kept, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);

        let (tx, rx) = live_channel_with(3, OverflowPolicy::DropOldest);
        let report = tx.send_report((0..10).map(inv));
        // Every message was enqueued, but seven sends evicted a pending
        // message to make room — each one a lost invalidation, attributed.
        assert_eq!(report.enqueued, 10);
        assert_eq!(report.overflowed, 7);
        assert_eq!(rx.pipe_stats().evicted, 7);
        let kept: Vec<_> = rx.drain().iter().map(|i| i.object).collect();
        assert_eq!(kept, vec![ObjectId(7), ObjectId(8), ObjectId(9)]);
    }

    #[test]
    fn recv_blocks_until_message_or_disconnect() {
        let (tx, rx) = live_channel();
        let handle = std::thread::spawn(move || rx.recv());
        tx.send(vec![inv(7)]);
        let got = handle.join().unwrap();
        assert_eq!(got.map(|i| i.object), Some(ObjectId(7)));

        let (tx, rx) = live_channel();
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn concurrent_sender_clones_do_not_serialize() {
        // Regression guard from the era when a loss mutex was held across
        // enqueues: sender A's input iterator yields its second item only
        // after sender B's send has completed. Nothing serializes the two
        // senders, so this must complete.
        let (tx, rx) = live_channel();
        let a = tx.clone();
        let b = tx.clone();
        let (b_done_tx, b_done_rx) = std::sync::mpsc::channel::<()>();

        let handle_a = std::thread::spawn(move || {
            let mut yielded = 0u64;
            let blocking_iter = std::iter::from_fn(move || {
                yielded += 1;
                match yielded {
                    1 => Some(inv(1)),
                    2 => {
                        // Wait until B's send went through before yielding.
                        b_done_rx.recv().expect("B completes");
                        Some(inv(2))
                    }
                    _ => None,
                }
            });
            a.send(blocking_iter)
        });
        let handle_b = std::thread::spawn(move || {
            let sent = b.send((100..200).map(inv));
            b_done_tx.send(()).expect("A is waiting");
            sent
        });
        assert_eq!(handle_a.join().unwrap(), 2);
        assert_eq!(handle_b.join().unwrap(), 100);
        assert_eq!(rx.drain().len(), 102);
    }

    #[test]
    fn many_contending_clones_deliver_everything() {
        let (tx, rx) = live_channel();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let tx = tx.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (0..4)
                        .map(|round| tx.send((0..250).map(|i| inv(t * 10_000 + round * 1000 + i))))
                        .sum::<usize>()
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8_000);
        assert_eq!(rx.drain().len(), 8_000);
    }

    #[test]
    fn sender_is_cloneable_across_threads() {
        let (tx, rx) = live_channel();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                tx.send((0..50).map(|i| inv(t * 100 + i)))
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 200);
        assert_eq!(rx.drain().len(), 200);
    }
}
