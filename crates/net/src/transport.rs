//! Live (threaded) transport for the prototype mode.
//!
//! The discrete-event channel in [`crate::channel`] is what the experiment
//! harness uses; this module provides the equivalent building block for a
//! live deployment where the database and the cache run on separate threads
//! and invalidations flow over a real queue. The same [`LossModel`] is
//! applied at the sending side, so the cache observes the same unreliable
//! behaviour.

use crate::fault::{LossModel, LossState};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcache_db::Invalidation;

/// Sending half of a live invalidation channel. Cloneable so the database
/// façade and background flusher threads can share it.
#[derive(Debug, Clone)]
pub struct LiveSender {
    tx: Sender<Invalidation>,
    loss: std::sync::Arc<Mutex<(LossState, StdRng)>>,
}

/// Receiving half of a live invalidation channel, owned by the cache's
/// invalidation-upcall thread.
#[derive(Debug)]
pub struct LiveReceiver {
    rx: Receiver<Invalidation>,
}

/// Creates a connected live sender/receiver pair with the given loss model.
pub fn live_channel(loss: LossModel, seed: u64) -> (LiveSender, LiveReceiver) {
    let (tx, rx) = unbounded();
    (
        LiveSender {
            tx,
            loss: std::sync::Arc::new(Mutex::new((LossState::new(loss), StdRng::seed_from_u64(seed)))),
        },
        LiveReceiver { rx },
    )
}

impl LiveSender {
    /// Sends a batch of invalidations, dropping each one independently
    /// according to the loss model. Returns the number actually enqueued.
    ///
    /// The loss mutex protects only the drop decisions (loss state + RNG);
    /// it is never held across the channel sends nor while pulling from the
    /// caller's iterator, so cloned senders on other threads enqueue
    /// concurrently instead of serializing behind one batch.
    pub fn send(&self, invalidations: impl IntoIterator<Item = Invalidation>) -> usize {
        let batch: Vec<Invalidation> = invalidations.into_iter().collect();
        let survivors: Vec<Invalidation> = {
            let mut guard = self.loss.lock();
            let (loss, rng) = &mut *guard;
            batch
                .into_iter()
                .filter(|_| !loss.should_drop(rng))
                .collect()
        };
        let mut delivered = 0;
        for inv in survivors {
            // A send only fails if the receiver is gone, which simply means
            // the cache has shut down — the paper's channel is best-effort,
            // so dropping is the correct behaviour.
            if self.tx.send(inv).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }
}

impl LiveReceiver {
    /// Receives every invalidation currently queued without blocking.
    pub fn drain(&self) -> Vec<Invalidation> {
        let mut out = Vec::new();
        while let Ok(inv) = self.rx.try_recv() {
            out.push(inv);
        }
        out
    }

    /// Blocks until one invalidation arrives or the sender side is dropped.
    pub fn recv(&self) -> Option<Invalidation> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, TxnId, Version};

    fn inv(o: u64) -> Invalidation {
        Invalidation::new(ObjectId(o), Version(1), TxnId(1))
    }

    #[test]
    fn lossless_channel_delivers_everything() {
        let (tx, rx) = live_channel(LossModel::None, 1);
        let sent = tx.send((0..100).map(inv));
        assert_eq!(sent, 100);
        assert_eq!(rx.drain().len(), 100);
        assert!(rx.drain().is_empty());
    }

    #[test]
    fn lossy_channel_drops_roughly_the_configured_fraction() {
        let (tx, rx) = live_channel(LossModel::Uniform(0.5), 9);
        let sent = tx.send((0..10_000).map(inv));
        let received = rx.drain().len();
        assert_eq!(sent, received);
        let ratio = received as f64 / 10_000.0;
        assert!((ratio - 0.5).abs() < 0.05, "delivery ratio {ratio}");
    }

    #[test]
    fn recv_blocks_until_message_or_disconnect() {
        let (tx, rx) = live_channel(LossModel::None, 1);
        let handle = std::thread::spawn(move || rx.recv());
        tx.send(vec![inv(7)]);
        let got = handle.join().unwrap();
        assert_eq!(got.map(|i| i.object), Some(ObjectId(7)));

        let (tx, rx) = live_channel(LossModel::None, 1);
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn concurrent_sender_clones_do_not_serialize_on_the_loss_lock() {
        // Regression test for the loss mutex being held across enqueues:
        // sender A's input iterator yields its second item only after sender
        // B's send has completed. When the lock was held across iteration
        // and channel sends this deadlocked (A held the lock while waiting
        // for B; B waited for the lock); now A collects its batch and B's
        // drop decisions only briefly contend on the mutex.
        let (tx, rx) = live_channel(LossModel::None, 1);
        let a = tx.clone();
        let b = tx.clone();
        let (b_done_tx, b_done_rx) = std::sync::mpsc::channel::<()>();

        let handle_a = std::thread::spawn(move || {
            let mut yielded = 0u64;
            let blocking_iter = std::iter::from_fn(move || {
                yielded += 1;
                match yielded {
                    1 => Some(inv(1)),
                    2 => {
                        // Wait until B's send went through before yielding.
                        b_done_rx.recv().expect("B completes");
                        Some(inv(2))
                    }
                    _ => None,
                }
            });
            a.send(blocking_iter)
        });
        let handle_b = std::thread::spawn(move || {
            let sent = b.send((100..200).map(inv));
            b_done_tx.send(()).expect("A is waiting");
            sent
        });
        assert_eq!(handle_a.join().unwrap(), 2);
        assert_eq!(handle_b.join().unwrap(), 100);
        assert_eq!(rx.drain().len(), 102);
    }

    #[test]
    fn many_contending_clones_deliver_everything() {
        let (tx, rx) = live_channel(LossModel::None, 5);
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let tx = tx.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (0..4)
                        .map(|round| tx.send((0..250).map(|i| inv(t * 10_000 + round * 1000 + i))))
                        .sum::<usize>()
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8_000);
        assert_eq!(rx.drain().len(), 8_000);
    }

    #[test]
    fn lossy_concurrent_clones_share_the_loss_state() {
        // The drop decisions stay centralized (one LossState + RNG), so the
        // aggregate loss across contending clones still matches the model.
        let (tx, rx) = live_channel(LossModel::Uniform(0.2), 11);
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send((0..5_000).map(|i| inv(t * 100_000 + i))))
            })
            .collect();
        let sent: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sent, rx.drain().len());
        let ratio = sent as f64 / 20_000.0;
        assert!((ratio - 0.8).abs() < 0.02, "delivery ratio {ratio}");
    }

    #[test]
    fn sender_is_cloneable_across_threads() {
        let (tx, rx) = live_channel(LossModel::None, 1);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                tx.send((0..50).map(|i| inv(t * 100 + i)))
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 200);
        assert_eq!(rx.drain().len(), 200);
    }
}
