//! The asynchronous, unreliable channel between the database and the caches.
//!
//! The defining property of the paper's setting is that invalidations are
//! delivered to edge caches *asynchronously* and *unreliably*: "they could be
//! delayed (e.g., due to buffering or retransmissions after message loss),
//! not sent (e.g., due to an inaccurate list of locations), or even lost"
//! (§II). The experiment drops 20 % of invalidations uniformly at random.
//!
//! This crate models that channel:
//!
//! * [`fault`] — loss models (none, uniform probability, bursts) and
//!   deterministic fault schedules ([`FaultPlan`]: crash/restart windows,
//!   partitions, delay spikes) injectable on both execution planes;
//! * [`latency`] — delay models (constant, uniform, exponential);
//! * [`channel`] — a discrete-event delivery queue combining a loss model,
//!   a latency model and an optional pipe capacity with overflow policy,
//!   used by the simulation harness;
//! * [`fanout`] — one channel per edge cache, independently seeded from
//!   `(run_seed, CacheId)`, for multi-cache deployments;
//! * [`pipe`] — bounded MPSC pipes with explicit overflow policies
//!   (`Block` / `DropNewest` / `DropOldest`) and per-pipe counters, the
//!   building block of the live invalidation plane;
//! * [`reactor`] — a hand-rolled single-threaded reactor (ready queue,
//!   parked-task table, timer wheel) that multiplexes many caches' pipes
//!   in one event loop;
//! * [`delivery`] — the live plane's link model: per-cache reactor tasks
//!   applying the same loss / latency models in wall-clock time, with
//!   seeds derived from `(run_seed, CacheId)`;
//! * [`transport`] — a reliable live queue over [`pipe`] for the prototype
//!   mode (the link's unreliability lives in [`delivery`]).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod channel;
pub mod delivery;
pub mod fanout;
pub mod fault;
pub mod latency;
pub mod pipe;
pub mod reactor;
pub mod transport;

pub use channel::{InvalidationChannel, PendingDelivery};
pub use delivery::{run_delivery, DeliveryCounters, DeliveryModel, DeliveryStatsSnapshot, DeliveryTask};
pub use fanout::{CacheLink, InvalidationFanout};
pub use fault::{FaultCursor, FaultEvent, FaultKind, FaultPlan, LossModel, LossState};
pub use latency::LatencyModel;
pub use pipe::{
    bounded_pipe, OverflowPolicy, PipeReceiver, PipeSendError, PipeSender, PipeStatsSnapshot,
    SendOutcome, UNBOUNDED,
};
pub use reactor::{Reactor, ReactorHandle, ReactorStats, TaskId, TimerHandle};
pub use transport::{live_channel, live_channel_with, LiveReceiver, LiveSender};
