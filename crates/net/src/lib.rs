//! The asynchronous, unreliable channel between the database and the caches.
//!
//! The defining property of the paper's setting is that invalidations are
//! delivered to edge caches *asynchronously* and *unreliably*: "they could be
//! delayed (e.g., due to buffering or retransmissions after message loss),
//! not sent (e.g., due to an inaccurate list of locations), or even lost"
//! (§II). The experiment drops 20 % of invalidations uniformly at random.
//!
//! This crate models that channel:
//!
//! * [`fault`] — loss models (none, uniform probability, bursts);
//! * [`latency`] — delay models (constant, uniform, exponential);
//! * [`channel`] — a discrete-event delivery queue combining a loss model
//!   and a latency model, used by the simulation harness;
//! * [`fanout`] — one channel per edge cache, independently seeded from
//!   `(run_seed, CacheId)`, for multi-cache deployments;
//! * [`transport`] — a live (threaded) transport over `crossbeam-channel`
//!   for the prototype mode, applying the same loss model.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod channel;
pub mod fanout;
pub mod fault;
pub mod latency;
pub mod transport;

pub use channel::{InvalidationChannel, PendingDelivery};
pub use fanout::{CacheLink, InvalidationFanout};
pub use fault::LossModel;
pub use latency::LatencyModel;
pub use transport::{LiveReceiver, LiveSender, live_channel};
