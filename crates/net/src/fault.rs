//! Loss models for the invalidation channel, and deterministic fault
//! schedules ([`FaultPlan`]) injecting coarser-grained failures — cache
//! crashes, backend partitions, delay spikes — on either execution plane.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcache_types::{fault_seed, CacheId, SimDuration, SimTime};

/// Decides whether an individual invalidation message is lost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// Every message is delivered.
    #[default]
    None,
    /// Each message is independently dropped with this probability
    /// (the paper's experiments use 0.2).
    Uniform(f64),
    /// Messages are dropped in bursts: with probability `enter` the channel
    /// enters a lossy burst in which `burst_len` consecutive messages are
    /// dropped. Models configuration changes and buffer overruns.
    Burst {
        /// Probability of entering a burst at any message.
        enter: f64,
        /// Number of consecutive messages dropped once in a burst.
        burst_len: u32,
    },
}

impl LossModel {
    /// The paper's experimental setting: 20 % uniform loss.
    pub fn paper_default() -> Self {
        LossModel::Uniform(0.2)
    }

    /// Creates a uniform loss model, clamping the probability to `[0, 1]`.
    pub fn uniform(p: f64) -> Self {
        LossModel::Uniform(p.clamp(0.0, 1.0))
    }

    /// Returns the long-run expected fraction of dropped messages.
    pub fn expected_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Uniform(p) => p,
            LossModel::Burst { enter, burst_len } => {
                // Renewal argument: each decision message (one not inside a
                // burst tail) either enters a burst — itself the first of
                // `burst_len` consecutive drops — with probability `enter`,
                // or is delivered. A cycle therefore drops `enter · b`
                // messages out of an expected `enter · b + (1 − enter) · 1
                // = 1 + enter · (b − 1)`.
                let b = f64::from(burst_len);
                (enter * b) / (1.0 + enter * (b - 1.0))
            }
        }
    }
}

/// Stateful evaluator of a [`LossModel`]; separate from the model itself so
/// the model stays `Copy` and shareable.
#[derive(Debug, Clone)]
pub struct LossState {
    model: LossModel,
    remaining_burst: u32,
}

impl LossState {
    /// Creates the evaluator for a model.
    pub fn new(model: LossModel) -> Self {
        LossState {
            model,
            remaining_burst: 0,
        }
    }

    /// The model being evaluated.
    pub fn model(&self) -> LossModel {
        self.model
    }

    /// Returns `true` if the next message should be dropped.
    pub fn should_drop<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Uniform(p) => rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::Burst { enter, burst_len } => {
                if self.remaining_burst > 0 {
                    self.remaining_burst -= 1;
                    true
                } else if rng.gen_bool(enter.clamp(0.0, 1.0)) {
                    self.remaining_burst = burst_len.saturating_sub(1);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// What happens to a cache at a scheduled fault instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The cache process dies: its store is lost and its link is severed
    /// until the matching [`FaultKind::Restart`].
    Crash,
    /// The crashed cache comes back with a cold store and a healed link.
    Restart,
    /// The cache is partitioned from the backend: its store survives but
    /// the link is severed until the matching [`FaultKind::PartitionEnd`].
    PartitionStart,
    /// The partition heals; the cache reconnects (and, under a resyncing
    /// recovery policy, replays what it missed).
    PartitionEnd,
    /// Every subsequent send toward this cache is delayed by this much on
    /// top of the configured latency. A later spike replaces the surcharge;
    /// a zero-duration spike clears it.
    DelaySpike(SimDuration),
}

/// One scheduled fault: at time `at`, `kind` happens to `cache`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires (virtual time on both planes).
    pub at: SimTime,
    /// The cache it hits.
    pub cache: CacheId,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, kept sorted by time.
///
/// The plan is pure data: both execution planes walk it with a
/// [`FaultCursor`] and apply due events before each operation, so an
/// identical plan produces identical lifecycle transitions — and, at zero
/// delivery delay, identical monitor verdicts — on either plane.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — every cache stays healthy).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The scheduled events, sorted by time (ties keep insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one event, keeping the schedule sorted by time; events at the
    /// same instant keep their insertion order.
    pub fn push(&mut self, event: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(pos, event);
    }

    /// Schedules a crash at `at` and the restart at `restart_at`
    /// (builder style).
    #[must_use]
    pub fn crash_restart(mut self, cache: CacheId, at: SimTime, restart_at: SimTime) -> Self {
        assert!(at < restart_at, "restart must follow the crash");
        self.push(FaultEvent {
            at,
            cache,
            kind: FaultKind::Crash,
        });
        self.push(FaultEvent {
            at: restart_at,
            cache,
            kind: FaultKind::Restart,
        });
        self
    }

    /// Schedules a partition window `[from, to)` (builder style).
    #[must_use]
    pub fn partition(mut self, cache: CacheId, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "partition must end after it starts");
        self.push(FaultEvent {
            at: from,
            cache,
            kind: FaultKind::PartitionStart,
        });
        self.push(FaultEvent {
            at: to,
            cache,
            kind: FaultKind::PartitionEnd,
        });
        self
    }

    /// Schedules a delay spike of `extra` from `from`, cleared at `until`
    /// (builder style).
    #[must_use]
    pub fn delay_spike(
        mut self,
        cache: CacheId,
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
    ) -> Self {
        assert!(from < until, "spike must end after it starts");
        self.push(FaultEvent {
            at: from,
            cache,
            kind: FaultKind::DelaySpike(extra),
        });
        self.push(FaultEvent {
            at: until,
            cache,
            kind: FaultKind::DelaySpike(SimDuration::ZERO),
        });
        self
    }

    /// Samples `count` non-overlapping partition windows for `cache` within
    /// `[0, horizon)`, each at most `max_len` long, from the run's
    /// dedicated fault stream ([`fault_seed`]) — disjoint from every loss
    /// and delay stream, so a sampled plan never perturbs the drop pattern.
    /// The horizon is split into `count` equal slots with one window placed
    /// inside each, which guarantees the windows cannot overlap.
    pub fn sampled_partitions(
        run_seed: u64,
        cache: CacheId,
        horizon: SimDuration,
        count: usize,
        max_len: SimDuration,
    ) -> Self {
        assert!(count > 0, "at least one window");
        let mut rng = StdRng::seed_from_u64(fault_seed(run_seed));
        let slot = horizon.as_micros() / count as u64;
        assert!(slot > 1, "horizon too short for {count} windows");
        let mut plan = FaultPlan::new();
        for i in 0..count as u64 {
            let len = 1 + rng.gen_range(0..max_len.as_micros().clamp(1, slot - 1));
            let start = i * slot + rng.gen_range(0..slot - len);
            plan = plan.partition(
                cache,
                SimTime::from_micros(start),
                SimTime::from_micros(start + len),
            );
        }
        plan
    }
}

/// Walks a [`FaultPlan`] in time order, handing out the events that have
/// become due. Each plane keeps one cursor per run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultCursor {
    next: usize,
}

impl FaultCursor {
    /// A cursor at the beginning of the schedule.
    pub fn new() -> Self {
        FaultCursor::default()
    }

    /// Returns the events with `at <= now` not yet handed out, advancing
    /// past them.
    pub fn due<'a>(&mut self, plan: &'a FaultPlan, now: SimTime) -> &'a [FaultEvent] {
        let start = self.next;
        while self.next < plan.events.len() && plan.events[self.next].at <= now {
            self.next += 1;
        }
        &plan.events[start..self.next]
    }

    /// Whether every event has been handed out.
    pub fn finished(&self, plan: &FaultPlan) -> bool {
        self.next >= plan.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_drops() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = LossState::new(LossModel::None);
        assert!((0..1000).all(|_| !s.should_drop(&mut rng)));
        assert_eq!(LossModel::None.expected_loss(), 0.0);
        assert_eq!(LossModel::default(), LossModel::None);
    }

    #[test]
    fn uniform_drop_rate_is_close_to_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = LossState::new(LossModel::paper_default());
        let n = 20_000;
        let dropped = (0..n).filter(|_| s.should_drop(&mut rng)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
        assert_eq!(LossModel::paper_default().expected_loss(), 0.2);
    }

    #[test]
    fn uniform_probability_is_clamped() {
        let m = LossModel::uniform(7.5);
        assert_eq!(m, LossModel::Uniform(1.0));
        let m = LossModel::uniform(-3.0);
        assert_eq!(m, LossModel::Uniform(0.0));
    }

    #[test]
    fn burst_drops_consecutive_messages() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = LossModel::Burst {
            enter: 0.05,
            burst_len: 4,
        };
        let mut s = LossState::new(model);
        assert_eq!(s.model(), model);
        // Find a burst and verify at least 4 consecutive drops occur somewhere.
        let outcomes: Vec<bool> = (0..5_000).map(|_| s.should_drop(&mut rng)).collect();
        let mut max_run = 0;
        let mut run = 0;
        for d in outcomes {
            if d {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 4, "expected at least one full burst, got {max_run}");
        assert!(model.expected_loss() > 0.0 && model.expected_loss() < 1.0);
    }

    #[test]
    fn fault_plan_builders_keep_events_sorted() {
        let plan = FaultPlan::new()
            .partition(CacheId(1), SimTime::from_secs(5), SimTime::from_secs(6))
            .crash_restart(CacheId(0), SimTime::from_secs(1), SimTime::from_secs(3))
            .delay_spike(
                CacheId(2),
                SimTime::from_secs(2),
                SimTime::from_secs(4),
                SimDuration::from_millis(50),
            );
        assert_eq!(plan.len(), 6);
        assert!(!plan.is_empty());
        let ats: Vec<u64> = plan.events().iter().map(|e| e.at.0).collect();
        let mut sorted = ats.clone();
        sorted.sort();
        assert_eq!(ats, sorted, "events sorted by time");
        assert_eq!(plan.events()[0].kind, FaultKind::Crash);
        assert_eq!(
            plan.events().last().unwrap().kind,
            FaultKind::PartitionEnd
        );
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn fault_cursor_hands_out_each_event_exactly_once() {
        let plan = FaultPlan::new()
            .crash_restart(CacheId(0), SimTime::from_secs(1), SimTime::from_secs(3))
            .partition(CacheId(1), SimTime::from_secs(2), SimTime::from_secs(4));
        let mut cursor = FaultCursor::new();
        assert!(cursor.due(&plan, SimTime::from_millis(500)).is_empty());
        let first = cursor.due(&plan, SimTime::from_secs(2));
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].kind, FaultKind::Crash);
        assert_eq!(first[1].kind, FaultKind::PartitionStart);
        // Already handed out events do not repeat.
        assert!(cursor.due(&plan, SimTime::from_secs(2)).is_empty());
        assert!(!cursor.finished(&plan));
        assert_eq!(cursor.due(&plan, SimTime::from_secs(100)).len(), 2);
        assert!(cursor.finished(&plan));
    }

    #[test]
    fn sampled_partitions_are_deterministic_and_well_formed() {
        let a = FaultPlan::sampled_partitions(
            42,
            CacheId(0),
            SimDuration::from_secs(10),
            3,
            SimDuration::from_secs(2),
        );
        let b = FaultPlan::sampled_partitions(
            42,
            CacheId(0),
            SimDuration::from_secs(10),
            3,
            SimDuration::from_secs(2),
        );
        assert_eq!(a, b, "same run seed → same plan");
        assert_eq!(a.len(), 6);
        // Windows alternate start/end, never overlap, and stay in bounds.
        let mut open = false;
        let mut last = SimTime::ZERO;
        for e in a.events() {
            assert!(e.at >= last);
            match e.kind {
                FaultKind::PartitionStart => {
                    assert!(!open);
                    open = true;
                }
                FaultKind::PartitionEnd => {
                    assert!(open);
                    open = false;
                }
                other => panic!("unexpected event {other:?}"),
            }
            last = e.at;
        }
        assert!(!open);
        assert!(last <= SimTime::ZERO + SimDuration::from_secs(10));
        let c = FaultPlan::sampled_partitions(
            43,
            CacheId(0),
            SimDuration::from_secs(10),
            3,
            SimDuration::from_secs(2),
        );
        assert_ne!(a, c, "different run seed → different plan");
    }

    proptest! {
        // The stateful evaluator's long-run drop fraction must converge to
        // the closed-form expected loss — for the i.i.d. uniform model and
        // for the bursty renewal model alike. Pins the burst semantics
        // (enter-probability draws only outside a burst, `burst_len`
        // consecutive drops once entered) against
        // `LossModel::expected_loss`.
        #[test]
        fn uniform_long_run_loss_matches_expected(
            p_milli in 0u32..901,
            seed in 0u64..1024,
        ) {
            let p = f64::from(p_milli) / 1000.0;
            let model = LossModel::uniform(p);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = LossState::new(model);
            let n = 50_000;
            let dropped = (0..n).filter(|_| state.should_drop(&mut rng)).count();
            let rate = dropped as f64 / f64::from(n);
            prop_assert!(
                (rate - model.expected_loss()).abs() < 0.03,
                "p={p} rate={rate}"
            );
        }

        #[test]
        fn burst_long_run_loss_matches_expected(
            enter_milli in 10u32..301,
            burst_len in 1u32..7,
            seed in 0u64..1024,
        ) {
            let model = LossModel::Burst {
                enter: f64::from(enter_milli) / 1000.0,
                burst_len,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = LossState::new(model);
            let n = 50_000;
            let dropped = (0..n).filter(|_| state.should_drop(&mut rng)).count();
            let rate = dropped as f64 / f64::from(n);
            prop_assert!(
                (rate - model.expected_loss()).abs() < 0.06,
                "model={model:?} expected={} rate={rate}",
                model.expected_loss()
            );
        }
    }
}
