//! Loss models for the invalidation channel.

use rand::Rng;

/// Decides whether an individual invalidation message is lost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// Every message is delivered.
    #[default]
    None,
    /// Each message is independently dropped with this probability
    /// (the paper's experiments use 0.2).
    Uniform(f64),
    /// Messages are dropped in bursts: with probability `enter` the channel
    /// enters a lossy burst in which `burst_len` consecutive messages are
    /// dropped. Models configuration changes and buffer overruns.
    Burst {
        /// Probability of entering a burst at any message.
        enter: f64,
        /// Number of consecutive messages dropped once in a burst.
        burst_len: u32,
    },
}

impl LossModel {
    /// The paper's experimental setting: 20 % uniform loss.
    pub fn paper_default() -> Self {
        LossModel::Uniform(0.2)
    }

    /// Creates a uniform loss model, clamping the probability to `[0, 1]`.
    pub fn uniform(p: f64) -> Self {
        LossModel::Uniform(p.clamp(0.0, 1.0))
    }

    /// Returns the long-run expected fraction of dropped messages.
    pub fn expected_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Uniform(p) => p,
            LossModel::Burst { enter, burst_len } => {
                // Each non-burst message triggers a burst with prob `enter`,
                // which then drops `burst_len` messages.
                let b = burst_len as f64;
                (enter * b) / (1.0 + enter * b)
            }
        }
    }
}

/// Stateful evaluator of a [`LossModel`]; separate from the model itself so
/// the model stays `Copy` and shareable.
#[derive(Debug, Clone)]
pub struct LossState {
    model: LossModel,
    remaining_burst: u32,
}

impl LossState {
    /// Creates the evaluator for a model.
    pub fn new(model: LossModel) -> Self {
        LossState {
            model,
            remaining_burst: 0,
        }
    }

    /// The model being evaluated.
    pub fn model(&self) -> LossModel {
        self.model
    }

    /// Returns `true` if the next message should be dropped.
    pub fn should_drop<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Uniform(p) => rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::Burst { enter, burst_len } => {
                if self.remaining_burst > 0 {
                    self.remaining_burst -= 1;
                    true
                } else if rng.gen_bool(enter.clamp(0.0, 1.0)) {
                    self.remaining_burst = burst_len.saturating_sub(1);
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_drops() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = LossState::new(LossModel::None);
        assert!((0..1000).all(|_| !s.should_drop(&mut rng)));
        assert_eq!(LossModel::None.expected_loss(), 0.0);
        assert_eq!(LossModel::default(), LossModel::None);
    }

    #[test]
    fn uniform_drop_rate_is_close_to_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = LossState::new(LossModel::paper_default());
        let n = 20_000;
        let dropped = (0..n).filter(|_| s.should_drop(&mut rng)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
        assert_eq!(LossModel::paper_default().expected_loss(), 0.2);
    }

    #[test]
    fn uniform_probability_is_clamped() {
        let m = LossModel::uniform(7.5);
        assert_eq!(m, LossModel::Uniform(1.0));
        let m = LossModel::uniform(-3.0);
        assert_eq!(m, LossModel::Uniform(0.0));
    }

    #[test]
    fn burst_drops_consecutive_messages() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = LossModel::Burst {
            enter: 0.05,
            burst_len: 4,
        };
        let mut s = LossState::new(model);
        assert_eq!(s.model(), model);
        // Find a burst and verify at least 4 consecutive drops occur somewhere.
        let outcomes: Vec<bool> = (0..5_000).map(|_| s.should_drop(&mut rng)).collect();
        let mut max_run = 0;
        let mut run = 0;
        for d in outcomes {
            if d {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 4, "expected at least one full burst, got {max_run}");
        assert!(model.expected_loss() > 0.0 && model.expected_loss() < 1.0);
    }
}
