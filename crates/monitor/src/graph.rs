//! A small directed graph with cycle detection, used for serialization
//! graph testing.

use std::collections::HashMap;
use std::hash::Hash;

/// A directed graph over nodes of type `N`.
#[derive(Debug, Clone)]
pub struct DiGraph<N> {
    /// Adjacency: node → successors.
    edges: HashMap<N, Vec<N>>,
}

impl<N: Eq + Hash + Clone> Default for DiGraph<N> {
    fn default() -> Self {
        DiGraph {
            edges: HashMap::new(),
        }
    }
}

impl<N: Eq + Hash + Clone> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Adds a node with no edges (a no-op if it already exists).
    pub fn add_node(&mut self, node: N) {
        self.edges.entry(node).or_default();
    }

    /// Adds a directed edge `from → to`, creating the nodes as needed.
    /// Parallel edges are collapsed.
    pub fn add_edge(&mut self, from: N, to: N) {
        self.edges.entry(to.clone()).or_default();
        let succ = self.edges.entry(from).or_default();
        if !succ.contains(&to) {
            succ.push(to);
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of (unique) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Returns the successors of a node (empty if unknown).
    pub fn successors(&self, node: &N) -> &[N] {
        self.edges.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns `true` if the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: HashMap<&N, Color> =
            self.edges.keys().map(|n| (n, Color::White)).collect();

        // Iterative DFS with an explicit stack to avoid recursion limits on
        // long histories.
        for start in self.edges.keys() {
            if color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(&N, usize)> = vec![(start, 0)];
            color.insert(start, Color::Grey);
            while let Some(&(node, idx)) = stack.last() {
                let succ = self.successors(node);
                if idx < succ.len() {
                    stack.last_mut().expect("stack nonempty").1 += 1;
                    let next = &succ[idx];
                    match color.get(next).copied().unwrap_or(Color::White) {
                        Color::Grey => return true,
                        Color::White => {
                            color.insert(next, Color::Grey);
                            stack.push((next, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(node, Color::Black);
                    stack.pop();
                }
            }
        }
        false
    }

    /// Returns the nodes in a topological order, or `None` if the graph has
    /// a cycle.
    pub fn topological_order(&self) -> Option<Vec<N>> {
        let mut in_degree: HashMap<&N, usize> =
            self.edges.keys().map(|n| (n, 0)).collect();
        for succs in self.edges.values() {
            for s in succs {
                *in_degree.get_mut(s).expect("edge target registered") += 1;
            }
        }
        let mut ready: Vec<&N> = in_degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(self.edges.len());
        while let Some(node) = ready.pop() {
            order.push(node.clone());
            for s in self.successors(node) {
                let d = in_degree.get_mut(s).expect("edge target registered");
                *d -= 1;
                if *d == 0 {
                    ready.push(s);
                }
            }
        }
        if order.len() == self.edges.len() {
            Some(order)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_acyclic() {
        let g: DiGraph<u32> = DiGraph::new();
        assert!(!g.has_cycle());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.topological_order(), Some(vec![]));
    }

    #[test]
    fn chain_is_acyclic_and_topologically_ordered() {
        let mut g = DiGraph::new();
        g.add_edge(1u32, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_node(99);
        assert!(!g.has_cycle());
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
        let order = g.topological_order().unwrap();
        let pos = |x: u32| order.iter().position(|&n| n == x).unwrap();
        assert!(pos(1) < pos(2) && pos(2) < pos(3) && pos(3) < pos(4));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new();
        g.add_edge(1u32, 1);
        assert!(g.has_cycle());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn two_node_cycle_is_detected() {
        let mut g = DiGraph::new();
        g.add_edge("a", "b");
        g.add_edge("b", "a");
        assert!(g.has_cycle());
    }

    #[test]
    fn long_cycle_is_detected() {
        let mut g = DiGraph::new();
        for i in 0..100u32 {
            g.add_edge(i, i + 1);
        }
        assert!(!g.has_cycle());
        g.add_edge(100, 0);
        assert!(g.has_cycle());
    }

    #[test]
    fn diamond_is_acyclic() {
        let mut g = DiGraph::new();
        g.add_edge(1u32, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 4);
        g.add_edge(3, 4);
        assert!(!g.has_cycle());
        // Parallel edges collapse.
        g.add_edge(1, 2);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.successors(&1).len(), 2);
        assert!(g.successors(&42).is_empty());
    }

    #[test]
    fn deep_graph_does_not_overflow_the_stack() {
        let mut g = DiGraph::new();
        for i in 0..100_000u32 {
            g.add_edge(i, i + 1);
        }
        assert!(!g.has_cycle());
    }
}
