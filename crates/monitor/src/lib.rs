//! The experiment-only consistency monitor (§IV of the paper).
//!
//! "Both the database and the cache report all completed transactions to a
//! consistency monitor […] It performs full serialization graph testing and
//! calculates the rate of inconsistent transactions that committed and the
//! rate of consistent transactions that were unnecessarily aborted."
//!
//! The monitor is *not* part of the T-Cache protocol; it is the oracle used
//! to measure how well the protocol does. Two equivalent checkers are
//! provided:
//!
//! * [`sgt`] — an explicit serialization graph (update transactions plus one
//!   read-only transaction) with cycle detection, the textbook construction;
//! * [`monitor`] — the checker used by the harness, layering the two: a
//!   read-only transaction is first tested against the update *commit
//!   order* (an interval-intersection test over the version history — cheap
//!   and conservative, since placement in commit order implies
//!   serializability), and only reads failing that fast path are re-checked
//!   with the exact SGT, which additionally accepts the rare histories
//!   where independent updates can be reordered to accommodate the reads.
//!   Property tests assert the one-sided relationship between the two
//!   checkers (interval-consistent ⇒ SGT-consistent) that makes this
//!   layering sound.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod graph;
pub mod history;
pub mod ingest;
pub mod monitor;
pub mod report;
pub mod sgt;

pub use history::VersionHistory;
pub use ingest::BatchedIngest;
pub use monitor::ConsistencyMonitor;
pub use report::{MonitorReport, ReadPhase, TransactionClass};
pub use sgt::SerializationGraph;
