//! The experiment-only consistency monitor (§IV of the paper).
//!
//! "Both the database and the cache report all completed transactions to a
//! consistency monitor […] It performs full serialization graph testing and
//! calculates the rate of inconsistent transactions that committed and the
//! rate of consistent transactions that were unnecessarily aborted."
//!
//! The monitor is *not* part of the T-Cache protocol; it is the oracle used
//! to measure how well the protocol does. Two equivalent checkers are
//! provided:
//!
//! * [`sgt`] — an explicit serialization graph (update transactions plus one
//!   read-only transaction) with cycle detection, the textbook construction;
//! * [`monitor`] — the production checker used by the harness: a read-only
//!   transaction is classified consistent when some point of the update
//!   *commit order* covers all its reads (an interval-intersection test over
//!   the version history). Placement in commit order implies
//!   serializability, so this test is **conservative**: everything the SGT
//!   flags as non-serializable is also flagged here, and the rare histories
//!   where independent updates could be reordered to accommodate the reads
//!   are counted as inconsistent as well. Property tests assert exactly this
//!   one-sided relationship.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod graph;
pub mod history;
pub mod monitor;
pub mod report;
pub mod sgt;

pub use history::VersionHistory;
pub use monitor::ConsistencyMonitor;
pub use report::{MonitorReport, TransactionClass};
pub use sgt::SerializationGraph;
