//! Serialization graph testing.
//!
//! The textbook construction: nodes are committed transactions, edges are
//! write→read, write→write and read→write dependencies on each object. A
//! history is serializable iff the graph is acyclic. For the paper's setting
//! the update transactions are already totally ordered by their versions, so
//! the interesting question is whether adding one read-only transaction
//! keeps the graph acyclic; [`SerializationGraph::read_only_consistent`]
//! answers exactly that.
//!
//! The interval test in [`crate::history`] checks the stricter criterion of
//! placement in *commit order*; property tests below verify that it is
//! conservative with respect to this exact checker (interval-consistent ⇒
//! SGT-consistent).

use crate::graph::DiGraph;
use crate::history::VersionHistory;
use tcache_types::{ObjectId, TransactionRecord, TxnId, Version};

/// A node of the serialization graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The fictitious initial transaction that installed every object at
    /// [`Version::INITIAL`].
    Initial,
    /// A committed transaction.
    Txn(TxnId),
}

/// A serialization graph built from a history of committed transactions.
#[derive(Debug, Default)]
pub struct SerializationGraph {
    history: VersionHistory,
    updates: Vec<TransactionRecord>,
}

impl SerializationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SerializationGraph::default()
    }

    /// Adds a committed update transaction to the history.
    pub fn add_update(&mut self, record: &TransactionRecord) {
        debug_assert!(record.is_update() && record.committed);
        for &(object, version) in &record.writes {
            self.history.record_write(object, version, record.id);
        }
        self.updates.push(record.clone());
    }

    /// The version history assembled so far.
    pub fn history(&self) -> &VersionHistory {
        &self.history
    }

    /// Builds the full graph over the update transactions plus one candidate
    /// read-only transaction described by its `(object, version)` reads.
    fn build_graph(&self, reads: &[(ObjectId, Version)], candidate: TxnId) -> DiGraph<Node> {
        let mut g = DiGraph::new();
        g.add_node(Node::Initial);

        // Write-write and write-read edges among update transactions follow
        // version order per object.
        for record in &self.updates {
            let node = Node::Txn(record.id);
            g.add_node(node);
            for &(object, version) in &record.writes {
                // Edge from the previous writer of this object.
                let prev_writer = self
                    .previous_writer(object, version)
                    .map(Node::Txn)
                    .unwrap_or(Node::Initial);
                g.add_edge(prev_writer, node);
                // Edge to the next writer, if it already exists.
                if let Some((_, next)) = self.history.next_write_after(object, version) {
                    g.add_edge(node, Node::Txn(next));
                }
            }
            for &(object, version) in &record.reads {
                let writer = self
                    .history
                    .writer_of(object, version)
                    .map(Node::Txn)
                    .unwrap_or(Node::Initial);
                if writer != node {
                    g.add_edge(writer, node);
                }
                if let Some((_, next)) = self.history.next_write_after(object, version) {
                    if Node::Txn(next) != node {
                        g.add_edge(node, Node::Txn(next));
                    }
                }
            }
        }

        // The candidate read-only transaction: wr edges from the writers of
        // the versions it read, rw anti-dependency edges to the writers of
        // the next versions.
        let cnode = Node::Txn(candidate);
        g.add_node(cnode);
        for &(object, version) in reads {
            let writer = self
                .history
                .writer_of(object, version)
                .map(Node::Txn)
                .unwrap_or(Node::Initial);
            g.add_edge(writer, cnode);
            if let Some((_, next)) = self.history.next_write_after(object, version) {
                g.add_edge(cnode, Node::Txn(next));
            }
        }
        g
    }

    fn previous_writer(&self, object: ObjectId, version: Version) -> Option<TxnId> {
        // The writer of the largest installed version strictly smaller than
        // `version`.
        let mut best: Option<(Version, TxnId)> = None;
        let mut cursor = Version::INITIAL;
        while let Some((v, t)) = self.history.next_write_after(object, cursor) {
            if v >= version {
                break;
            }
            best = Some((v, t));
            cursor = v;
        }
        best.map(|(_, t)| t)
    }

    /// Returns `true` if the update history together with the given
    /// read-only transaction is serializable (the graph is acyclic).
    pub fn read_only_consistent(&self, candidate: TxnId, reads: &[(ObjectId, Version)]) -> bool {
        // A read of a version that never existed is trivially inconsistent.
        for &(object, version) in reads {
            if version != Version::INITIAL && self.history.writer_of(object, version).is_none() {
                return false;
            }
        }
        !self.build_graph(reads, candidate).has_cycle()
    }

    /// Returns `true` if the update-only history is serializable. With the
    /// database's version-ordered commits this always holds; the check exists
    /// to validate the database in integration tests.
    pub fn updates_serializable(&self) -> bool {
        !self.build_graph(&[], TxnId(u64::MAX)).has_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::SimTime;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u64) -> Version {
        Version(i)
    }

    fn update(id: u64, version: u64, objects: &[u64]) -> TransactionRecord {
        TransactionRecord::update_committed(
            TxnId(id),
            objects.iter().map(|&obj| (o(obj), v(version - 1))).collect(),
            objects.iter().map(|&obj| (o(obj), v(version))).collect(),
            SimTime::ZERO,
        )
    }

    fn graph_with_updates() -> SerializationGraph {
        let mut g = SerializationGraph::new();
        // t1 writes o1,o2 at v1; t2 writes o1 at v2; t3 writes o2 at v3.
        g.add_update(&TransactionRecord::update_committed(
            TxnId(1),
            vec![(o(1), v(0)), (o(2), v(0))],
            vec![(o(1), v(1)), (o(2), v(1))],
            SimTime::ZERO,
        ));
        g.add_update(&TransactionRecord::update_committed(
            TxnId(2),
            vec![(o(1), v(1))],
            vec![(o(1), v(2))],
            SimTime::ZERO,
        ));
        g.add_update(&TransactionRecord::update_committed(
            TxnId(3),
            vec![(o(2), v(1))],
            vec![(o(2), v(3))],
            SimTime::ZERO,
        ));
        g
    }

    #[test]
    fn update_history_is_serializable() {
        let g = graph_with_updates();
        assert!(g.updates_serializable());
        assert_eq!(g.history().total_writes(), 4);
    }

    #[test]
    fn consistent_read_only_transactions_pass() {
        let g = graph_with_updates();
        // Snapshot after t1.
        assert!(g.read_only_consistent(TxnId(100), &[(o(1), v(1)), (o(2), v(1))]));
        // Snapshot after everything.
        assert!(g.read_only_consistent(TxnId(101), &[(o(1), v(2)), (o(2), v(3))]));
        // Initial snapshot.
        assert!(g.read_only_consistent(TxnId(102), &[(o(1), v(0)), (o(2), v(0))]));
        // Mixed but placeable: o1@2 (latest) with o2@1 (superseded at v3):
        // place between t2 and t3.
        assert!(g.read_only_consistent(TxnId(103), &[(o(1), v(2)), (o(2), v(1))]));
        // Empty read set.
        assert!(g.read_only_consistent(TxnId(104), &[]));
    }

    #[test]
    fn torn_reads_create_cycles() {
        let g = graph_with_updates();
        // o1 at the initial version but o2 after t1: t1 → T (wr on o2) and
        // T → t1 (rw on o1) — a cycle.
        assert!(!g.read_only_consistent(TxnId(100), &[(o(1), v(0)), (o(2), v(1))]));
    }

    #[test]
    fn independent_updates_may_be_reordered_by_sgt_but_not_by_commit_order() {
        let g = graph_with_updates();
        // T reads o1@1 (overwritten by t2) and o2@3 (written by t3). t2 and
        // t3 do not conflict, so the serial order t1, t3, T, t2 is valid and
        // the SGT accepts the reads…
        let reads = [(o(1), v(1)), (o(2), v(3))];
        assert!(g.read_only_consistent(TxnId(101), &reads));
        // …while the commit-order (interval) test conservatively rejects
        // them: there is no single point of the commit order covering both.
        assert!(!g.history().reads_consistent(&reads));
    }

    #[test]
    fn reading_a_nonexistent_version_is_inconsistent() {
        let g = graph_with_updates();
        assert!(!g.read_only_consistent(TxnId(100), &[(o(1), v(7))]));
    }

    #[test]
    fn interval_test_is_conservative_wrt_sgt_on_examples() {
        let g = graph_with_updates();
        let cases: Vec<Vec<(ObjectId, Version)>> = vec![
            vec![(o(1), v(1)), (o(2), v(1))],
            vec![(o(1), v(0)), (o(2), v(1))],
            vec![(o(1), v(2)), (o(2), v(1))],
            vec![(o(1), v(1)), (o(2), v(3))],
            vec![(o(1), v(2)), (o(2), v(3))],
        ];
        for (i, reads) in cases.iter().enumerate() {
            let by_interval = g.history().reads_consistent(reads);
            let by_graph = g.read_only_consistent(TxnId(1000 + i as u64), reads);
            assert!(
                !by_interval || by_graph,
                "case {i}: interval-consistent reads must be SGT-consistent"
            );
        }
    }

    #[test]
    fn longer_update_chains_stay_serializable() {
        let mut g = SerializationGraph::new();
        for i in 1..=50u64 {
            g.add_update(&update(i, i, &[i % 5, (i + 1) % 5]));
        }
        assert!(g.updates_serializable());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tcache_types::SimTime;

    /// Generates a random but well-formed update history over a small object
    /// space: transaction `i` (version `i+1`) writes a random subset.
    fn arb_history() -> impl Strategy<Value = Vec<Vec<u64>>> {
        prop::collection::vec(prop::collection::vec(0u64..6, 1..4), 1..12)
    }

    proptest! {
        /// The fast interval test is conservative with respect to the
        /// explicit serialization-graph test: whenever it classifies a read
        /// set as consistent, the SGT does too.
        #[test]
        fn interval_test_is_conservative_wrt_sgt(
            history in arb_history(),
            reads in prop::collection::vec((0u64..6, 0u64..13), 1..5),
        ) {
            let mut sgt = SerializationGraph::new();
            for (i, objects) in history.iter().enumerate() {
                let version = Version(i as u64 + 1);
                let mut distinct = objects.clone();
                distinct.sort();
                distinct.dedup();
                let record = TransactionRecord::update_committed(
                    TxnId(i as u64 + 1),
                    distinct.iter().map(|&o| (ObjectId(o), Version(i as u64))).collect(),
                    distinct.iter().map(|&o| (ObjectId(o), version)).collect(),
                    SimTime::ZERO,
                );
                sgt.add_update(&record);
            }
            let reads: Vec<(ObjectId, Version)> = reads
                .into_iter()
                .map(|(o, v)| (ObjectId(o), Version(v)))
                .collect();
            let by_interval = sgt.history().reads_consistent(&reads);
            let by_graph = sgt.read_only_consistent(TxnId(9999), &reads);
            prop_assert!(!by_interval || by_graph,
                "interval-consistent reads must be SGT-consistent");
        }

        /// Reads taken from a single prefix of the history (a true snapshot)
        /// are always consistent under both checkers.
        #[test]
        fn snapshots_are_always_consistent(
            history in arb_history(),
            cut in 0usize..12,
        ) {
            let mut sgt = SerializationGraph::new();
            let mut latest: std::collections::HashMap<u64, Version> = Default::default();
            for (i, objects) in history.iter().enumerate() {
                let version = Version(i as u64 + 1);
                let mut distinct = objects.clone();
                distinct.sort();
                distinct.dedup();
                let record = TransactionRecord::update_committed(
                    TxnId(i as u64 + 1),
                    vec![],
                    distinct.iter().map(|&o| (ObjectId(o), version)).collect(),
                    SimTime::ZERO,
                );
                sgt.add_update(&record);
                if i < cut {
                    for &o in &distinct {
                        latest.insert(o, version);
                    }
                }
            }
            let reads: Vec<(ObjectId, Version)> = (0u64..6)
                .map(|o| (ObjectId(o), latest.get(&o).copied().unwrap_or(Version::INITIAL)))
                .collect();
            prop_assert!(sgt.history().reads_consistent(&reads));
            prop_assert!(sgt.read_only_consistent(TxnId(9999), &reads));
        }
    }
}
