//! Serialization graph testing.
//!
//! The textbook construction: nodes are committed transactions, edges are
//! write→read, write→write and read→write dependencies on each object. A
//! history is serializable iff the graph is acyclic. For the paper's setting
//! the update transactions are already totally ordered by their versions, so
//! the interesting question is whether adding one read-only transaction
//! keeps the graph acyclic; [`SerializationGraph::read_only_consistent`]
//! answers exactly that.
//!
//! The interval test in [`crate::history`] checks the stricter criterion of
//! placement in *commit order*; property tests below verify that it is
//! conservative with respect to this exact checker (interval-consistent ⇒
//! SGT-consistent).

use crate::graph::DiGraph;
use crate::history::VersionHistory;
use std::collections::{HashMap, HashSet};
use tcache_types::{ObjectId, TransactionRecord, TxnId, Version};

/// A node of the serialization graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The fictitious initial transaction that installed every object at
    /// [`Version::INITIAL`].
    Initial,
    /// A committed transaction.
    Txn(TxnId),
}

/// A serialization graph built from a history of committed transactions.
///
/// Besides the record list that [`SerializationGraph::read_only_consistent`]
/// rebuilds a [`DiGraph`] from, the graph maintains its update→update edges
/// **incrementally** as records arrive (edges from a transaction's version
/// predecessors and readers-of-overwritten-versions). When records arrive in
/// version order — which they always do coming from the database, whose
/// commit order *is* version order — every maintained edge points from a
/// lower-version transaction to a higher-version one, and
/// [`SerializationGraph::read_only_consistent_fast`] answers candidate
/// queries with a version-bounded reachability search instead of an O(n)
/// graph rebuild. Out-of-order records flip a flag that routes fast queries
/// through the exact rebuild path instead.
#[derive(Debug, Default)]
pub struct SerializationGraph {
    history: VersionHistory,
    /// Full records, retained to serve the exact rebuild path
    /// ([`SerializationGraph::read_only_consistent`] and the out-of-order
    /// fallback of the fast query). Retention cannot be deferred until
    /// `out_of_order` flips: the rebuild needs every record from the start
    /// of the history, so dropping early records would silently break the
    /// fallback. Memory is the same order as the adjacency lists
    /// (per-record reads + writes); histories beyond what a process should
    /// retain belong in an external log, not this in-memory oracle.
    updates: Vec<TransactionRecord>,
    /// Update→update successor lists, maintained incrementally.
    adjacency: HashMap<TxnId, Vec<TxnId>>,
    /// The (max) version each update transaction installed.
    txn_version: HashMap<TxnId, Version>,
    /// Which update transactions read each installed `(object, version)`
    /// pair; consulted to add read→overwriter anti-dependency edges when
    /// the overwrite arrives.
    readers: HashMap<(ObjectId, Version), Vec<TxnId>>,
    /// Set when an edge or record arrives out of version order, breaking
    /// the invariant the fast query's pruning relies on; fast queries then
    /// take the exact rebuild path instead.
    out_of_order: bool,
}

impl SerializationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SerializationGraph::default()
    }

    /// Adds a committed update transaction to the history.
    pub fn add_update(&mut self, record: &TransactionRecord) {
        debug_assert!(record.is_update() && record.committed);
        let version = record
            .writes
            .iter()
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(Version::INITIAL);
        self.txn_version.insert(record.id, version);

        for &(object, version) in &record.writes {
            // Incremental edges, derived before the write enters the
            // history: the previous writer precedes this transaction, and
            // so does everything that read the version being overwritten.
            let prev = self.history.latest_version(object);
            if version < prev {
                self.out_of_order = true;
            }
            if let Some(writer) = self.history.writer_of(object, prev) {
                self.add_adjacency(writer, record.id);
            }
            // In-order, nothing reads a version after it is overwritten, so
            // the reader list can be consumed (freeing it) rather than
            // cloned; a late out-of-order reader flips `out_of_order` and
            // queries fall back to the rebuild, which ignores this index.
            if let Some(readers) = self.readers.remove(&(object, prev)) {
                for reader in readers {
                    self.add_adjacency(reader, record.id);
                }
            }
            self.history.record_write(object, version, record.id);
        }

        for &(object, version) in &record.reads {
            match self.history.writer_of(object, version) {
                Some(writer) if writer != record.id => {
                    self.add_adjacency(writer, record.id);
                }
                Some(_) => {}
                None if version != Version::INITIAL => {
                    // An update claiming to have read a version that was
                    // never installed: the incremental reader index cannot
                    // model it, so route fast queries through the rebuild.
                    self.out_of_order = true;
                }
                None => {}
            }
            if let Some((_, next)) = self.history.next_write_after(object, version) {
                if next != record.id {
                    self.add_adjacency(record.id, next);
                }
            }
            self.readers.entry((object, version)).or_default().push(record.id);
        }

        self.updates.push(record.clone());
    }

    fn add_adjacency(&mut self, from: TxnId, to: TxnId) {
        if from == to {
            return;
        }
        let (fv, tv) = (self.txn_version.get(&from), self.txn_version.get(&to));
        if let (Some(fv), Some(tv)) = (fv, tv) {
            if fv >= tv {
                self.out_of_order = true;
            }
        }
        let succ = self.adjacency.entry(from).or_default();
        if !succ.contains(&to) {
            succ.push(to);
        }
    }

    /// The version history assembled so far.
    pub fn history(&self) -> &VersionHistory {
        &self.history
    }

    /// Builds the full graph over the update transactions plus one candidate
    /// read-only transaction described by its `(object, version)` reads.
    fn build_graph(&self, reads: &[(ObjectId, Version)], candidate: TxnId) -> DiGraph<Node> {
        let mut g = DiGraph::new();
        g.add_node(Node::Initial);

        // Write-write and write-read edges among update transactions follow
        // version order per object.
        for record in &self.updates {
            let node = Node::Txn(record.id);
            g.add_node(node);
            for &(object, version) in &record.writes {
                // Edge from the previous writer of this object.
                let prev_writer = self
                    .previous_writer(object, version)
                    .map(Node::Txn)
                    .unwrap_or(Node::Initial);
                g.add_edge(prev_writer, node);
                // Edge to the next writer, if it already exists.
                if let Some((_, next)) = self.history.next_write_after(object, version) {
                    g.add_edge(node, Node::Txn(next));
                }
            }
            for &(object, version) in &record.reads {
                let writer = self
                    .history
                    .writer_of(object, version)
                    .map(Node::Txn)
                    .unwrap_or(Node::Initial);
                if writer != node {
                    g.add_edge(writer, node);
                }
                if let Some((_, next)) = self.history.next_write_after(object, version) {
                    if Node::Txn(next) != node {
                        g.add_edge(node, Node::Txn(next));
                    }
                }
            }
        }

        // The candidate read-only transaction: wr edges from the writers of
        // the versions it read, rw anti-dependency edges to the writers of
        // the next versions.
        let cnode = Node::Txn(candidate);
        g.add_node(cnode);
        for &(object, version) in reads {
            let writer = self
                .history
                .writer_of(object, version)
                .map(Node::Txn)
                .unwrap_or(Node::Initial);
            g.add_edge(writer, cnode);
            if let Some((_, next)) = self.history.next_write_after(object, version) {
                g.add_edge(cnode, Node::Txn(next));
            }
        }
        g
    }

    fn previous_writer(&self, object: ObjectId, version: Version) -> Option<TxnId> {
        // The writer of the largest installed version strictly smaller than
        // `version`.
        let mut best: Option<(Version, TxnId)> = None;
        let mut cursor = Version::INITIAL;
        while let Some((v, t)) = self.history.next_write_after(object, cursor) {
            if v >= version {
                break;
            }
            best = Some((v, t));
            cursor = v;
        }
        best.map(|(_, t)| t)
    }

    /// Returns `true` if the update history together with the given
    /// read-only transaction is serializable (the graph is acyclic).
    pub fn read_only_consistent(&self, candidate: TxnId, reads: &[(ObjectId, Version)]) -> bool {
        // A read of a version that never existed is trivially inconsistent.
        for &(object, version) in reads {
            if version != Version::INITIAL && self.history.writer_of(object, version).is_none() {
                return false;
            }
        }
        !self.build_graph(reads, candidate).has_cycle()
    }

    /// Same verdict as [`SerializationGraph::read_only_consistent`], but
    /// answered from the incrementally maintained edges with a bounded
    /// reachability search.
    ///
    /// The candidate read-only transaction `R` has incoming edges from the
    /// writers of the versions it read (its *predecessors* `P`) and outgoing
    /// anti-dependency edges to the writers of the next versions (its
    /// *successors* `S`). Adding `R` creates a cycle iff some `p ∈ P` is
    /// reachable from some `s ∈ S` among the update transactions. When the
    /// history is version-ordered, every update edge increases the version,
    /// so the search from `S` can prune any transaction whose version
    /// exceeds `max(version(P))` — in practice that confines it to the
    /// staleness window of the read set, a handful of transactions, which
    /// is what makes the exact oracle affordable on every query.
    pub fn read_only_consistent_fast(&self, reads: &[(ObjectId, Version)]) -> bool {
        if self.out_of_order {
            // Fall back to the exact rebuild; the pruning below would be
            // unsound on a non-version-ordered edge set.
            return self.read_only_consistent(TxnId(u64::MAX), reads);
        }
        let mut predecessors: HashSet<TxnId> = HashSet::new();
        let mut successors: HashSet<TxnId> = HashSet::new();
        for &(object, version) in reads {
            match self.history.writer_of(object, version) {
                Some(writer) => {
                    predecessors.insert(writer);
                }
                None if version != Version::INITIAL => return false,
                None => {}
            }
            if let Some((_, next)) = self.history.next_write_after(object, version) {
                successors.insert(next);
            }
        }
        if successors.is_empty() || predecessors.is_empty() {
            // R has no outgoing (or no incoming) edges: no cycle through R.
            return true;
        }
        let horizon = predecessors
            .iter()
            .filter_map(|p| self.txn_version.get(p))
            .max()
            .copied()
            .unwrap_or(Version::INITIAL);

        // BFS from every successor, pruned to versions <= horizon.
        let mut queue: Vec<TxnId> = Vec::new();
        let mut visited: HashSet<TxnId> = HashSet::new();
        for &s in &successors {
            if self.txn_version.get(&s).is_some_and(|&v| v <= horizon) {
                if predecessors.contains(&s) {
                    return false;
                }
                if visited.insert(s) {
                    queue.push(s);
                }
            }
        }
        while let Some(txn) = queue.pop() {
            let Some(succ) = self.adjacency.get(&txn) else {
                continue;
            };
            for &next in succ {
                if self.txn_version.get(&next).is_none_or(|&v| v > horizon) {
                    continue;
                }
                if predecessors.contains(&next) {
                    return false;
                }
                if visited.insert(next) {
                    queue.push(next);
                }
            }
        }
        true
    }

    /// Returns `true` if the update-only history is serializable. With the
    /// database's version-ordered commits this always holds; the check exists
    /// to validate the database in integration tests.
    pub fn updates_serializable(&self) -> bool {
        !self.build_graph(&[], TxnId(u64::MAX)).has_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::SimTime;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u64) -> Version {
        Version(i)
    }

    fn update(id: u64, version: u64, objects: &[u64]) -> TransactionRecord {
        TransactionRecord::update_committed(
            TxnId(id),
            objects.iter().map(|&obj| (o(obj), v(version - 1))).collect(),
            objects.iter().map(|&obj| (o(obj), v(version))).collect(),
            SimTime::ZERO,
        )
    }

    fn graph_with_updates() -> SerializationGraph {
        let mut g = SerializationGraph::new();
        // t1 writes o1,o2 at v1; t2 writes o1 at v2; t3 writes o2 at v3.
        g.add_update(&TransactionRecord::update_committed(
            TxnId(1),
            vec![(o(1), v(0)), (o(2), v(0))],
            vec![(o(1), v(1)), (o(2), v(1))],
            SimTime::ZERO,
        ));
        g.add_update(&TransactionRecord::update_committed(
            TxnId(2),
            vec![(o(1), v(1))],
            vec![(o(1), v(2))],
            SimTime::ZERO,
        ));
        g.add_update(&TransactionRecord::update_committed(
            TxnId(3),
            vec![(o(2), v(1))],
            vec![(o(2), v(3))],
            SimTime::ZERO,
        ));
        g
    }

    #[test]
    fn update_history_is_serializable() {
        let g = graph_with_updates();
        assert!(g.updates_serializable());
        assert_eq!(g.history().total_writes(), 4);
    }

    #[test]
    fn consistent_read_only_transactions_pass() {
        let g = graph_with_updates();
        // Snapshot after t1.
        assert!(g.read_only_consistent(TxnId(100), &[(o(1), v(1)), (o(2), v(1))]));
        // Snapshot after everything.
        assert!(g.read_only_consistent(TxnId(101), &[(o(1), v(2)), (o(2), v(3))]));
        // Initial snapshot.
        assert!(g.read_only_consistent(TxnId(102), &[(o(1), v(0)), (o(2), v(0))]));
        // Mixed but placeable: o1@2 (latest) with o2@1 (superseded at v3):
        // place between t2 and t3.
        assert!(g.read_only_consistent(TxnId(103), &[(o(1), v(2)), (o(2), v(1))]));
        // Empty read set.
        assert!(g.read_only_consistent(TxnId(104), &[]));
    }

    #[test]
    fn torn_reads_create_cycles() {
        let g = graph_with_updates();
        // o1 at the initial version but o2 after t1: t1 → T (wr on o2) and
        // T → t1 (rw on o1) — a cycle.
        assert!(!g.read_only_consistent(TxnId(100), &[(o(1), v(0)), (o(2), v(1))]));
    }

    #[test]
    fn independent_updates_may_be_reordered_by_sgt_but_not_by_commit_order() {
        let g = graph_with_updates();
        // T reads o1@1 (overwritten by t2) and o2@3 (written by t3). t2 and
        // t3 do not conflict, so the serial order t1, t3, T, t2 is valid and
        // the SGT accepts the reads…
        let reads = [(o(1), v(1)), (o(2), v(3))];
        assert!(g.read_only_consistent(TxnId(101), &reads));
        // …while the commit-order (interval) test conservatively rejects
        // them: there is no single point of the commit order covering both.
        assert!(!g.history().reads_consistent(&reads));
    }

    #[test]
    fn reading_a_nonexistent_version_is_inconsistent() {
        let g = graph_with_updates();
        assert!(!g.read_only_consistent(TxnId(100), &[(o(1), v(7))]));
    }

    #[test]
    fn interval_test_is_conservative_wrt_sgt_on_examples() {
        let g = graph_with_updates();
        let cases: Vec<Vec<(ObjectId, Version)>> = vec![
            vec![(o(1), v(1)), (o(2), v(1))],
            vec![(o(1), v(0)), (o(2), v(1))],
            vec![(o(1), v(2)), (o(2), v(1))],
            vec![(o(1), v(1)), (o(2), v(3))],
            vec![(o(1), v(2)), (o(2), v(3))],
        ];
        for (i, reads) in cases.iter().enumerate() {
            let by_interval = g.history().reads_consistent(reads);
            let by_graph = g.read_only_consistent(TxnId(1000 + i as u64), reads);
            assert!(
                !by_interval || by_graph,
                "case {i}: interval-consistent reads must be SGT-consistent"
            );
        }
    }

    #[test]
    fn longer_update_chains_stay_serializable() {
        let mut g = SerializationGraph::new();
        for i in 1..=50u64 {
            g.add_update(&update(i, i, &[i % 5, (i + 1) % 5]));
        }
        assert!(g.updates_serializable());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tcache_types::SimTime;

    /// Generates a random but well-formed update history over a small object
    /// space: transaction `i` (version `i+1`) writes a random subset.
    fn arb_history() -> impl Strategy<Value = Vec<Vec<u64>>> {
        prop::collection::vec(prop::collection::vec(0u64..6, 1..4), 1..12)
    }

    proptest! {
        /// The fast interval test is conservative with respect to the
        /// explicit serialization-graph test: whenever it classifies a read
        /// set as consistent, the SGT does too.
        #[test]
        fn interval_test_is_conservative_wrt_sgt(
            history in arb_history(),
            reads in prop::collection::vec((0u64..6, 0u64..13), 1..5),
        ) {
            let mut sgt = SerializationGraph::new();
            for (i, objects) in history.iter().enumerate() {
                let version = Version(i as u64 + 1);
                let mut distinct = objects.clone();
                distinct.sort();
                distinct.dedup();
                let record = TransactionRecord::update_committed(
                    TxnId(i as u64 + 1),
                    distinct.iter().map(|&o| (ObjectId(o), Version(i as u64))).collect(),
                    distinct.iter().map(|&o| (ObjectId(o), version)).collect(),
                    SimTime::ZERO,
                );
                sgt.add_update(&record);
            }
            let reads: Vec<(ObjectId, Version)> = reads
                .into_iter()
                .map(|(o, v)| (ObjectId(o), Version(v)))
                .collect();
            let by_interval = sgt.history().reads_consistent(&reads);
            let by_graph = sgt.read_only_consistent(TxnId(9999), &reads);
            prop_assert!(!by_interval || by_graph,
                "interval-consistent reads must be SGT-consistent");
        }

        /// The incremental reachability query agrees with the exact
        /// graph-rebuild checker on every in-order history.
        #[test]
        fn fast_query_matches_rebuild(
            history in arb_history(),
            reads in prop::collection::vec((0u64..6, 0u64..13), 1..5),
        ) {
            let mut sgt = SerializationGraph::new();
            // Reads mirror the database: each update reads the actual
            // current version of everything it writes.
            let mut latest: std::collections::HashMap<u64, Version> = Default::default();
            for (i, objects) in history.iter().enumerate() {
                let version = Version(i as u64 + 1);
                let mut distinct = objects.clone();
                distinct.sort();
                distinct.dedup();
                let record = TransactionRecord::update_committed(
                    TxnId(i as u64 + 1),
                    distinct
                        .iter()
                        .map(|&o| {
                            (ObjectId(o), latest.get(&o).copied().unwrap_or(Version::INITIAL))
                        })
                        .collect(),
                    distinct.iter().map(|&o| (ObjectId(o), version)).collect(),
                    SimTime::ZERO,
                );
                for &o in &distinct {
                    latest.insert(o, version);
                }
                sgt.add_update(&record);
            }
            let reads: Vec<(ObjectId, Version)> = reads
                .into_iter()
                .map(|(o, v)| (ObjectId(o), Version(v)))
                .collect();
            let fast = sgt.read_only_consistent_fast(&reads);
            let slow = sgt.read_only_consistent(TxnId(9999), &reads);
            prop_assert_eq!(fast, slow, "fast and rebuild oracles disagree on {:?}", &reads);
        }

        /// Reads taken from a single prefix of the history (a true snapshot)
        /// are always consistent under both checkers.
        #[test]
        fn snapshots_are_always_consistent(
            history in arb_history(),
            cut in 0usize..12,
        ) {
            let mut sgt = SerializationGraph::new();
            let mut latest: std::collections::HashMap<u64, Version> = Default::default();
            for (i, objects) in history.iter().enumerate() {
                let version = Version(i as u64 + 1);
                let mut distinct = objects.clone();
                distinct.sort();
                distinct.dedup();
                let record = TransactionRecord::update_committed(
                    TxnId(i as u64 + 1),
                    vec![],
                    distinct.iter().map(|&o| (ObjectId(o), version)).collect(),
                    SimTime::ZERO,
                );
                sgt.add_update(&record);
                if i < cut {
                    for &o in &distinct {
                        latest.insert(o, version);
                    }
                }
            }
            let reads: Vec<(ObjectId, Version)> = (0u64..6)
                .map(|o| (ObjectId(o), latest.get(&o).copied().unwrap_or(Version::INITIAL)))
                .collect();
            prop_assert!(sgt.history().reads_consistent(&reads));
            prop_assert!(sgt.read_only_consistent(TxnId(9999), &reads));
        }
    }
}
