//! Aggregated monitor statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The monitor's verdict on one read-only transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionClass {
    /// The transaction committed and its reads were mutually consistent.
    CommittedConsistent,
    /// The transaction committed but observed inconsistent data — the event
    /// T-Cache tries to prevent.
    CommittedInconsistent,
    /// The cache aborted the transaction and the data it had already
    /// observed was indeed impossible to extend to a consistent snapshot, or
    /// the abort prevented it from observing stale data (a useful abort).
    AbortedJustified,
    /// The cache aborted the transaction even though everything it had
    /// observed so far was still consistent ("consistent transactions that
    /// were unnecessarily aborted").
    AbortedUnnecessary,
}

impl TransactionClass {
    /// Returns `true` for the two aborted classes.
    pub fn is_aborted(self) -> bool {
        matches!(
            self,
            TransactionClass::AbortedJustified | TransactionClass::AbortedUnnecessary
        )
    }

    /// Returns `true` for the two committed classes.
    pub fn is_committed(self) -> bool {
        !self.is_aborted()
    }
}

/// The cache-lifecycle phase a read-only transaction executed in, as
/// reported by the execution plane alongside the transaction itself.
///
/// A cache that has exhausted its staleness budget while cut off from the
/// invalidation stream serves reads *pass-through* from the database
/// (`Degraded`); everything else — including reads served from a stale but
/// still-within-budget cache — is `Healthy`. Keeping the two populations
/// separate lets the fault-tolerance evaluation attribute inconsistency to
/// the phase that produced it: degraded-window reads come straight from the
/// backend and must never be classified as violations.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum ReadPhase {
    /// The cache was serving reads from its own store.
    Healthy,
    /// The cache was passing reads through to the database under bounded
    /// staleness degradation.
    Degraded,
}

impl fmt::Display for ReadPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadPhase::Healthy => write!(f, "healthy"),
            ReadPhase::Degraded => write!(f, "degraded"),
        }
    }
}

/// Aggregate counts over all read-only transactions observed by the monitor,
/// plus the update-transaction totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Read-only transactions that committed with consistent reads.
    pub committed_consistent: u64,
    /// Read-only transactions that committed having observed inconsistency.
    pub committed_inconsistent: u64,
    /// Aborted read-only transactions whose observed reads were already
    /// inconsistent (or whose abort prevented an inconsistent read).
    pub aborted_justified: u64,
    /// Aborted read-only transactions whose observed reads were still
    /// consistent.
    pub aborted_unnecessary: u64,
    /// Committed update transactions.
    pub updates_committed: u64,
    /// Update transactions aborted by the database.
    pub updates_aborted: u64,
}

impl MonitorReport {
    /// Total read-only transactions observed.
    pub fn read_only_total(&self) -> u64 {
        self.committed_consistent
            + self.committed_inconsistent
            + self.aborted_justified
            + self.aborted_unnecessary
    }

    /// Total committed read-only transactions.
    pub fn committed_total(&self) -> u64 {
        self.committed_consistent + self.committed_inconsistent
    }

    /// Total aborted read-only transactions.
    pub fn aborted_total(&self) -> u64 {
        self.aborted_justified + self.aborted_unnecessary
    }

    /// The evaluation's headline metric: the fraction of *committed*
    /// read-only transactions that observed inconsistent data
    /// ("inconsistency ratio").
    pub fn inconsistency_ratio(&self) -> f64 {
        ratio(self.committed_inconsistent, self.committed_total())
    }

    /// Fraction of all read-only transactions that committed and were
    /// consistent.
    pub fn consistent_commit_ratio(&self) -> f64 {
        ratio(self.committed_consistent, self.read_only_total())
    }

    /// Fraction of all read-only transactions that were aborted.
    pub fn abort_ratio(&self) -> f64 {
        ratio(self.aborted_total(), self.read_only_total())
    }

    /// Fraction of potential inconsistencies that the cache detected
    /// (and turned into aborts) rather than letting commit: Figure 3's
    /// "detected inconsistencies" metric.
    ///
    /// Every abort counts as a detection: the cache only aborts when a read
    /// would have returned (or already returned) data older than what a
    /// dependency requires, so an aborted transaction is one that would have
    /// observed stale data had it been allowed to continue — even when the
    /// prefix already returned to the client was still consistent.
    pub fn detection_ratio(&self) -> f64 {
        ratio(
            self.aborted_total(),
            self.aborted_total() + self.committed_inconsistent,
        )
    }

    /// Fraction of aborts that were unnecessary (the observed reads were
    /// still consistent).
    pub fn unnecessary_abort_ratio(&self) -> f64 {
        ratio(self.aborted_unnecessary, self.aborted_total())
    }

    /// Adds one classified transaction to the counts.
    pub fn record(&mut self, class: TransactionClass) {
        match class {
            TransactionClass::CommittedConsistent => self.committed_consistent += 1,
            TransactionClass::CommittedInconsistent => self.committed_inconsistent += 1,
            TransactionClass::AbortedJustified => self.aborted_justified += 1,
            TransactionClass::AbortedUnnecessary => self.aborted_unnecessary += 1,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for MonitorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read-only: {} total ({} consistent, {} inconsistent, {} aborted [{} unnecessary]); \
             updates: {} committed, {} aborted; inconsistency ratio {:.2}%, detection {:.2}%",
            self.read_only_total(),
            self.committed_consistent,
            self.committed_inconsistent,
            self.aborted_total(),
            self.aborted_unnecessary,
            self.updates_committed,
            self.updates_aborted,
            self.inconsistency_ratio() * 100.0,
            self.detection_ratio() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MonitorReport {
        MonitorReport {
            committed_consistent: 70,
            committed_inconsistent: 10,
            aborted_justified: 15,
            aborted_unnecessary: 5,
            updates_committed: 40,
            updates_aborted: 2,
        }
    }

    #[test]
    fn totals_and_ratios() {
        let r = sample();
        assert_eq!(r.read_only_total(), 100);
        assert_eq!(r.committed_total(), 80);
        assert_eq!(r.aborted_total(), 20);
        assert!((r.inconsistency_ratio() - 10.0 / 80.0).abs() < 1e-9);
        assert!((r.consistent_commit_ratio() - 0.7).abs() < 1e-9);
        assert!((r.abort_ratio() - 0.2).abs() < 1e-9);
        assert!((r.detection_ratio() - 20.0 / 30.0).abs() < 1e-9);
        assert!((r.unnecessary_abort_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_report_has_defined_ratios() {
        let r = MonitorReport::default();
        assert_eq!(r.inconsistency_ratio(), 0.0);
        assert_eq!(r.detection_ratio(), 0.0);
        assert_eq!(r.abort_ratio(), 0.0);
        assert_eq!(r.unnecessary_abort_ratio(), 0.0);
        assert_eq!(r.read_only_total(), 0);
    }

    #[test]
    fn record_updates_the_right_bucket() {
        let mut r = MonitorReport::default();
        r.record(TransactionClass::CommittedConsistent);
        r.record(TransactionClass::CommittedInconsistent);
        r.record(TransactionClass::AbortedJustified);
        r.record(TransactionClass::AbortedUnnecessary);
        assert_eq!(r.committed_consistent, 1);
        assert_eq!(r.committed_inconsistent, 1);
        assert_eq!(r.aborted_justified, 1);
        assert_eq!(r.aborted_unnecessary, 1);
    }

    #[test]
    fn class_predicates() {
        assert!(TransactionClass::AbortedJustified.is_aborted());
        assert!(TransactionClass::AbortedUnnecessary.is_aborted());
        assert!(TransactionClass::CommittedConsistent.is_committed());
        assert!(TransactionClass::CommittedInconsistent.is_committed());
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("100 total"));
        assert!(s.contains("inconsistency ratio"));
    }
}
