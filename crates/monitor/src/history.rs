//! The global version history assembled from committed update transactions.

use std::collections::HashMap;
use tcache_types::{ObjectId, TxnId, Version};

/// Per-object write history: which transaction installed which version.
///
/// Update transactions are serializable in version order (the database
/// assigns each transaction a version larger than everything it observed),
/// so this history is the reference against which read-only transactions are
/// judged.
#[derive(Debug, Default, Clone)]
pub struct VersionHistory {
    /// For every object, the installed versions in increasing order,
    /// together with the writing transaction.
    writes: HashMap<ObjectId, Vec<(Version, TxnId)>>,
}

impl VersionHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        VersionHistory::default()
    }

    /// Records that `txn` installed `version` of `object`.
    pub fn record_write(&mut self, object: ObjectId, version: Version, txn: TxnId) {
        let versions = self.writes.entry(object).or_default();
        // Versions arrive in increasing order in normal operation; keep the
        // vector sorted even if records arrive out of order.
        let pos = versions
            .binary_search_by_key(&version, |&(v, _)| v)
            .unwrap_or_else(|p| p);
        if versions.get(pos).map(|&(v, _)| v) != Some(version) {
            versions.insert(pos, (version, txn));
        }
    }

    /// The transaction that wrote `version` of `object`
    /// (`None` for the initial version or unknown objects).
    pub fn writer_of(&self, object: ObjectId, version: Version) -> Option<TxnId> {
        self.writes.get(&object).and_then(|versions| {
            versions
                .binary_search_by_key(&version, |&(v, _)| v)
                .ok()
                .map(|i| versions[i].1)
        })
    }

    /// The smallest installed version of `object` strictly greater than
    /// `version`, together with its writer. `None` if `version` is (still)
    /// the latest.
    pub fn next_write_after(&self, object: ObjectId, version: Version) -> Option<(Version, TxnId)> {
        self.writes.get(&object).and_then(|versions| {
            let idx = versions.partition_point(|&(v, _)| v <= version);
            versions.get(idx).copied()
        })
    }

    /// The latest installed version of `object` (initial if never written).
    pub fn latest_version(&self, object: ObjectId) -> Version {
        self.writes
            .get(&object)
            .and_then(|v| v.last().map(|&(ver, _)| ver))
            .unwrap_or(Version::INITIAL)
    }

    /// Number of objects with at least one recorded write.
    pub fn written_objects(&self) -> usize {
        self.writes.len()
    }

    /// Total number of recorded writes.
    pub fn total_writes(&self) -> usize {
        self.writes.values().map(Vec::len).sum()
    }

    /// Decides whether a set of reads `(object, version)` is consistent:
    /// there must exist a serialization point `p` (a version) such that for
    /// every read, the version read is the latest version of that object
    /// installed at or before `p`. Because update transactions serialize in
    /// version order, such a point exists exactly when
    /// `max(version read) < min(next version installed after each read)`.
    ///
    /// Reads of versions that were never installed (other than the initial
    /// version) are inconsistent by definition.
    pub fn reads_consistent(&self, reads: &[(ObjectId, Version)]) -> bool {
        if reads.is_empty() {
            return true;
        }
        let mut max_read = Version::INITIAL;
        let mut min_next: Option<Version> = None;
        for &(object, version) in reads {
            // The read version must exist: either the initial version or an
            // installed one.
            if version != Version::INITIAL && self.writer_of(object, version).is_none() {
                return false;
            }
            max_read = max_read.max(version);
            if let Some((next, _)) = self.next_write_after(object, version) {
                min_next = Some(match min_next {
                    None => next,
                    Some(m) if next < m => next,
                    Some(m) => m,
                });
            }
        }
        match min_next {
            None => true,
            Some(next) => max_read < next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u64) -> Version {
        Version(i)
    }

    fn sample_history() -> VersionHistory {
        // Object 1: versions 2 (t1), 5 (t2); object 2: versions 2 (t1), 8 (t3).
        let mut h = VersionHistory::new();
        h.record_write(o(1), v(2), TxnId(1));
        h.record_write(o(2), v(2), TxnId(1));
        h.record_write(o(1), v(5), TxnId(2));
        h.record_write(o(2), v(8), TxnId(3));
        h
    }

    #[test]
    fn writer_and_next_lookup() {
        let h = sample_history();
        assert_eq!(h.writer_of(o(1), v(2)), Some(TxnId(1)));
        assert_eq!(h.writer_of(o(1), v(5)), Some(TxnId(2)));
        assert_eq!(h.writer_of(o(1), v(3)), None);
        assert_eq!(h.next_write_after(o(1), v(2)), Some((v(5), TxnId(2))));
        assert_eq!(h.next_write_after(o(1), v(5)), None);
        assert_eq!(h.next_write_after(o(1), Version::INITIAL), Some((v(2), TxnId(1))));
        assert_eq!(h.next_write_after(o(9), v(1)), None);
        assert_eq!(h.latest_version(o(1)), v(5));
        assert_eq!(h.latest_version(o(9)), Version::INITIAL);
        assert_eq!(h.written_objects(), 2);
        assert_eq!(h.total_writes(), 4);
    }

    #[test]
    fn out_of_order_and_duplicate_records_are_handled() {
        let mut h = VersionHistory::new();
        h.record_write(o(1), v(5), TxnId(2));
        h.record_write(o(1), v(2), TxnId(1));
        h.record_write(o(1), v(2), TxnId(1));
        assert_eq!(h.total_writes(), 2);
        assert_eq!(h.next_write_after(o(1), v(2)), Some((v(5), TxnId(2))));
    }

    #[test]
    fn consistent_snapshot_reads() {
        let h = sample_history();
        // Both objects at the t1 snapshot.
        assert!(h.reads_consistent(&[(o(1), v(2)), (o(2), v(2))]));
        // Latest versions of both.
        assert!(h.reads_consistent(&[(o(1), v(5)), (o(2), v(8))]));
        // Mixed but placeable: o1@5 (latest), o2@2 is superseded at 8, so any
        // point p in [5, 8) works.
        assert!(h.reads_consistent(&[(o(1), v(5)), (o(2), v(2))]));
        // Initial versions are consistent before anything was written.
        assert!(h.reads_consistent(&[(o(3), Version::INITIAL)]));
        assert!(h.reads_consistent(&[]));
    }

    #[test]
    fn inconsistent_reads_are_rejected() {
        let h = sample_history();
        // o2@8 requires p >= 8, but o1@2 requires p < 5.
        assert!(!h.reads_consistent(&[(o(1), v(2)), (o(2), v(8))]));
        // Reading a version that never existed.
        assert!(!h.reads_consistent(&[(o(1), v(3))]));
        // Initial version of o1 together with the latest o2.
        assert!(!h.reads_consistent(&[(o(1), Version::INITIAL), (o(2), v(8))]));
    }

    #[test]
    fn single_reads_are_always_consistent() {
        let h = sample_history();
        for &(obj, ver) in &[(1u64, 2u64), (1, 5), (2, 2), (2, 8)] {
            assert!(h.reads_consistent(&[(o(obj), v(ver))]));
        }
    }
}
