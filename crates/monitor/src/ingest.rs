//! Sharded, batched ingest in front of the [`ConsistencyMonitor`].
//!
//! The monitor's immediate API ([`ConsistencyMonitor::record_read_only`] and
//! friends) classifies each read-only transaction the moment it is reported.
//! On the hot path that means every completed transaction takes the monitor
//! lock (or channel) individually. [`BatchedIngest`] decouples the two:
//! producers append completed read-only transactions to per-shard buffers
//! (one shard per producer thread or cache), and the buffers are drained
//! into the monitor in bounded *epochs* — either when the configured bound
//! is reached or at an explicit [`flush`](BatchedIngest::flush).
//!
//! Deferring classification is sound because the two-tier oracle is
//! **order-stable for read-only transactions**: a read-only transaction
//! never extends the update history, so ingesting it later — after more
//! updates have been recorded — cannot change its verdict (this invariant
//! is pinned by `verdicts_are_stable_under_later_updates` in the monitor
//! tests and by the `ingest_differential` proptest). Updates therefore pass
//! through immediately, reads may lag by at most one epoch, and the final
//! reports are identical to immediate ingest.
//!
//! The stability argument has one precondition, which every real plane
//! satisfies by construction: a read may only observe versions that are
//! **already installed** when it is submitted (a cache cannot serve a
//! version the database has not committed). Updates recorded after the
//! read install strictly larger versions at strictly later points of the
//! commit order, so they can only truncate each observed version's
//! validity interval *from above* — past every point the interval test
//! could already have chosen — and they add no serialization-graph edge
//! into the past. Verdicts for reads of never-installed ("future")
//! versions are *not* stable, but such reads cannot be produced by a
//! cache.

use crate::monitor::ConsistencyMonitor;
use crate::report::{ReadPhase, TransactionClass};
use tcache_types::{CacheId, ObjectId, TransactionRecord, Version};

/// Default number of buffered read-only transactions that triggers an
/// automatic epoch flush.
pub const DEFAULT_EPOCH_BOUND: usize = 64;

/// A completed read-only transaction waiting in a shard buffer.
#[derive(Debug, Clone)]
struct PendingRead {
    /// The cache that served the transaction, if attributed.
    cache: Option<CacheId>,
    /// The lifecycle phase the cache was in, if attributed.
    phase: Option<ReadPhase>,
    /// `(object, version)` pairs returned to the client.
    reads: Vec<(ObjectId, Version)>,
    /// Whether the transaction committed.
    committed: bool,
    /// Caller-visible handle returned by [`BatchedIngest::submit_read`].
    token: u64,
}

/// Sharded, batched front end for a [`ConsistencyMonitor`].
///
/// Update transactions are recorded immediately (they extend the version
/// history and must be visible to every later classification). Read-only
/// transactions are appended to per-shard buffers and classified when the
/// epoch flushes; the verdict for each buffered transaction is delivered
/// through the sink callback together with the token `submit_read`
/// returned for it.
#[derive(Debug)]
pub struct BatchedIngest {
    monitor: ConsistencyMonitor,
    shards: Vec<Vec<PendingRead>>,
    epoch_bound: usize,
    buffered: usize,
    next_token: u64,
    epochs_flushed: u64,
}

impl BatchedIngest {
    /// Creates a batched front end with `shards` append buffers (clamped to
    /// at least one) flushing automatically once `epoch_bound` read-only
    /// transactions are buffered (clamped to at least one, i.e. immediate).
    pub fn new(shards: usize, epoch_bound: usize) -> Self {
        BatchedIngest {
            monitor: ConsistencyMonitor::new(),
            shards: vec![Vec::new(); shards.max(1)],
            epoch_bound: epoch_bound.max(1),
            buffered: 0,
            next_token: 0,
            epochs_flushed: 0,
        }
    }

    /// Wraps an existing monitor (e.g. one that already holds history).
    pub fn with_monitor(monitor: ConsistencyMonitor, shards: usize, epoch_bound: usize) -> Self {
        BatchedIngest {
            monitor,
            ..BatchedIngest::new(shards, epoch_bound)
        }
    }

    /// Records a committed update transaction immediately.
    ///
    /// Updates extend the version history, so they are never deferred;
    /// this is what makes deferred read classification verdict-preserving.
    pub fn record_update_commit(&mut self, record: &TransactionRecord) {
        self.monitor.record_update_commit(record);
    }

    /// Records an aborted update transaction immediately.
    pub fn record_update_abort(&mut self) {
        self.monitor.record_update_abort();
    }

    /// Appends a completed read-only transaction to shard
    /// `shard % shard_count` and returns its token. If the epoch bound is
    /// reached the buffers are flushed through `sink` before returning
    /// (see [`flush`](BatchedIngest::flush)).
    pub fn submit_read(
        &mut self,
        shard: usize,
        cache: Option<CacheId>,
        phase: Option<ReadPhase>,
        reads: Vec<(ObjectId, Version)>,
        committed: bool,
        sink: &mut impl FnMut(u64, TransactionClass),
    ) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        let slot = shard % self.shards.len();
        self.shards[slot].push(PendingRead {
            cache,
            phase,
            reads,
            committed,
            token,
        });
        self.buffered += 1;
        if self.buffered >= self.epoch_bound {
            self.flush(sink);
        }
        token
    }

    /// Drains every shard buffer into the monitor (shards in index order,
    /// FIFO within a shard), invoking `sink(token, class)` for each
    /// transaction as it is classified.
    pub fn flush(&mut self, sink: &mut impl FnMut(u64, TransactionClass)) {
        if self.buffered == 0 {
            return;
        }
        for shard in self.shards.iter_mut() {
            for pending in shard.drain(..) {
                let class = match (pending.cache, pending.phase) {
                    (Some(cache), Some(phase)) => self.monitor.record_read_only_in_phase(
                        cache,
                        phase,
                        &pending.reads,
                        pending.committed,
                    ),
                    (Some(cache), None) => {
                        self.monitor
                            .record_read_only_from(cache, &pending.reads, pending.committed)
                    }
                    (None, _) => self
                        .monitor
                        .record_read_only(&pending.reads, pending.committed),
                };
                sink(pending.token, class);
            }
        }
        self.buffered = 0;
        self.epochs_flushed += 1;
    }

    /// Read-only transactions currently buffered (awaiting a flush).
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Number of epochs flushed so far (automatic and explicit).
    pub fn epochs_flushed(&self) -> u64 {
        self.epochs_flushed
    }

    /// The wrapped monitor. Reports only reflect transactions that have
    /// been flushed; call [`flush`](BatchedIngest::flush) (or
    /// [`finish`](BatchedIngest::finish)) first for final numbers.
    pub fn monitor(&self) -> &ConsistencyMonitor {
        &self.monitor
    }

    /// Flushes any remaining buffered transactions and returns the
    /// underlying monitor.
    pub fn finish(mut self, sink: &mut impl FnMut(u64, TransactionClass)) -> ConsistencyMonitor {
        self.flush(sink);
        self.monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{SimTime, TxnId};

    fn update(id: u64, writes: &[(u64, u64)]) -> TransactionRecord {
        TransactionRecord::update_committed(
            TxnId(id),
            Vec::new(),
            writes.iter().map(|&(o, v)| (ObjectId(o), Version(v))).collect(),
            SimTime::from_micros(id),
        )
    }

    #[test]
    fn updates_pass_through_immediately() {
        let mut ingest = BatchedIngest::new(2, 8);
        ingest.record_update_commit(&update(1, &[(0, 1)]));
        ingest.record_update_abort();
        assert_eq!(ingest.buffered(), 0);
        let report = ingest.monitor().report();
        assert_eq!(report.updates_committed, 1);
        assert_eq!(report.updates_aborted, 1);
    }

    #[test]
    fn reads_are_deferred_until_the_epoch_bound() {
        let mut ingest = BatchedIngest::new(2, 3);
        let mut classes = Vec::new();
        ingest.record_update_commit(&update(1, &[(0, 1), (1, 1)]));
        let t0 = ingest.submit_read(
            0,
            None,
            None,
            vec![(ObjectId(0), Version(1))],
            true,
            &mut |t, c| classes.push((t, c)),
        );
        let t1 = ingest.submit_read(
            1,
            None,
            None,
            vec![(ObjectId(1), Version(1))],
            true,
            &mut |t, c| classes.push((t, c)),
        );
        assert_eq!(ingest.buffered(), 2);
        assert!(classes.is_empty(), "no verdicts before the epoch flushes");
        let t2 = ingest.submit_read(
            0,
            None,
            None,
            vec![(ObjectId(0), Version(1))],
            true,
            &mut |t, c| classes.push((t, c)),
        );
        assert_eq!(ingest.buffered(), 0);
        assert_eq!(ingest.epochs_flushed(), 1);
        // Shard 0 drains first: t0, t2, then shard 1: t1.
        let tokens: Vec<u64> = classes.iter().map(|&(t, _)| t).collect();
        assert_eq!(tokens, vec![t0, t2, t1]);
        assert!(classes
            .iter()
            .all(|&(_, c)| c == TransactionClass::CommittedConsistent));
    }

    #[test]
    fn finish_flushes_the_tail_and_matches_immediate_ingest() {
        let mut immediate = ConsistencyMonitor::new();
        let mut ingest = BatchedIngest::new(3, 100);
        let mut sink = |_t: u64, _c: TransactionClass| {};

        let up = update(1, &[(0, 2), (1, 2)]);
        immediate.record_update_commit(&up);
        ingest.record_update_commit(&up);

        // A torn read across the update: inconsistent under both ingests.
        let torn = vec![(ObjectId(0), Version(2)), (ObjectId(1), Version(1))];
        let cache = CacheId(4);
        let expected =
            immediate.record_read_only_in_phase(cache, ReadPhase::Healthy, &torn, true);
        assert_eq!(expected, TransactionClass::CommittedInconsistent);
        let mut got = None;
        ingest.submit_read(
            7,
            Some(cache),
            Some(ReadPhase::Healthy),
            torn,
            true,
            &mut sink,
        );
        assert_eq!(ingest.buffered(), 1);
        let monitor = ingest.finish(&mut |_t, c| got = Some(c));
        assert_eq!(got, Some(expected));
        assert_eq!(monitor.report(), immediate.report());
        assert_eq!(monitor.cache_report(cache), immediate.cache_report(cache));
        assert_eq!(
            monitor.phase_report(cache, ReadPhase::Healthy),
            immediate.phase_report(cache, ReadPhase::Healthy)
        );
    }

    #[test]
    fn shard_index_wraps_and_zero_bounds_are_clamped() {
        let mut ingest = BatchedIngest::new(0, 0);
        let mut seen = 0u32;
        let token = ingest.submit_read(
            42,
            None,
            None,
            vec![(ObjectId(0), Version(0))],
            true,
            &mut |_t, _c| seen += 1,
        );
        assert_eq!(token, 0);
        assert_eq!(seen, 1, "bound of 0 clamps to immediate flushing");
        assert_eq!(ingest.buffered(), 0);
    }
}
