//! The online consistency monitor used by the experiment harness.
//!
//! The monitor receives every completed transaction — committed update
//! transactions from the database, committed and aborted read-only
//! transactions from the cache — and classifies each read-only transaction
//! as consistent, inconsistent, or (un)justifiably aborted.
//!
//! Classification is two-tiered:
//!
//! 1. the **interval test** ([`VersionHistory::reads_consistent`]): the
//!    reads are consistent if a single point of the update *commit order*
//!    covers all of them. This is cheap (O(reads)) and conservative —
//!    everything it accepts is serializable;
//! 2. reads the interval test rejects are re-examined with the **exact
//!    serialization-graph oracle** ([`crate::sgt`]): independent updates may
//!    commute, so a read set with no single commit-order point can still be
//!    serializable. Only reads the SGT also rejects are counted
//!    inconsistent.
//!
//! The fast path covers the overwhelming majority of transactions; the
//! graph is built only for the rare interval failures. Because the database
//! serializes update transactions in version order and versions increase
//! monotonically with commit time, a read-only transaction's verdict never
//! changes once issued (a later update can only introduce versions newer
//! than everything the transaction could have read), so each transaction is
//! classified the moment it is reported. Per-read-only-transaction state is
//! dropped immediately; the update history grows with the run, as any exact
//! oracle's must.

use crate::history::VersionHistory;
use crate::report::{MonitorReport, ReadPhase, TransactionClass};
use crate::sgt::SerializationGraph;
use std::collections::BTreeMap;
use tcache_types::{CacheId, ObjectId, TransactionRecord, Version};

/// The consistency monitor.
///
/// Update transactions extend one global version history (all caches read
/// through the same database), while read-only classifications are kept both
/// globally and per cache server: cache serializability is defined per
/// cache, so a multi-cache experiment needs to know *which* cache served the
/// inconsistent reads.
#[derive(Debug, Default)]
pub struct ConsistencyMonitor {
    sgt: SerializationGraph,
    report: MonitorReport,
    per_cache: BTreeMap<CacheId, MonitorReport>,
    per_phase: BTreeMap<(CacheId, ReadPhase), MonitorReport>,
}

impl ConsistencyMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        ConsistencyMonitor::default()
    }

    /// Records a committed update transaction (its writes extend the global
    /// version history).
    pub fn record_update_commit(&mut self, record: &TransactionRecord) {
        debug_assert!(record.is_update() && record.committed);
        self.sgt.add_update(record);
        self.report.updates_committed += 1;
    }

    /// Records an update transaction aborted by the database's concurrency
    /// control (it does not extend the history).
    pub fn record_update_abort(&mut self) {
        self.report.updates_aborted += 1;
    }

    /// Records a completed read-only transaction and returns its
    /// classification.
    ///
    /// `reads` are the `(object, version)` pairs actually returned to the
    /// client; for aborted transactions this is the partial prefix observed
    /// before the abort. `committed` distinguishes the two cases.
    pub fn record_read_only(
        &mut self,
        reads: &[(ObjectId, Version)],
        committed: bool,
    ) -> TransactionClass {
        let consistent = self.reads_serializable(reads);
        let class = match (committed, consistent) {
            (true, true) => TransactionClass::CommittedConsistent,
            (true, false) => TransactionClass::CommittedInconsistent,
            // An aborted transaction whose observed prefix was already
            // inconsistent: the abort was clearly justified.
            (false, false) => TransactionClass::AbortedJustified,
            // The observed prefix was still consistent. The cache aborted
            // because the *next* read would have been stale; from the
            // client's perspective the transaction was consistent so far.
            (false, true) => TransactionClass::AbortedUnnecessary,
        };
        self.report.record(class);
        class
    }

    /// Like [`ConsistencyMonitor::record_read_only`], additionally
    /// attributing the classification to the cache server that executed the
    /// transaction. The global report receives the transaction too.
    pub fn record_read_only_from(
        &mut self,
        cache: CacheId,
        reads: &[(ObjectId, Version)],
        committed: bool,
    ) -> TransactionClass {
        let class = self.record_read_only(reads, committed);
        self.per_cache.entry(cache).or_default().record(class);
        class
    }

    /// Like [`ConsistencyMonitor::record_read_only_from`], additionally
    /// attributing the classification to the lifecycle `phase` the cache was
    /// in when it served the transaction. The per-cache and global reports
    /// receive the transaction as usual; the per-`(cache, phase)` report is
    /// on top, so phase reports for one cache partition that cache's report.
    pub fn record_read_only_in_phase(
        &mut self,
        cache: CacheId,
        phase: ReadPhase,
        reads: &[(ObjectId, Version)],
        committed: bool,
    ) -> TransactionClass {
        let class = self.record_read_only_from(cache, reads, committed);
        self.per_phase.entry((cache, phase)).or_default().record(class);
        class
    }

    /// The report restricted to transactions `cache` served while in
    /// `phase` (empty if none). Only transactions reported through
    /// [`ConsistencyMonitor::record_read_only_in_phase`] appear here.
    pub fn phase_report(&self, cache: CacheId, phase: ReadPhase) -> MonitorReport {
        self.per_phase
            .get(&(cache, phase))
            .copied()
            .unwrap_or_default()
    }

    /// Decides whether `reads` is serializable with the update history:
    /// interval test first, exact SGT (bounded reachability form) on
    /// interval failure.
    fn reads_serializable(&self, reads: &[(ObjectId, Version)]) -> bool {
        if self.sgt.history().reads_consistent(reads) {
            return true;
        }
        self.sgt.read_only_consistent_fast(reads)
    }

    /// Non-mutating oracle entry point: decides whether `reads` is
    /// serializable against the update history recorded so far, *without*
    /// recording the transaction or touching any report.
    ///
    /// This is the two-tier verdict (`record_read_only` uses the same
    /// decision), exposed so external checkers — notably the explicit-state
    /// model in `tcache-model` — can query the monitor on histories they
    /// assemble themselves.
    pub fn is_serializable(&self, reads: &[(ObjectId, Version)]) -> bool {
        self.reads_serializable(reads)
    }

    /// Non-mutating entry point for the *first tier only*: the commit-order
    /// interval test, with no SGT fallback. Incomplete as an oracle — it
    /// mis-flags commuting independent updates — which is exactly why the
    /// model checker uses it as its intentionally-broken reference oracle.
    pub fn interval_consistent(&self, reads: &[(ObjectId, Version)]) -> bool {
        self.sgt.history().reads_consistent(reads)
    }

    /// Convenience wrapper accepting a [`TransactionRecord`] from a cache.
    /// When the record names its cache, the classification is attributed to
    /// that cache's per-cache report as well.
    pub fn record_read_only_record(&mut self, record: &TransactionRecord) -> TransactionClass {
        debug_assert!(!record.is_update());
        match record.cache {
            Some(cache) => self.record_read_only_from(cache, &record.reads, record.committed),
            None => self.record_read_only(&record.reads, record.committed),
        }
    }

    /// The version history assembled so far.
    pub fn history(&self) -> &VersionHistory {
        self.sgt.history()
    }

    /// The aggregate report so far.
    pub fn report(&self) -> MonitorReport {
        self.report
    }

    /// The report restricted to transactions `cache` served (empty if the
    /// cache never reported a transaction). Update counters are global and
    /// stay zero in per-cache reports.
    pub fn cache_report(&self, cache: CacheId) -> MonitorReport {
        self.per_cache.get(&cache).copied().unwrap_or_default()
    }

    /// Every per-cache report, in `CacheId` order.
    pub fn per_cache_reports(&self) -> impl Iterator<Item = (CacheId, MonitorReport)> + '_ {
        self.per_cache.iter().map(|(&id, &report)| (id, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{SimTime, TxnId};

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u64) -> Version {
        Version(i)
    }

    fn update(id: u64, version: u64, objects: &[u64]) -> TransactionRecord {
        TransactionRecord::update_committed(
            TxnId(id),
            vec![],
            objects.iter().map(|&obj| (o(obj), v(version))).collect(),
            SimTime::ZERO,
        )
    }

    #[test]
    fn classifies_committed_transactions() {
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1, 2]));
        m.record_update_commit(&update(2, 2, &[1]));

        // Consistent: the latest versions.
        assert_eq!(
            m.record_read_only(&[(o(1), v(2)), (o(2), v(1))], true),
            TransactionClass::CommittedConsistent
        );
        // Inconsistent: o1@0 requires a point before txn 1, o2@1 on/after
        // it — and txn 1 wrote both objects, so no reordering can help.
        assert_eq!(
            m.record_read_only(&[(o(1), v(0)), (o(2), v(1))], true),
            TransactionClass::CommittedInconsistent
        );
        let r = m.report();
        assert_eq!(r.committed_consistent, 1);
        assert_eq!(r.committed_inconsistent, 1);
        assert_eq!(r.updates_committed, 2);
    }

    #[test]
    fn commuting_independent_updates_are_not_flagged() {
        // t1 writes o1@1; t2 writes o2@2. The updates do not conflict, so a
        // reader observing o1@0 (before t1) and o2@2 (after t2) is
        // serializable as t2, R, t1 — the interval test alone would flag it,
        // the SGT fallback accepts it.
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1]));
        m.record_update_commit(&update(2, 2, &[2]));
        assert_eq!(
            m.record_read_only(&[(o(1), v(0)), (o(2), v(2))], true),
            TransactionClass::CommittedConsistent
        );
        // With a conflict between the updates (t2 also writes o1), the same
        // read set is genuinely non-serializable.
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1]));
        m.record_update_commit(&update(2, 2, &[1, 2]));
        assert_eq!(
            m.record_read_only(&[(o(1), v(0)), (o(2), v(2))], true),
            TransactionClass::CommittedInconsistent
        );
    }

    #[test]
    fn classifies_aborted_transactions() {
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1, 2]));
        // Aborted with a consistent prefix: unnecessary.
        assert_eq!(
            m.record_read_only(&[(o(1), v(1))], false),
            TransactionClass::AbortedUnnecessary
        );
        // Aborted with an inconsistent prefix: justified.
        assert_eq!(
            m.record_read_only(&[(o(1), v(0)), (o(2), v(1))], false),
            TransactionClass::AbortedJustified
        );
        m.record_update_abort();
        let r = m.report();
        assert_eq!(r.aborted_unnecessary, 1);
        assert_eq!(r.aborted_justified, 1);
        assert_eq!(r.updates_aborted, 1);
        assert_eq!(r.abort_ratio(), 1.0);
    }

    #[test]
    fn record_wrapper_uses_the_record_fields() {
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1]));
        let ro = TransactionRecord::read_only(
            TxnId(100),
            tcache_types::CacheId(0),
            vec![(o(1), v(1))],
            true,
            SimTime::ZERO,
        );
        assert_eq!(
            m.record_read_only_record(&ro),
            TransactionClass::CommittedConsistent
        );
        assert_eq!(m.history().latest_version(o(1)), v(1));
    }

    #[test]
    fn per_cache_reports_partition_the_global_report() {
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1, 2]));
        // Cache 0 serves a consistent commit and a justified abort; cache 1
        // serves an inconsistent commit.
        m.record_read_only_from(CacheId(0), &[(o(1), v(1)), (o(2), v(1))], true);
        m.record_read_only_from(CacheId(0), &[(o(1), v(0)), (o(2), v(1))], false);
        m.record_read_only_from(CacheId(1), &[(o(1), v(0)), (o(2), v(1))], true);
        let c0 = m.cache_report(CacheId(0));
        let c1 = m.cache_report(CacheId(1));
        assert_eq!(c0.committed_consistent, 1);
        assert_eq!(c0.aborted_justified, 1);
        assert_eq!(c1.committed_inconsistent, 1);
        // A cache that never reported anything yields the empty report.
        assert_eq!(m.cache_report(CacheId(9)), MonitorReport::default());
        // Per-cache read-only counts sum to the global report's.
        let global = m.report();
        let summed: u64 = m
            .per_cache_reports()
            .map(|(_, r)| r.read_only_total())
            .sum();
        assert_eq!(summed, global.read_only_total());
        assert_eq!(
            m.per_cache_reports().map(|(id, _)| id).collect::<Vec<_>>(),
            vec![CacheId(0), CacheId(1)]
        );
        // Records carrying a cache id are attributed automatically.
        let ro = TransactionRecord::read_only(
            TxnId(50),
            CacheId(1),
            vec![(o(1), v(1)), (o(2), v(1))],
            true,
            SimTime::ZERO,
        );
        m.record_read_only_record(&ro);
        assert_eq!(m.cache_report(CacheId(1)).committed_consistent, 1);
    }

    #[test]
    fn phase_reports_partition_the_per_cache_report() {
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1, 2]));
        // A healthy-phase inconsistent commit and a degraded-phase
        // consistent one on the same cache.
        m.record_read_only_in_phase(
            CacheId(0),
            ReadPhase::Healthy,
            &[(o(1), v(0)), (o(2), v(1))],
            true,
        );
        m.record_read_only_in_phase(
            CacheId(0),
            ReadPhase::Degraded,
            &[(o(1), v(1)), (o(2), v(1))],
            true,
        );
        let healthy = m.phase_report(CacheId(0), ReadPhase::Healthy);
        let degraded = m.phase_report(CacheId(0), ReadPhase::Degraded);
        assert_eq!(healthy.committed_inconsistent, 1);
        assert_eq!(degraded.committed_consistent, 1);
        assert_eq!(degraded.committed_inconsistent, 0);
        // The phase reports partition the cache report, which in turn feeds
        // the global one.
        let cache = m.cache_report(CacheId(0));
        assert_eq!(
            healthy.read_only_total() + degraded.read_only_total(),
            cache.read_only_total()
        );
        assert_eq!(m.report().read_only_total(), cache.read_only_total());
        // A phase the cache never reported in yields the empty report.
        assert_eq!(
            m.phase_report(CacheId(1), ReadPhase::Degraded),
            MonitorReport::default()
        );
    }

    #[test]
    fn verdicts_are_stable_under_later_updates() {
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1, 2]));
        let reads = vec![(o(1), v(1)), (o(2), v(1))];
        assert_eq!(
            m.record_read_only(&reads, true),
            TransactionClass::CommittedConsistent
        );
        // A later update cannot retroactively invalidate the verdict: the
        // same read set is still classified consistent.
        m.record_update_commit(&update(2, 2, &[1]));
        assert_eq!(
            m.record_read_only(&reads, true),
            TransactionClass::CommittedConsistent
        );
    }

    #[test]
    fn empty_read_set_is_consistent() {
        let mut m = ConsistencyMonitor::new();
        assert_eq!(
            m.record_read_only(&[], true),
            TransactionClass::CommittedConsistent
        );
    }

    #[test]
    fn reading_a_nonexistent_version_is_inconsistent() {
        let mut m = ConsistencyMonitor::new();
        m.record_update_commit(&update(1, 1, &[1]));
        assert_eq!(
            m.record_read_only(&[(o(1), v(9))], true),
            TransactionClass::CommittedInconsistent
        );
    }
}
