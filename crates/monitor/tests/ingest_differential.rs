//! Differential property test pinning [`BatchedIngest`] against immediate
//! ingest: on any randomized schedule of update and read-only transactions
//! (spread over caches, healthy and degraded phases, arbitrary shard
//! assignment and epoch bound), deferring read classification to epoch
//! flushes must produce the same per-transaction verdict and the same
//! global, per-cache and per-phase `MonitorReport`s as classifying each
//! read the moment it completes.
//!
//! Generated reads observe only versions installed at submission time
//! (clamped in the driver loop) — the reachable state space: a cache can
//! never serve a version the database has not committed, and verdict
//! stability under deferral holds exactly on that domain. (An earlier,
//! unclamped version of this generator produced reads of future versions
//! and correctly detected that deferral changes their verdicts.)

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use tcache_monitor::{BatchedIngest, ConsistencyMonitor, ReadPhase, TransactionClass};
use tcache_types::{CacheId, ObjectId, SimTime, TransactionRecord, TxnId, Version};

#[derive(Debug, Clone)]
enum Op {
    /// Commit an update writing the next version of each listed object.
    UpdateCommit(Vec<u64>),
    /// An update aborted by the database (counted, no history extension).
    UpdateAbort,
    /// A completed read-only transaction.
    Read {
        cache: u64,
        degraded: bool,
        reads: Vec<(u64, u64)>,
        committed: bool,
        shard: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(0u64..6, 1..4).prop_map(|mut objs| {
            objs.sort_unstable();
            objs.dedup();
            Op::UpdateCommit(objs)
        }),
        Just(Op::UpdateAbort),
        (
            (0u64..3, 0u64..2),
            (
                prop::collection::vec((0u64..6, 0u64..30), 1..5),
                0u64..2,
                0usize..8,
            ),
        )
            .prop_map(|((cache, degraded), (reads, committed, shard))| Op::Read {
                cache,
                degraded: degraded == 1,
                reads,
                committed: committed == 1,
                shard,
            }),
        // A second read arm so the schedule mix leans toward reads.
        (0u64..3, prop::collection::vec((0u64..6, 0u64..30), 1..5), 0usize..8).prop_map(
            |(cache, reads, shard)| Op::Read {
                cache,
                degraded: false,
                reads,
                committed: true,
                shard,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn batched_ingest_matches_immediate(
        ops in prop::collection::vec(op_strategy(), 1..60),
        shards in 1usize..5,
        bound in 1usize..20,
    ) {
        let mut immediate = ConsistencyMonitor::new();
        let mut batched = BatchedIngest::new(shards, bound);
        let mut deferred: BTreeMap<u64, TransactionClass> = BTreeMap::new();
        let mut sink = |token: u64, class: TransactionClass| {
            deferred.insert(token, class);
        };

        let mut expected: Vec<(u64, TransactionClass)> = Vec::new();
        let mut caches: BTreeSet<CacheId> = BTreeSet::new();
        // The database assigns each update transaction ONE version, larger
        // than every version previously installed, and installs it for all
        // of the transaction's writes; the interval test is sound only on
        // such version-ordered histories. `installed[o]` is the increasing
        // list of versions installed for object `o`.
        let mut next_version: u64 = 0;
        let mut installed: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::UpdateCommit(objects) => {
                    next_version += 1;
                    let writes: Vec<(ObjectId, Version)> = objects
                        .iter()
                        .map(|&obj| {
                            installed.entry(obj).or_default().push(next_version);
                            (ObjectId(obj), Version(next_version))
                        })
                        .collect();
                    let record = TransactionRecord::update_committed(
                        TxnId(i as u64),
                        Vec::new(),
                        writes,
                        SimTime::from_micros(i as u64 + 1),
                    );
                    immediate.record_update_commit(&record);
                    batched.record_update_commit(&record);
                }
                Op::UpdateAbort => {
                    immediate.record_update_abort();
                    batched.record_update_abort();
                }
                Op::Read { cache, degraded, reads, committed, shard } => {
                    let cache = CacheId(*cache as u32);
                    caches.insert(cache);
                    let phase = if *degraded {
                        ReadPhase::Degraded
                    } else {
                        ReadPhase::Healthy
                    };
                    // Map each raw read onto a version actually installed
                    // for its object (or the initial version) — the only
                    // versions a cache could have served at this point.
                    let observed: Vec<(ObjectId, Version)> = reads
                        .iter()
                        .map(|&(o, raw)| {
                            let versions = installed.get(&o).map(Vec::as_slice).unwrap_or(&[]);
                            let idx = (raw as usize) % (versions.len() + 1);
                            let v = if idx == versions.len() { 0 } else { versions[idx] };
                            (ObjectId(o), Version(v))
                        })
                        .collect();
                    let class = immediate.record_read_only_in_phase(
                        cache,
                        phase,
                        &observed,
                        *committed,
                    );
                    let token = batched.submit_read(
                        *shard,
                        Some(cache),
                        Some(phase),
                        observed,
                        *committed,
                        &mut sink,
                    );
                    expected.push((token, class));
                }
            }
        }

        let monitor = batched.finish(&mut sink);

        // Per-transaction verdicts are identical even though the batched
        // side classified each read with (possibly) more update history.
        for (token, class) in &expected {
            prop_assert_eq!(deferred.get(token).copied(), Some(*class));
        }
        prop_assert_eq!(deferred.len(), expected.len());

        // Global and partitioned reports agree exactly.
        prop_assert_eq!(monitor.report(), immediate.report());
        for cache in caches {
            prop_assert_eq!(monitor.cache_report(cache), immediate.cache_report(cache));
            for phase in [ReadPhase::Healthy, ReadPhase::Degraded] {
                prop_assert_eq!(
                    monitor.phase_report(cache, phase),
                    immediate.phase_report(cache, phase)
                );
            }
        }
    }
}
