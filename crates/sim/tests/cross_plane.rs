//! Cross-plane parity: the discrete-event simulator and the live reactor
//! stack execute the same schedule, and where their delivery semantics
//! coincide they must agree *exactly*.
//!
//! * With zero loss and zero delivery delay, lockstep live execution is
//!   verdict-identical to the discrete plane on the same seed: same
//!   transactions, same observations, same `ConsistencyMonitor` reports.
//! * With loss (and constant zero delay), the drop decisions come from the
//!   same `(seed, CacheId)`-derived RNG stream on both planes, so even the
//!   *lossy* runs produce identical verdicts — and each cache's live drop
//!   count matches a replayed `LossState` oracle message for message.

use tcache_net::fault::{FaultPlan, LossModel, LossState};
use tcache_sim::experiment::{CacheKind, CacheTopology, ExperimentConfig, WorkloadKind};
use tcache_sim::{ExecutionPlane, LiveOptions, Schedule};
use tcache_types::{
    cache_channel_seed, CacheId, RecoveryPolicy, SimDuration, SimTime, Strategy,
};
use tcache_workload::{ChurnAction, ChurnEvent, HotKeyStorm, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small multi-cache configuration both planes can run in a few hundred
/// milliseconds (bounded for the 1-CPU CI host: 4 client threads + driver
/// + reactor, ~1800 transactions).
fn base_config() -> ExperimentConfig {
    ExperimentConfig {
        duration: SimDuration::from_secs(3),
        workload: WorkloadKind::PerfectClusters {
            objects: 400,
            cluster_size: 5,
        },
        cache: CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Abort,
        },
        caches: CacheTopology::PerCacheLoss(vec![0.0, 0.0, 0.0, 0.0]),
        invalidation_loss: 0.0,
        invalidation_delay: SimDuration::ZERO,
        seed: 42,
        ..ExperimentConfig::default()
    }
}

fn assert_verdict_parity(config: ExperimentConfig) {
    let discrete = config
        .clone()
        .on_plane(ExecutionPlane::DiscreteEvent)
        .run();
    let live = config
        .on_plane(ExecutionPlane::Live(LiveOptions::lockstep()))
        .run();

    assert_eq!(
        discrete.report, live.report,
        "global monitor reports must be identical across planes"
    );
    assert_eq!(discrete.per_cache.len(), live.per_cache.len());
    for (d, l) in discrete.per_cache.iter().zip(&live.per_cache) {
        assert_eq!(d.id, l.id);
        assert_eq!(
            d.report, l.report,
            "{}: per-cache verdicts must be identical across planes",
            d.id
        );
        // The caches served the same hits/misses along the way.
        assert_eq!(
            d.cache.reads, l.cache.reads,
            "{}: same number of reads served",
            d.id
        );
        assert_eq!(d.cache.hits, l.cache.hits, "{}: same hit counts", d.id);
        // The link carried the same traffic and lost the same messages.
        assert_eq!(d.channel.sent, l.channel.sent, "{}: same sends", d.id);
        assert_eq!(
            d.channel.dropped, l.channel.dropped,
            "{}: same drop counts",
            d.id
        );
    }
    // The outcome time series (binned by schedule time) matches too.
    assert_eq!(discrete.timeseries.bins(), live.timeseries.bins());
}

#[test]
fn zero_loss_zero_delay_planes_produce_identical_verdicts() {
    let config = base_config();
    let result = config.clone().run();
    // Sanity: the reliable configuration commits everything consistently,
    // so the parity below is about real traffic, not empty reports.
    assert!(result.report.read_only_total() > 1000);
    assert_eq!(result.report.committed_inconsistent, 0);
    assert_verdict_parity(config);
}

#[test]
fn lossy_zero_delay_planes_still_agree_exactly() {
    // Constant (zero) latency draws nothing from the channel RNG, so the
    // per-cache drop pattern is the same stream on both planes and the
    // verdicts — including real inconsistencies and aborts — line up
    // message for message.
    let config = ExperimentConfig {
        caches: CacheTopology::PerCacheLoss(vec![0.0, 0.2, 0.5, 1.0]),
        ..base_config()
    };
    let reference = config.clone().run();
    assert!(
        reference.report.aborted_total() > 0,
        "the lossy caches must trip the predicates, otherwise parity is vacuous"
    );
    assert_verdict_parity(config);
}

#[test]
fn live_drop_counts_match_the_seeded_loss_oracle_exactly() {
    let losses = [0.3, 0.6];
    let config = ExperimentConfig {
        caches: CacheTopology::PerCacheLoss(losses.to_vec()),
        cache: CacheKind::Plain,
        ..base_config()
    };
    let live = config
        .clone()
        .on_plane(ExecutionPlane::Live(LiveOptions::lockstep()))
        .run();

    // Every committed update broadcast its invalidations to every cache,
    // so each cache's task saw the same message count.
    for (i, column) in live.per_cache.iter().enumerate() {
        assert!(column.channel.sent > 0);
        let mut rng = StdRng::seed_from_u64(cache_channel_seed(config.seed, CacheId(i as u32)));
        let mut oracle = LossState::new(LossModel::uniform(losses[i]));
        let expected = (0..column.channel.sent)
            .filter(|_| oracle.should_drop(&mut rng))
            .count() as u64;
        assert_eq!(
            column.channel.dropped, expected,
            "{}: live drops must replay the seeded LossState oracle",
            column.id
        );
        assert_eq!(
            column.channel.delivered,
            column.channel.sent - expected,
            "{}: survivors are all applied",
            column.id
        );
    }
}

#[test]
fn fault_schedules_preserve_cross_plane_parity() {
    // An identical deterministic fault plan — a crash/restart on cache 0
    // and a partition on cache 1, next to an unfaulted control cache —
    // must produce identical monitor verdicts AND identical lifecycle
    // counters (gaps, replays, resyncs, degraded reads) on both planes at
    // zero delivery delay.
    let faults = FaultPlan::new()
        .crash_restart(
            CacheId(0),
            SimTime::from_millis(800),
            SimTime::from_millis(1600),
        )
        .partition(
            CacheId(1),
            SimTime::from_millis(500),
            SimTime::from_millis(2000),
        );
    let config = ExperimentConfig {
        caches: CacheTopology::PerCacheLoss(vec![0.0, 0.0, 0.0]),
        faults,
        recovery: RecoveryPolicy::GapResync {
            staleness_budget: SimDuration::from_millis(100),
        },
        ..base_config()
    };
    // Sanity: the plan actually exercises the recovery machinery, so the
    // parity assertions below compare real fault traffic.
    let reference = config.clone().run();
    assert_eq!(reference.per_cache[0].lifecycle.crashes, 1);
    assert_eq!(reference.per_cache[1].lifecycle.partitions, 1);
    assert_eq!(reference.per_cache[1].lifecycle.reconnects, 1);
    assert!(
        reference.per_cache[1].lifecycle.pass_through_txns > 0,
        "a 1.5 s partition against a 100 ms budget must degrade reads"
    );
    assert_verdict_parity(config.clone());

    let discrete = config
        .clone()
        .on_plane(ExecutionPlane::DiscreteEvent)
        .run();
    let live = config
        .on_plane(ExecutionPlane::Live(LiveOptions::lockstep()))
        .run();
    for (d, l) in discrete.per_cache.iter().zip(&live.per_cache) {
        assert_eq!(
            d.lifecycle, l.lifecycle,
            "{}: lifecycle counters (gaps, replays, resyncs, degraded reads) \
             must be identical across planes",
            d.id
        );
        assert_eq!(
            d.degraded, l.degraded,
            "{}: degraded-phase verdicts must be identical across planes",
            d.id
        );
        assert_eq!(
            d.degraded.committed_inconsistent, 0,
            "{}: degraded-window reads are never violations",
            d.id
        );
    }
}

#[test]
fn scenario_schedules_preserve_cross_plane_parity() {
    // A scenario run — hot-key storm plus crash/restart churn over a lossy
    // deployment, zero delivery delay — must agree across planes exactly:
    // same verdicts, same drops, and (because the modeled client latency
    // is a pure function of the run seed and each read's outcome) the
    // same per-cache latency histograms, quantile for quantile.
    let spec = ScenarioSpec::new("parity", 400, 5, 0.9, 500_000)
        .with_storm(HotKeyStorm {
            from: SimTime::from_millis(500),
            until: SimTime::from_millis(2000),
            hot_keys: 4,
            fraction: 0.7,
        })
        .with_churn(ChurnEvent {
            at: SimTime::from_millis(1000),
            cache: 1,
            action: ChurnAction::Crash,
        })
        .with_churn(ChurnEvent {
            at: SimTime::from_millis(1800),
            cache: 1,
            action: ChurnAction::Restart,
        });
    let config = ExperimentConfig {
        caches: CacheTopology::PerCacheLoss(vec![0.0, 0.2, 0.4]),
        scenario: Some(spec),
        ..base_config()
    };
    // Sanity: the scenario produces traffic, loses invalidations, crashes
    // a cache, and fills the histograms — parity below is not vacuous.
    let reference = config.clone().run();
    assert!(reference.report.read_only_total() > 500);
    assert!(reference.channel.dropped > 0);
    assert_eq!(reference.per_cache[1].lifecycle.crashes, 1);
    for column in &reference.per_cache {
        assert_eq!(
            column.latency.len(),
            column.report.read_only_total(),
            "{}: one latency sample per read",
            column.id
        );
    }
    assert_verdict_parity(config.clone());

    let discrete = config
        .clone()
        .on_plane(ExecutionPlane::DiscreteEvent)
        .run();
    let live = config
        .on_plane(ExecutionPlane::Live(LiveOptions::lockstep()))
        .run();
    for (d, l) in discrete.per_cache.iter().zip(&live.per_cache) {
        assert_eq!(
            d.latency, l.latency,
            "{}: modeled latency histograms must be bit-identical across planes",
            d.id
        );
        assert_eq!(d.lifecycle, l.lifecycle, "{}: same lifecycle", d.id);
    }
}

#[test]
fn concurrent_pacing_executes_the_full_schedule() {
    // Free-running clients are nondeterministic, but they must still
    // execute every scheduled transaction exactly once and produce a
    // classification for each.
    let config = ExperimentConfig {
        duration: SimDuration::from_secs(2),
        caches: CacheTopology::PerCacheLoss(vec![0.0, 0.4]),
        ..base_config()
    };
    let schedule = Schedule::build(&config);
    let reads = schedule.ops.len() - schedule.update_count();
    let result = config
        .on_plane(ExecutionPlane::Live(LiveOptions::concurrent()))
        .run();
    assert_eq!(result.report.read_only_total() as usize, reads);
    assert_eq!(
        result.report.updates_committed + result.report.updates_aborted,
        schedule.update_count() as u64
    );
    let per_cache_reads: u64 = result
        .per_cache
        .iter()
        .map(|c| c.report.read_only_total())
        .sum();
    assert_eq!(per_cache_reads as usize, reads);
}
