//! Differential tests of the model-checker bridge: hand-written and
//! randomly generated protocol traces must replay on the real
//! `Database`/`EdgeCache` stack with every observable agreeing with the
//! model at every step.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcache_model::{
    explore, minimize, ExploreOptions, IntervalOnlyOracle, InvariantKind, ModelConfig,
};
use tcache_sim::DifferentialBridge;
use tcache_types::{ObjectId, ProtocolAction, Version};

/// A clean end-to-end run: joint update commits, both invalidations are
/// delivered, then both scripted readers run to completion consistently.
#[test]
fn hand_written_clean_trace_round_trips() {
    let config = ModelConfig::quick_core();
    let trace = [
        ProtocolAction::UpdateCommit { update: 0 },
        ProtocolAction::Deliver { cache: 0, index: 0 },
        ProtocolAction::Deliver { cache: 0, index: 0 },
        ProtocolAction::Deliver { cache: 1, index: 0 },
        ProtocolAction::Deliver { cache: 1, index: 0 },
        ProtocolAction::ReadStep { txn: 0 },
        ProtocolAction::ReadStep { txn: 0 },
        ProtocolAction::ReadStep { txn: 1 },
        ProtocolAction::ReadStep { txn: 1 },
    ];
    let report = DifferentialBridge::run(&config, &trace).expect("no divergence");
    assert_eq!(report.steps, trace.len());
    assert!(report.comparisons > trace.len() as u64);
    assert_eq!(report.finished.len(), 2);
    for txn in &report.finished {
        assert!(txn.committed, "clean trace commits: {txn:?}");
        assert_eq!(txn.observed, vec![(0, 1), (1, 1)]);
        assert!(txn.monitor_serializable);
        assert!(txn.ground_truth);
    }
}

/// The canonical Theorem-1 save: a read interleaved with the joint update
/// aborts on the T-Cache side, and the real cache names the same
/// violating object the model does.
#[test]
fn interleaved_update_abort_matches_model() {
    let config = ModelConfig::quick_core();
    let trace = [
        ProtocolAction::ReadStep { txn: 0 },
        ProtocolAction::UpdateCommit { update: 0 },
        ProtocolAction::ReadStep { txn: 0 },
    ];
    let report = DifferentialBridge::run(&config, &trace).expect("no divergence");
    let txn = &report.finished[0];
    assert!(!txn.committed, "the stale read set must abort: {txn:?}");
    assert_eq!(txn.observed, vec![(0, 0)]);
    // What the aborted transaction returned so far is trivially
    // serializable (a prefix of the initial snapshot).
    assert!(txn.ground_truth);
}

/// The plain cache serves the same interleaving without aborting, and the
/// monitor (on both sides of the bridge) flags the torn read set.
#[test]
fn plain_cache_torn_reads_flagged_by_monitor() {
    let config = ModelConfig::quick_core();
    let trace = [
        ProtocolAction::ReadStep { txn: 1 },
        ProtocolAction::UpdateCommit { update: 0 },
        ProtocolAction::ReadStep { txn: 1 },
    ];
    let report = DifferentialBridge::run(&config, &trace).expect("no divergence");
    let txn = &report.finished[0];
    assert!(txn.committed, "plain caches never abort: {txn:?}");
    assert_eq!(txn.observed, vec![(0, 0), (1, 1)]);
    assert!(!txn.ground_truth, "torn across the joint update");
    assert!(!txn.monitor_serializable, "the monitor must flag it");
}

/// The explorer's minimized monitor-soundness counterexample (found with
/// the intentionally-broken interval-only oracle) replays on the real
/// stack without divergence, and the real monitor exhibits exactly the
/// divergence the model predicted: the first tier alone mis-flags the
/// reads, the production two-tier verdict accepts them.
#[test]
fn minimized_soundness_counterexample_replays_on_real_stack() {
    let config = ModelConfig::independent_updates();
    let result = explore(&config, &IntervalOnlyOracle, ExploreOptions::default());
    let (violation, trace) = result.violation.expect("broken oracle must be caught");
    assert_eq!(violation.kind, InvariantKind::MonitorSoundness);
    let minimized = minimize(&config, &IntervalOnlyOracle, &trace, false);

    let mut bridge = DifferentialBridge::new(&config);
    for &action in &minimized {
        bridge.step(action).expect("model and implementation agree");
    }
    let report = bridge.report();
    let txn = report.finished.last().expect("the flagged txn finished");
    assert!(txn.ground_truth, "the counterexample reads are serializable");
    assert!(
        txn.monitor_serializable,
        "the production two-tier monitor accepts them"
    );
    let typed: Vec<(ObjectId, Version)> = txn
        .observed
        .iter()
        .map(|&(o, v)| (ObjectId(o), Version(v)))
        .collect();
    assert!(
        !bridge.monitor().interval_consistent(&typed),
        "the interval-only tier mis-flags them on the real monitor too — \
         the implementation reproduces the model's counterexample"
    );
}

/// Walks the model's enabled-action sets with a seeded RNG and replays
/// every generated trace differentially: any model/implementation
/// disagreement on any observable fails the test.
fn random_walk_agrees(config: &ModelConfig, seed: u64, steps: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bridge = DifferentialBridge::new(config);
    for _ in 0..steps {
        let enabled = bridge.model().enabled(config);
        if enabled.is_empty() {
            break;
        }
        let action = enabled[rng.gen_range(0..enabled.len())];
        bridge.step(action).map_err(|d| d.to_string())?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn random_quick_core_traces_replay_without_divergence(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
    ) {
        prop_assert_eq!(
            random_walk_agrees(&ModelConfig::quick_core(), seed, steps),
            Ok(())
        );
    }

    #[test]
    fn random_truncated_log_traces_replay_without_divergence(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
    ) {
        prop_assert_eq!(
            random_walk_agrees(&ModelConfig::truncated_log(), seed, steps),
            Ok(())
        );
    }

    #[test]
    fn random_no_recovery_traces_replay_without_divergence(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
    ) {
        prop_assert_eq!(
            random_walk_agrees(&ModelConfig::no_recovery(), seed, steps),
            Ok(())
        );
    }
}
