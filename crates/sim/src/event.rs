//! The discrete-event queue driving the simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tcache_types::{CacheId, SimTime};

/// The kinds of events processed by the experiment loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An update client issues a transaction against the database.
    UpdateTransaction,
    /// A read-only client issues a transaction against the given cache
    /// (each cache serves its own client population).
    ReadOnlyTransaction(CacheId),
    /// An invalidation channel has messages due for delivery.
    DeliverInvalidations,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue. Ties are broken by insertion order so runs
/// are fully deterministic.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.next_seq,
            event,
        }));
        self.next_seq += 1;
    }

    /// Pops the earliest event, returning its time and kind.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// The time of the earliest scheduled event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(3), Event::UpdateTransaction);
        q.schedule(SimTime::from_secs(1), Event::ReadOnlyTransaction(CacheId(0)));
        q.schedule(SimTime::from_secs(2), Event::DeliverInvalidations);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                Event::ReadOnlyTransaction(CacheId(0)),
                Event::DeliverInvalidations,
                Event::UpdateTransaction
            ]
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, Event::UpdateTransaction);
        q.schedule(t, Event::ReadOnlyTransaction(CacheId(1)));
        q.schedule(t, Event::DeliverInvalidations);
        assert_eq!(q.pop().unwrap().1, Event::UpdateTransaction);
        assert_eq!(q.pop().unwrap().1, Event::ReadOnlyTransaction(CacheId(1)));
        assert_eq!(q.pop().unwrap().1, Event::DeliverInvalidations);
    }
}
