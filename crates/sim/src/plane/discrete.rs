//! The discrete-event execution plane.
//!
//! Replays a pre-built [`Schedule`] against the simulated components in
//! virtual time: every transaction executes at its scheduled instant, the
//! per-cache discrete-event channels ([`tcache_net::channel`]) drop and
//! delay invalidations, and deliveries that became due are applied before
//! each event — exactly the loop the experiment harness has always run,
//! with workload generation factored out into the schedule so the live
//! plane can execute the identical script.
//!
//! The configured [`FaultPlan`] is walked with a cursor: every event due by
//! the current instant fires after pending deliveries are applied and
//! before the transaction executes, mirroring the live plane (which
//! quiesces deliveries after each commit and applies faults before each
//! operation). A severed link — crash or partition — stops *publication*
//! to that cache's channel, and deliveries addressed to a severed cache
//! are discarded rather than applied, exactly like the reactor plane's
//! delivery loop.

use crate::event::{Event, EventQueue};
use crate::experiment::Experiment;
use crate::plane::ScenarioLatency;
use crate::results::{CacheColumnResult, ExperimentResult};
use crate::schedule::{Schedule, ScheduledTxn};
use tcache_cache::{CacheStatsSnapshot, ReadMode};
use tcache_monitor::ReadPhase;
use tcache_net::fault::{FaultCursor, FaultEvent, FaultKind, FaultPlan};
use tcache_types::{CacheId, SimTime, TransactionRecord};
use tcache_workload::LatencyHistogram;

/// Executes `schedule` on the experiment's discrete-event components and
/// collects the results.
pub(crate) fn execute(mut exp: Experiment, schedule: &Schedule) -> ExperimentResult {
    let end = SimTime::ZERO + exp.config.duration;
    // Pre-load every scheduled transaction; the queue's insertion-order
    // tie-breaking reproduces the historical arrival interleaving because
    // the schedule is already in event order. Delivery events join the
    // queue dynamically as updates broadcast, exactly as before.
    let mut queue = EventQueue::new();
    for op in &schedule.ops {
        let event = match op.target {
            None => Event::UpdateTransaction,
            Some(cache) => Event::ReadOnlyTransaction(cache),
        };
        queue.schedule(op.at, event);
    }

    // The scenario's crash/restart churn rides the fault plan; its
    // deterministic latency model fills the per-cache histograms.
    let faults = exp.config.effective_faults();
    let latency_model = ScenarioLatency::from_config(&exp.config);
    let mut latency: Vec<LatencyHistogram> = vec![LatencyHistogram::new(); exp.caches.len()];
    let mut fault_cursor = FaultCursor::new();
    let mut severed = vec![false; exp.caches.len()];

    let mut cursor = 0usize;
    while let Some((now, event)) = queue.pop() {
        if now > end {
            break;
        }
        // Deliver every invalidation due by now before serving clients,
        // then fire the fault events that have become due.
        deliver_due(&mut exp, now, &severed);
        apply_due_faults(&mut exp, &faults, &mut fault_cursor, &mut severed, now);
        match event {
            Event::DeliverInvalidations => {}
            Event::UpdateTransaction => {
                let op = &schedule.ops[cursor];
                cursor += 1;
                debug_assert!(op.is_update());
                run_update(&mut exp, now, op, &mut queue, &severed);
            }
            Event::ReadOnlyTransaction(cache) => {
                let op = &schedule.ops[cursor];
                cursor += 1;
                debug_assert_eq!(op.target, Some(cache));
                run_read_only(&mut exp, now, cache, op, &latency_model, &mut latency);
            }
        }
    }
    // Fire whatever the plan still schedules inside the run's duration
    // (e.g. a heal after the last transaction), so final lifecycle states
    // and counters match the plan rather than the traffic pattern.
    apply_due_faults(&mut exp, &faults, &mut fault_cursor, &mut severed, end);

    let per_cache: Vec<CacheColumnResult> = exp
        .caches
        .iter()
        .zip(exp.fanout.stats())
        .zip(&exp.losses)
        .zip(latency)
        .map(|(((cache, (channel_id, channel)), &loss), latency)| {
            debug_assert_eq!(cache.id(), channel_id);
            CacheColumnResult {
                id: cache.id(),
                loss,
                report: exp.monitor.cache_report(cache.id()),
                degraded: exp.monitor.phase_report(cache.id(), ReadPhase::Degraded),
                cache: cache.stats(),
                channel,
                lifecycle: cache.lifecycle_stats(),
                latency,
            }
        })
        .collect();
    let mut cache_total = CacheStatsSnapshot::default();
    for column in &per_cache {
        cache_total.merge(column.cache);
    }
    ExperimentResult {
        duration: exp.config.duration,
        report: exp.monitor.report(),
        cache: cache_total,
        db: exp.db.stats(),
        channel: exp.fanout.aggregate_stats(),
        per_cache,
        timeseries: exp.timeseries,
        execution_wall: None,
    }
}

fn deliver_due(exp: &mut Experiment, now: SimTime, severed: &[bool]) {
    for (cache, invalidation) in exp.fanout.due(now) {
        // A severed cache's deliveries are discarded, like the reactor
        // plane's delivery loop draining a severed pipe without applying.
        if !severed[cache.0 as usize] {
            exp.caches[cache.0 as usize].apply_invalidation(invalidation);
        }
    }
}

/// Fires every fault event due by `now`, in plan order.
fn apply_due_faults(
    exp: &mut Experiment,
    plan: &FaultPlan,
    cursor: &mut FaultCursor,
    severed: &mut [bool],
    now: SimTime,
) {
    for &FaultEvent { at, cache, kind } in cursor.due(plan, now) {
        let index = cache.0 as usize;
        match kind {
            FaultKind::Crash => {
                severed[index] = true;
                exp.caches[index].crash(at);
            }
            FaultKind::Restart => {
                exp.caches[index].restart();
                severed[index] = false;
            }
            FaultKind::PartitionStart => {
                severed[index] = true;
                exp.caches[index].disconnect(at);
            }
            FaultKind::PartitionEnd => {
                exp.caches[index].reconnect();
                severed[index] = false;
            }
            FaultKind::DelaySpike(extra) => {
                exp.fanout
                    .channel_mut(cache)
                    .expect("fault plan names a deployed cache")
                    .set_extra_delay(extra);
            }
        }
    }
}

fn run_update(
    exp: &mut Experiment,
    now: SimTime,
    op: &ScheduledTxn,
    queue: &mut EventQueue,
    severed: &[bool],
) {
    match exp.db.execute_update(op.txn, &op.access) {
        Ok(commit) => {
            let record = TransactionRecord::update_committed(
                op.txn,
                commit.reads.clone(),
                commit.written.clone(),
                now,
            );
            exp.monitor.record_update_commit(&record);
            // Fan out per cache, skipping severed links: a crashed or
            // partitioned cache receives nothing, exactly like the live
            // plane's publisher discarding sends toward a severed pipe.
            // Per-cache channels draw from independent RNG streams, so
            // skipping one cache never perturbs another's loss pattern.
            for (index, &cut) in severed.iter().enumerate() {
                if !cut {
                    exp.fanout.send_to(
                        CacheId(index as u32),
                        now,
                        commit.invalidations.iter().copied(),
                    );
                }
            }
            if let Some(at) = exp.fanout.next_delivery_at() {
                queue.schedule(at, Event::DeliverInvalidations);
            }
        }
        Err(_) => {
            exp.monitor.record_update_abort();
        }
    }
}

fn run_read_only(
    exp: &mut Experiment,
    now: SimTime,
    cache: CacheId,
    op: &ScheduledTxn,
    latency_model: &Option<ScenarioLatency>,
    latency: &mut [LatencyHistogram],
) {
    let server = &exp.caches[cache.0 as usize];
    let log = server
        .execute_read_only(now, op.txn, op.access.objects())
        .unwrap_or_else(|e| panic!("unexpected cache error during experiment: {e}"));
    let degraded = matches!(log.mode, ReadMode::PassThrough);
    let phase = if degraded {
        ReadPhase::Degraded
    } else {
        ReadPhase::Healthy
    };
    if let Some(model) = latency_model {
        model.record(&mut latency[cache.0 as usize], now, op.txn, degraded);
    }
    let class = exp
        .monitor
        .record_read_only_in_phase(cache, phase, &log.observed, log.committed);
    exp.timeseries.record(now, class);
}
