//! The discrete-event execution plane.
//!
//! Replays a pre-built [`Schedule`] against the simulated components in
//! virtual time: every transaction executes at its scheduled instant, the
//! per-cache discrete-event channels ([`tcache_net::channel`]) drop and
//! delay invalidations, and deliveries that became due are applied before
//! each event — exactly the loop the experiment harness has always run,
//! with workload generation factored out into the schedule so the live
//! plane can execute the identical script.

use crate::event::{Event, EventQueue};
use crate::experiment::Experiment;
use crate::results::{CacheColumnResult, ExperimentResult};
use crate::schedule::{Schedule, ScheduledTxn};
use tcache_cache::CacheStatsSnapshot;
use tcache_types::{CacheId, ObjectId, SimTime, TCacheError, TransactionRecord};

/// Executes `schedule` on the experiment's discrete-event components and
/// collects the results.
pub(crate) fn execute(mut exp: Experiment, schedule: &Schedule) -> ExperimentResult {
    let end = SimTime::ZERO + exp.config.duration;
    // Pre-load every scheduled transaction; the queue's insertion-order
    // tie-breaking reproduces the historical arrival interleaving because
    // the schedule is already in event order. Delivery events join the
    // queue dynamically as updates broadcast, exactly as before.
    let mut queue = EventQueue::new();
    for op in &schedule.ops {
        let event = match op.target {
            None => Event::UpdateTransaction,
            Some(cache) => Event::ReadOnlyTransaction(cache),
        };
        queue.schedule(op.at, event);
    }

    let mut cursor = 0usize;
    while let Some((now, event)) = queue.pop() {
        if now > end {
            break;
        }
        // Deliver every invalidation due by now before serving clients.
        deliver_due(&mut exp, now);
        match event {
            Event::DeliverInvalidations => {}
            Event::UpdateTransaction => {
                let op = &schedule.ops[cursor];
                cursor += 1;
                debug_assert!(op.is_update());
                run_update(&mut exp, now, op, &mut queue);
            }
            Event::ReadOnlyTransaction(cache) => {
                let op = &schedule.ops[cursor];
                cursor += 1;
                debug_assert_eq!(op.target, Some(cache));
                run_read_only(&mut exp, now, cache, op);
            }
        }
    }

    let per_cache: Vec<CacheColumnResult> = exp
        .caches
        .iter()
        .zip(exp.fanout.stats())
        .zip(&exp.losses)
        .map(|((cache, (channel_id, channel)), &loss)| {
            debug_assert_eq!(cache.id(), channel_id);
            CacheColumnResult {
                id: cache.id(),
                loss,
                report: exp.monitor.cache_report(cache.id()),
                cache: cache.stats(),
                channel,
            }
        })
        .collect();
    let mut cache_total = CacheStatsSnapshot::default();
    for column in &per_cache {
        cache_total.merge(column.cache);
    }
    ExperimentResult {
        duration: exp.config.duration,
        report: exp.monitor.report(),
        cache: cache_total,
        db: exp.db.stats(),
        channel: exp.fanout.aggregate_stats(),
        per_cache,
        timeseries: exp.timeseries,
        execution_wall: None,
    }
}

fn deliver_due(exp: &mut Experiment, now: SimTime) {
    for (cache, invalidation) in exp.fanout.due(now) {
        exp.caches[cache.0 as usize].apply_invalidation(invalidation);
    }
}

fn run_update(exp: &mut Experiment, now: SimTime, op: &ScheduledTxn, queue: &mut EventQueue) {
    match exp.db.execute_update(op.txn, &op.access) {
        Ok(commit) => {
            let record = TransactionRecord::update_committed(
                op.txn,
                commit.reads.clone(),
                commit.written.clone(),
                now,
            );
            exp.monitor.record_update_commit(&record);
            exp.fanout
                .broadcast(now, commit.invalidations.invalidations());
            if let Some(at) = exp.fanout.next_delivery_at() {
                queue.schedule(at, Event::DeliverInvalidations);
            }
        }
        Err(_) => {
            exp.monitor.record_update_abort();
        }
    }
}

fn run_read_only(exp: &mut Experiment, now: SimTime, cache: CacheId, op: &ScheduledTxn) {
    let keys = op.access.objects();
    let mut observed: Vec<(ObjectId, tcache_types::Version)> = Vec::with_capacity(keys.len());
    let mut aborted = false;
    let server = &exp.caches[cache.0 as usize];
    for (i, &key) in keys.iter().enumerate() {
        let last_op = i + 1 == keys.len();
        match server.read(now, op.txn, key, last_op) {
            Ok(v) => observed.push((v.id, v.version)),
            Err(TCacheError::InconsistencyAbort { .. }) => {
                aborted = true;
                break;
            }
            Err(e) => panic!("unexpected cache error during experiment: {e}"),
        }
    }
    let class = exp
        .monitor
        .record_read_only_from(cache, &observed, !aborted);
    exp.timeseries.record(now, class);
}
