//! Execution planes: one [`ExperimentConfig`] runs on either backend.
//!
//! [`ExperimentConfig`]: crate::experiment::ExperimentConfig
//!
//! An experiment is a deterministic transaction [`Schedule`] plus a choice
//! of *execution plane* — the machinery that actually runs those
//! transactions and delivers invalidations:
//!
//! * [`ExecutionPlane::DiscreteEvent`] (the default) replays the schedule
//!   against the simulated components in virtual time: the per-cache
//!   discrete-event channels ([`tcache_net::channel`]) drop and delay
//!   invalidations, and nothing runs concurrently. Fast, exactly
//!   reproducible, the plane every paper figure historically used.
//! * [`ExecutionPlane::Live`] partitions the same schedule over real
//!   threads driving a real `TCacheSystem` in reactor transport with
//!   modeled delivery: update transactions commit against the backend on
//!   the driver thread, each cache's read-only client population runs on
//!   its own thread (sized by `CacheTopology::client_shares`), and the
//!   per-cache loss / latency models run *inside* the reactor's delivery
//!   tasks ([`tcache_net::delivery`]), seeded from `(seed, CacheId)` like
//!   everything else.
//!
//! Because both planes execute the same schedule against the same seeded
//! loss streams, a lockstep live run at zero delivery delay produces the
//! *same* `ConsistencyMonitor` verdicts as the discrete-event plane — the
//! cross-plane parity the tests pin down. With free-running clients
//! ([`LivePacing::Concurrent`]) the live plane instead measures what the
//! real stack does under genuine concurrency.
//!
//! [`Schedule`]: crate::schedule::Schedule

pub(crate) mod discrete;
pub(crate) mod live;

/// The scenario's deterministic client-latency model, shared by both
/// planes: latency is *modeled*, not measured — a pure function of
/// `(run seed, transaction id, scheduled time, degraded?)` — so the same
/// configuration fills bit-identical histograms on either plane and
/// across repeated runs (wall-clock measurements could never satisfy
/// that).
#[derive(Clone)]
pub(crate) struct ScenarioLatency {
    spec: tcache_workload::ScenarioSpec,
    seed: u64,
    backend_rtt_micros: u64,
}

impl ScenarioLatency {
    /// The latency model of `config`'s scenario, if one is set. The
    /// modeled backend round trip is tied to the configured invalidation
    /// delay (same network) plus a fixed query cost.
    pub(crate) fn from_config(config: &crate::experiment::ExperimentConfig) -> Option<Self> {
        config.scenario.as_ref().map(|spec| ScenarioLatency {
            spec: spec.clone(),
            seed: tcache_types::scenario_seed(
                config.seed,
                tcache_workload::scenario::streams::LATENCY,
            ),
            backend_rtt_micros: 2 * config.invalidation_delay.as_micros() + 5_000,
        })
    }

    /// Records the modeled latency of read `txn` scheduled at `now` into
    /// `histogram`.
    pub(crate) fn record(
        &self,
        histogram: &mut tcache_workload::LatencyHistogram,
        now: tcache_types::SimTime,
        txn: tcache_types::TxnId,
        degraded: bool,
    ) {
        histogram.record(self.spec.modeled_latency_micros(
            self.seed,
            now,
            txn.0,
            degraded,
            self.backend_rtt_micros,
        ));
    }
}

/// Which backend executes the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ExecutionPlane {
    /// The discrete-event simulator in virtual time (the default).
    #[default]
    DiscreteEvent,
    /// A real `TCacheSystem` in reactor transport with modeled delivery,
    /// driven by real client threads.
    Live(LiveOptions),
}

/// How the live plane's threads execute the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LivePacing {
    /// Deterministic: the driver dispatches transactions in schedule order
    /// and waits for each to complete (reads still execute on their
    /// cache's client thread, invalidations still flow through the
    /// reactor's delivery tasks); the reactor is quiesced after every
    /// update commit. At zero delivery delay this makes the live plane
    /// verdict-identical to the discrete-event plane on the same seed —
    /// the configuration for cross-plane validation. With a nonzero delay
    /// the quiesce waits each delivery out, so lockstep behaves like a
    /// zero-delay run measured on the live stack.
    #[default]
    Lockstep,
    /// Free-running: every client thread works through its slice of the
    /// schedule as fast as pacing allows, concurrently with the update
    /// driver and the reactor. Nondeterministic by nature; this is the
    /// plane for wall-clock throughput and behaviour under real races.
    Concurrent,
}

/// Tuning of an [`ExecutionPlane::Live`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveOptions {
    /// Lockstep (deterministic) or concurrent (free-running) execution.
    pub pacing: LivePacing,
    /// Wall-clock seconds per simulated second used to pace transaction
    /// start times under [`LivePacing::Concurrent`] (`0.0` = unpaced, run
    /// flat out). Ignored under lockstep, whose dispatch order *is* the
    /// pacing.
    pub time_scale: f64,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions::lockstep()
    }
}

impl LiveOptions {
    /// Deterministic lockstep execution (see [`LivePacing::Lockstep`]).
    pub fn lockstep() -> Self {
        LiveOptions {
            pacing: LivePacing::Lockstep,
            time_scale: 0.0,
        }
    }

    /// Free-running concurrent execution at full speed.
    pub fn concurrent() -> Self {
        LiveOptions {
            pacing: LivePacing::Concurrent,
            time_scale: 0.0,
        }
    }

    /// Free-running concurrent execution paced to `time_scale` wall-clock
    /// seconds per simulated second (1.0 = real time).
    pub fn concurrent_paced(time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale >= 0.0,
            "time scale must be non-negative"
        );
        LiveOptions {
            pacing: LivePacing::Concurrent,
            time_scale,
        }
    }
}
