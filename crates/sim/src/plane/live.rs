//! The live execution plane: the same experiment on the real stack.
//!
//! Instead of simulating components in virtual time, this plane builds a
//! real `TCacheSystem` — reactor transport, modeled delivery — and drives
//! it with real threads:
//!
//! * the **driver thread** walks the schedule, committing every update
//!   transaction against the backend database; the database's §IV upcalls
//!   push the invalidations into each cache's pipe at commit time;
//! * one **client thread per cache** executes that cache's read-only
//!   transactions (the schedule already sized each population from
//!   `CacheTopology::client_shares`);
//! * the **reactor thread** runs every cache's delivery task, which
//!   applies the per-cache loss / latency models in wall-clock time
//!   ([`tcache_net::delivery`]), seeded from `(seed, CacheId)` exactly
//!   like the discrete-event channels.
//!
//! Classification is deferred: threads log what each transaction observed,
//! and after the run the log is replayed through a fresh monitor behind a
//! [`BatchedIngest`] front end — updates ingest immediately, reads land in
//! per-cache shard buffers flushed in bounded epochs. Monitor verdicts are
//! stable under later updates (a read's verdict depends only on its
//! observed versions and the update history), so replay order only needs
//! every observed version recorded before the read that saw it — schedule
//! order under lockstep, updates-then-reads under concurrent pacing, where
//! a read can race ahead of the driver and observe a version the schedule
//! says is "later" — and batching the reads defers each verdict without
//! changing it (pinned by the `ingest_differential` proptest in the
//! monitor crate).

use super::{LiveOptions, LivePacing, ScenarioLatency};
use crate::experiment::{CacheKind, ExperimentConfig};
use crate::results::{CacheColumnResult, ExperimentResult};
use crate::schedule::Schedule;
use crate::timeseries::TimeSeries;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcache::{DeliveryMode, SystemBuilder, TCacheSystem, TransportMode};
use tcache_cache::{CacheStatsSnapshot, ObservedVec, ReadMode};
use tcache_monitor::{BatchedIngest, ConsistencyMonitor, ReadPhase};
use tcache_net::delivery::DeliveryModel;
use tcache_net::fault::{FaultCursor, FaultEvent, FaultKind};
use tcache_types::{
    CacheId, CachePolicyConfig, ObjectId, SimTime, TransactionRecord, Value,
};
use tcache_workload::{ChurnAction, ChurnEvent, LatencyHistogram};

/// How long a lockstep step waits for the reactor to settle before giving
/// up determinism for that step (generous; the reactor usually settles in
/// microseconds at zero delay).
const LOCKSTEP_QUIESCE_TIMEOUT: Duration = Duration::from_secs(10);

/// How many buffered read verdicts a replay epoch holds before flushing
/// into the monitor.
const INGEST_EPOCH_BOUND: usize = 64;

/// What one read-only transaction observed, logged for deferred replay.
struct ReadLog {
    /// Index of the transaction in the schedule.
    index: usize,
    observed: ObservedVec,
    committed: bool,
    /// Which path served it: cached (healthy) or pass-through (degraded).
    mode: ReadMode,
}

/// What one update transaction did, logged for deferred replay.
struct UpdateLog {
    index: usize,
    /// `None` if the database aborted the transaction.
    record: Option<TransactionRecord>,
}

/// Runs `config` on the live plane and collects the results in the same
/// shape the discrete-event plane produces.
///
/// # Panics
/// Panics if the configured topology deploys zero caches or a worker
/// thread dies.
pub(crate) fn run(config: ExperimentConfig, options: LiveOptions) -> ExperimentResult {
    let schedule = Arc::new(Schedule::build(&config));
    let losses = config.caches.losses(config.invalidation_loss);
    let policy = cache_policy(&config.cache);
    let models: Vec<DeliveryModel> = losses
        .iter()
        .map(|&loss| DeliveryModel::uniform(loss, config.invalidation_delay))
        .collect();
    let mut builder = SystemBuilder::new()
        .cache_policy(policy)
        .transport(TransportMode::Reactor)
        .delivery(DeliveryMode::Modeled)
        .delivery_models(models)
        .overflow_policy(config.overflow_policy)
        .recovery_policy(config.recovery)
        .seed(config.seed);
    if let Some(capacity) = config.pipe_capacity {
        builder = builder.pipe_capacity(capacity);
    }
    if let Some(parents) = &config.cache_parents {
        assert_eq!(
            parents.len(),
            losses.len(),
            "cache_parents must name every deployed cache"
        );
        builder = builder.cache_parents(parents.clone());
    }
    let system = Arc::new(builder.build());
    system.populate((0..schedule.object_count).map(|i| (ObjectId(i), Value::new(0))));

    let lockstep = options.pacing == LivePacing::Lockstep;
    let pace = (options.pacing == LivePacing::Concurrent && options.time_scale > 0.0)
        .then_some(options.time_scale);
    let started = Instant::now();

    // One client thread per cache. Jobs are schedule indices; under
    // lockstep each job is acknowledged so the driver can serialize the
    // schedule, under concurrent pacing the clients free-run.
    let cache_count = losses.len();
    let latency_model = ScenarioLatency::from_config(&config);
    let mut job_senders = Vec::with_capacity(cache_count);
    let mut done_receivers = Vec::with_capacity(cache_count);
    let mut clients = Vec::with_capacity(cache_count);
    for cache_index in 0..cache_count {
        let (job_tx, job_rx) = mpsc::channel::<usize>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        job_senders.push(job_tx);
        done_receivers.push(done_rx);
        let system = Arc::clone(&system);
        let schedule = Arc::clone(&schedule);
        let latency_model = latency_model.clone();
        let cache_id = CacheId(cache_index as u32);
        clients.push(
            std::thread::Builder::new()
                .name(format!("tcache-client-{cache_index}"))
                .spawn(move || {
                    let mut log: Vec<ReadLog> = Vec::new();
                    let mut latency = LatencyHistogram::new();
                    let cache = system.cache(cache_id).expect("cache is deployed");
                    while let Ok(index) = job_rx.recv() {
                        let op = &schedule.ops[index];
                        if let Some(scale) = pace {
                            pace_until(started, op.at, scale);
                        }
                        let txn = cache
                            .execute_read_only(op.at, op.txn, op.access.objects())
                            .unwrap_or_else(|e| {
                                panic!("unexpected cache error during experiment: {e}")
                            });
                        if let Some(model) = &latency_model {
                            let degraded = matches!(txn.mode, ReadMode::PassThrough);
                            model.record(&mut latency, op.at, op.txn, degraded);
                        }
                        log.push(ReadLog {
                            index,
                            observed: txn.observed,
                            committed: txn.committed,
                            mode: txn.mode,
                        });
                        if lockstep {
                            // The driver is blocked on this acknowledgement;
                            // it disappearing means the run is being torn
                            // down, which only happens on a panic there.
                            let _ = done_tx.send(());
                        }
                    }
                    (log, latency)
                })
                .expect("spawn client thread"),
        );
    }

    // The driver: updates commit here, reads are dispatched to their
    // cache's client. Fault events due by each operation's scheduled time
    // fire before the operation — after the previous update's lockstep
    // quiesce, so pending deliveries are applied first, exactly like the
    // discrete plane delivering due messages before firing faults.
    let faults = config.effective_faults();
    let mut fault_cursor = FaultCursor::new();
    // Pause/resume churn stays outside the fault plan: it drives the
    // reactor's pausable pipes (a paused cache's backlog queues; nothing
    // is lost), which only this plane has.
    let pauses: Vec<ChurnEvent> = config
        .scenario
        .as_ref()
        .map(|spec| {
            spec.churn_events()
                .iter()
                .copied()
                .filter(|e| matches!(e.action, ChurnAction::Pause | ChurnAction::Resume))
                .collect()
        })
        .unwrap_or_default();
    let mut pause_cursor = 0usize;
    let mut update_log: Vec<UpdateLog> = Vec::new();
    for (index, op) in schedule.ops.iter().enumerate() {
        while pause_cursor < pauses.len() && pauses[pause_cursor].at <= op.at {
            apply_pause(&system, &pauses[pause_cursor], lockstep);
            pause_cursor += 1;
        }
        for event in fault_cursor.due(&faults, op.at) {
            apply_fault(&system, event);
        }
        match op.target {
            None => {
                if let Some(scale) = pace {
                    pace_until(started, op.at, scale);
                }
                let record = match system.database().execute_update(op.txn, &op.access) {
                    Ok(commit) => Some(TransactionRecord::update_committed(
                        op.txn,
                        commit.reads.clone(),
                        commit.written.clone(),
                        op.at,
                    )),
                    Err(_) => None,
                };
                update_log.push(UpdateLog { index, record });
                if lockstep {
                    // Settle the reactor so every surviving invalidation is
                    // applied before the next transaction observes the
                    // caches — the live analogue of the discrete plane
                    // delivering due messages before each event. A timeout
                    // here would silently void the determinism the
                    // lockstep plane exists to provide, so it is fatal.
                    let settled = system
                        .quiesce(LOCKSTEP_QUIESCE_TIMEOUT)
                        .expect("reactor transport supports quiesce");
                    assert!(
                        settled,
                        "lockstep quiesce timed out after an update commit; \
                         the run is no longer deterministic"
                    );
                }
            }
            Some(cache) => {
                let cache_index = cache.0 as usize;
                job_senders[cache_index]
                    .send(index)
                    .expect("client thread is alive");
                if lockstep {
                    done_receivers[cache_index]
                        .recv()
                        .expect("client thread acknowledges");
                }
            }
        }
    }
    drop(job_senders);
    // Fire whatever the plan still schedules inside the run's duration
    // (e.g. a heal after the last transaction), so final lifecycle states
    // match the plan rather than the traffic pattern.
    let end = SimTime::ZERO + config.duration;
    while pause_cursor < pauses.len() && pauses[pause_cursor].at <= end {
        apply_pause(&system, &pauses[pause_cursor], lockstep);
        pause_cursor += 1;
    }
    for event in fault_cursor.due(&faults, end) {
        apply_fault(&system, event);
    }
    let mut read_logs: Vec<ReadLog> = Vec::new();
    let mut latency_columns: Vec<LatencyHistogram> = Vec::with_capacity(cache_count);
    for client in clients {
        let (log, latency) = client.join().expect("client thread panicked");
        read_logs.extend(log);
        latency_columns.push(latency);
    }
    // Wait out every in-flight delivery (sleeping modeled delays included)
    // so the final statistics and cache states are settled. Only the
    // lockstep plane turns a timeout into a failure (its contract is
    // determinism); a free-running run just reports what settled.
    let settled = system
        .quiesce(LOCKSTEP_QUIESCE_TIMEOUT)
        .expect("reactor transport supports quiesce");
    assert!(
        !lockstep || settled,
        "lockstep final quiesce timed out; statistics would be incomplete"
    );
    // Execution ends here: everything after is classification bookkeeping,
    // kept out of the wall-clock figure so throughput rows track the live
    // stack rather than the monitor.
    let execution_wall = started.elapsed();

    let (monitor, timeseries) = replay(
        &schedule,
        &config,
        options.pacing,
        update_log,
        read_logs,
    );
    let report = monitor.report();

    let stats = system.stats();
    let per_cache: Vec<CacheColumnResult> = stats
        .per_cache
        .iter()
        .zip(&losses)
        .zip(latency_columns)
        .map(|((node, &loss), latency)| CacheColumnResult {
            id: node.id,
            loss,
            report: monitor.cache_report(node.id),
            degraded: monitor.phase_report(node.id, ReadPhase::Degraded),
            cache: node.cache,
            channel: node.channel,
            lifecycle: system
                .cache(node.id)
                .expect("cache is deployed")
                .lifecycle_stats(),
            latency,
        })
        .collect();
    let mut cache_total = CacheStatsSnapshot::default();
    for column in &per_cache {
        cache_total.merge(column.cache);
    }
    ExperimentResult {
        duration: config.duration,
        report,
        cache: cache_total,
        db: system.database().stats(),
        channel: stats.channel,
        per_cache,
        timeseries,
        execution_wall: Some(execution_wall),
    }
}

/// Replays the execution log through a fresh monitor behind a
/// [`BatchedIngest`]: updates ingest immediately, reads are appended to
/// per-cache shard buffers and classified when an epoch
/// ([`INGEST_EPOCH_BOUND`] reads) flushes. Under lockstep the log replays
/// in schedule order (bit-identical to the discrete plane's interleaving —
/// deferring a read's verdict past later updates does not change it, and
/// the time series bins by each read's scheduled time, not by flush
/// order); under concurrent pacing updates replay first so every version a
/// racing read observed is already in the history.
fn replay(
    schedule: &Schedule,
    config: &ExperimentConfig,
    pacing: LivePacing,
    update_log: Vec<UpdateLog>,
    read_logs: Vec<ReadLog>,
) -> (ConsistencyMonitor, TimeSeries) {
    enum Entry {
        Update(Option<TransactionRecord>),
        Read(ObservedVec, bool, ReadMode),
    }
    let mut slots: Vec<Option<Entry>> = Vec::with_capacity(schedule.ops.len());
    slots.resize_with(schedule.ops.len(), || None);
    for update in update_log {
        slots[update.index] = Some(Entry::Update(update.record));
    }
    for read in read_logs {
        slots[read.index] = Some(Entry::Read(read.observed, read.committed, read.mode));
    }

    let shard_count = schedule
        .ops
        .iter()
        .filter_map(|op| op.target)
        .map(|cache| cache.0 as usize + 1)
        .max()
        .unwrap_or(1);
    let mut ingest = BatchedIngest::new(shard_count, INGEST_EPOCH_BOUND);
    let mut timeseries = TimeSeries::new(config.timeseries_bin);
    // Tokens are handed out in submission order, so this maps each buffered
    // read's token back to its scheduled completion time at flush.
    let mut read_times: Vec<SimTime> = Vec::new();
    let record = |ingest: &mut BatchedIngest,
                      timeseries: &mut TimeSeries,
                      read_times: &mut Vec<SimTime>,
                      index: usize,
                      entry: &Entry| match entry {
        Entry::Update(Some(record)) => ingest.record_update_commit(record),
        Entry::Update(None) => ingest.record_update_abort(),
        Entry::Read(observed, committed, mode) => {
            let op = &schedule.ops[index];
            let cache = op.target.expect("read entries carry a target cache");
            let phase = match mode {
                ReadMode::Cached => ReadPhase::Healthy,
                ReadMode::PassThrough => ReadPhase::Degraded,
            };
            read_times.push(op.at);
            ingest.submit_read(
                cache.0 as usize,
                Some(cache),
                Some(phase),
                observed.to_vec(),
                *committed,
                &mut |token, class| timeseries.record(read_times[token as usize], class),
            );
        }
    };
    match pacing {
        LivePacing::Lockstep => {
            for (index, slot) in slots.iter().enumerate() {
                let entry = slot.as_ref().expect("every scheduled txn executed");
                record(&mut ingest, &mut timeseries, &mut read_times, index, entry);
            }
        }
        LivePacing::Concurrent => {
            for pass_reads in [false, true] {
                for (index, slot) in slots.iter().enumerate() {
                    let entry = slot.as_ref().expect("every scheduled txn executed");
                    if matches!(entry, Entry::Read(..)) == pass_reads {
                        record(&mut ingest, &mut timeseries, &mut read_times, index, entry);
                    }
                }
            }
        }
    }
    let monitor =
        ingest.finish(&mut |token, class| timeseries.record(read_times[token as usize], class));

    (monitor, timeseries)
}

/// Applies one scheduled fault event through the system's fault surface.
///
/// # Panics
/// Panics if the plan names an unknown cache (the plan is validated
/// against the deployed topology by construction of the experiment).
fn apply_fault(system: &TCacheSystem, event: &FaultEvent) {
    let FaultEvent { at, cache, kind } = *event;
    match kind {
        FaultKind::Crash => system.crash_cache(cache, at),
        FaultKind::Restart => system.restart_cache(cache),
        FaultKind::PartitionStart => system.partition_cache(cache, at),
        FaultKind::PartitionEnd => system.heal_cache(cache),
        FaultKind::DelaySpike(extra) => system.set_cache_extra_delay(cache, extra),
    }
    .expect("fault plan names a deployed cache on a reactor transport");
}

/// Applies one pause/resume churn event through the system's pausable
/// pipes. A resume under lockstep quiesces immediately: the paused cache's
/// queued backlog drains on the reactor's own wall-clock schedule, and
/// determinism requires it fully applied before the next transaction
/// observes the cache.
///
/// # Panics
/// Panics if the scenario names an unknown cache or pairs its events
/// inconsistently (pausing a paused cache, resuming a running one).
fn apply_pause(system: &TCacheSystem, event: &ChurnEvent, lockstep: bool) {
    let cache = CacheId(event.cache);
    match event.action {
        ChurnAction::Pause => system
            .pause_cache(cache)
            .expect("scenario pauses a deployed, running cache"),
        ChurnAction::Resume => {
            system
                .resume_cache(cache)
                .expect("scenario resumes a paused cache");
            if lockstep {
                let settled = system
                    .quiesce(LOCKSTEP_QUIESCE_TIMEOUT)
                    .expect("reactor transport supports quiesce");
                assert!(
                    settled,
                    "lockstep quiesce timed out draining a resumed cache's backlog"
                );
            }
        }
        ChurnAction::Crash | ChurnAction::Restart => {
            unreachable!("crash churn is routed through the fault plan")
        }
    }
}

/// Sleeps until the wall-clock instant `at` maps to under `scale` seconds
/// of wall time per simulated second.
fn pace_until(started: Instant, at: SimTime, scale: f64) {
    let target = started + Duration::from_secs_f64(at.as_secs_f64() * scale);
    let now = Instant::now();
    if target > now {
        // Pacing is the one place simulated time is *meant* to map onto
        // wall time, so a real sleep is the correct primitive.
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(target - now);
    }
}

/// The `TCacheSystem` cache policy equivalent of a harness [`CacheKind`].
fn cache_policy(kind: &CacheKind) -> CachePolicyConfig {
    match *kind {
        CacheKind::TCache {
            dependency_bound,
            strategy,
        } => CachePolicyConfig::tcache(dependency_bound, strategy),
        CacheKind::Unbounded { strategy } => CachePolicyConfig::unbounded(strategy),
        CacheKind::Plain => CachePolicyConfig::plain(),
        CacheKind::Ttl { ttl } => CachePolicyConfig::ttl_baseline(ttl),
    }
}
