//! Per-figure experiment drivers.
//!
//! Each function reproduces one figure of the paper's evaluation and returns
//! the rows / series the figure plots. The binaries in the `tcache-bench`
//! crate call these with paper-scale durations and print the tables; the
//! unit tests here call them with short durations and assert the qualitative
//! shape (who wins, what trends up or down).

use crate::experiment::{CacheKind, CacheTopology, ExperimentConfig, WorkloadKind};
use crate::plane::{ExecutionPlane, LiveOptions};
use crate::results::ExperimentResult;
use serde::Serialize;
use tcache_net::fault::FaultPlan;
use tcache_net::pipe::OverflowPolicy;
use tcache_types::{CacheId, RecoveryPolicy, SimDuration, SimTime, Strategy};
use tcache_workload::graph::GraphKind;

/// The α values swept by Figure 3 (1/32 … 4).
pub const FIG3_ALPHAS: [f64; 8] = [
    1.0 / 32.0,
    1.0 / 16.0,
    1.0 / 8.0,
    1.0 / 4.0,
    1.0 / 2.0,
    1.0,
    2.0,
    4.0,
];

/// One row of Figure 3: detection ratio as a function of the Pareto α.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig3Row {
    /// The Pareto shape parameter of the workload.
    pub alpha: f64,
    /// Percentage of potential inconsistencies detected by T-Cache.
    pub detected_pct: f64,
    /// Percentage of committed transactions that were inconsistent.
    pub inconsistency_pct: f64,
    /// Percentage of read-only transactions aborted.
    pub aborted_pct: f64,
}

/// Figure 3: inconsistency detection ratio as a function of workload
/// clustering (Pareto α), with dependency lists bounded at 5 and the ABORT
/// strategy.
pub fn fig3(duration: SimDuration, seed: u64) -> Vec<Fig3Row> {
    FIG3_ALPHAS
        .iter()
        .map(|&alpha| {
            let result = ExperimentConfig {
                duration,
                workload: WorkloadKind::ParetoClusters {
                    objects: 2000,
                    cluster_size: 5,
                    alpha,
                },
                cache: CacheKind::TCache {
                    dependency_bound: 5,
                    strategy: Strategy::Abort,
                },
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            Fig3Row {
                alpha,
                detected_pct: result.detection_ratio() * 100.0,
                inconsistency_pct: result.inconsistency_ratio() * 100.0,
                aborted_pct: result.abort_ratio() * 100.0,
            }
        })
        .collect()
}

/// One point of the Figure 4 convergence series: transaction rates by class.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig4Point {
    /// Bin start time in seconds.
    pub time_secs: f64,
    /// Consistent committed transactions per second.
    pub consistent_rate: f64,
    /// Inconsistent committed transactions per second.
    pub inconsistent_rate: f64,
    /// Aborted transactions per second.
    pub aborted_rate: f64,
}

/// Figure 4: convergence after cluster formation. Accesses are uniformly
/// random until `switch_at` and perfectly clustered afterwards; the series
/// shows the per-second rates of consistent, inconsistent and aborted
/// transactions over time.
pub fn fig4(total: SimDuration, switch_at: SimTime, seed: u64) -> Vec<Fig4Point> {
    let result = ExperimentConfig {
        duration: total,
        workload: WorkloadKind::PhaseShift {
            objects: 1000,
            cluster_size: 5,
            switch_at,
        },
        cache: CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Abort,
        },
        update_rate: 100.0,
        read_rate: 500.0,
        timeseries_bin: SimDuration::from_secs(2),
        seed,
        ..ExperimentConfig::default()
    }
    .run();
    result
        .timeseries
        .rates_per_second()
        .into_iter()
        .map(|(t, c, i, a)| Fig4Point {
            time_secs: t,
            consistent_rate: c,
            inconsistent_rate: i,
            aborted_rate: a,
        })
        .collect()
}

/// One point of the Figure 5 drifting-cluster series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig5Point {
    /// Bin start time in seconds.
    pub time_secs: f64,
    /// Percentage of committed transactions in the bin that were
    /// inconsistent.
    pub inconsistency_pct: f64,
}

/// Figure 5: perfectly clustered workload whose clusters shift by one object
/// every `shift_every`; the inconsistency ratio spikes at each shift and
/// converges back as the dependency lists adapt.
pub fn fig5(total: SimDuration, shift_every: SimDuration, seed: u64) -> Vec<Fig5Point> {
    let result = ExperimentConfig {
        duration: total,
        workload: WorkloadKind::Drifting {
            objects: 2000,
            cluster_size: 5,
            shift_every,
        },
        cache: CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Abort,
        },
        timeseries_bin: SimDuration::from_secs(5),
        seed,
        ..ExperimentConfig::default()
    }
    .run();
    result
        .timeseries
        .iter()
        .map(|(t, bin)| Fig5Point {
            time_secs: t.as_secs_f64(),
            inconsistency_pct: bin.inconsistency_ratio() * 100.0,
        })
        .collect()
}

/// One bar of the strategy-comparison figures (6 and 8): the breakdown of
/// read-only transactions by outcome.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StrategyBreakdown {
    /// The workload the bar belongs to (`None` for the synthetic workload of
    /// Figure 6).
    pub workload: Option<GraphKind>,
    /// The inconsistency-handling strategy.
    pub strategy: Strategy,
    /// Percentage of transactions that committed consistently.
    pub consistent_pct: f64,
    /// Percentage of transactions that committed having observed
    /// inconsistent data.
    pub inconsistent_pct: f64,
    /// Percentage of transactions aborted.
    pub aborted_pct: f64,
}

fn breakdown(
    workload: Option<GraphKind>,
    strategy: Strategy,
    result: &ExperimentResult,
) -> StrategyBreakdown {
    let total = result.report.read_only_total().max(1) as f64;
    StrategyBreakdown {
        workload,
        strategy,
        consistent_pct: result.report.committed_consistent as f64 / total * 100.0,
        inconsistent_pct: result.report.committed_inconsistent as f64 / total * 100.0,
        aborted_pct: result.report.aborted_total() as f64 / total * 100.0,
    }
}

/// Figure 6: the efficacy of ABORT / EVICT / RETRY on the approximately
/// clustered synthetic workload (2000 objects, α = 1.0, dependency bound 5).
pub fn fig6(duration: SimDuration, seed: u64) -> Vec<StrategyBreakdown> {
    Strategy::ALL
        .iter()
        .map(|&strategy| {
            let result = ExperimentConfig {
                duration,
                workload: WorkloadKind::ParetoClusters {
                    objects: 2000,
                    cluster_size: 5,
                    alpha: 1.0,
                },
                cache: CacheKind::TCache {
                    dependency_bound: 5,
                    strategy,
                },
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            breakdown(None, strategy, &result)
        })
        .collect()
}

/// One row of Figure 7c / 7d: inconsistency ratio, hit ratio and database
/// load for one cache configuration on one realistic workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RealisticRow {
    /// Which topology the workload stands in for.
    pub workload: GraphKind,
    /// Dependency-list bound (Figure 7c) — `None` for TTL rows.
    pub dependency_bound: Option<usize>,
    /// Cache-entry TTL in seconds (Figure 7d) — `None` for T-Cache rows.
    pub ttl_secs: Option<u64>,
    /// Percentage of committed transactions that were inconsistent.
    pub inconsistency_pct: f64,
    /// Cache hit ratio.
    pub hit_ratio: f64,
    /// Reads per second the cache issued to the database.
    pub db_reads_per_sec: f64,
}

/// Figure 7c: T-Cache on the two realistic workloads as a function of the
/// dependency-list bound (0 through 5).
pub fn fig7c(duration: SimDuration, seed: u64) -> Vec<RealisticRow> {
    let mut rows = Vec::new();
    for kind in [GraphKind::RetailAffinity, GraphKind::SocialNetwork] {
        for bound in 0..=5usize {
            let result = ExperimentConfig {
                duration,
                workload: graph_workload(kind),
                cache: CacheKind::TCache {
                    dependency_bound: bound,
                    strategy: Strategy::Abort,
                },
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            rows.push(RealisticRow {
                workload: kind,
                dependency_bound: Some(bound),
                ttl_secs: None,
                inconsistency_pct: result.inconsistency_ratio() * 100.0,
                hit_ratio: result.hit_ratio(),
                db_reads_per_sec: result.db_reads_per_second(),
            });
        }
    }
    rows
}

/// The TTL values (in seconds) swept by Figure 7d, from effectively-infinite
/// down to aggressive expiry.
pub const FIG7D_TTLS: [u64; 9] = [6400, 3200, 1600, 800, 400, 200, 100, 50, 30];

/// Figure 7d: the TTL-limited baseline on the two realistic workloads as a
/// function of the entry TTL. `ttls` are the TTL values (seconds) to sweep;
/// pass [`FIG7D_TTLS`] for the paper's range or a scaled-down range for
/// short runs.
pub fn fig7d(duration: SimDuration, seed: u64, ttls: &[u64]) -> Vec<RealisticRow> {
    let mut rows = Vec::new();
    for kind in [GraphKind::RetailAffinity, GraphKind::SocialNetwork] {
        for &ttl in ttls {
            let result = ExperimentConfig {
                duration,
                workload: graph_workload(kind),
                cache: CacheKind::Ttl {
                    ttl: SimDuration::from_secs(ttl),
                },
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            rows.push(RealisticRow {
                workload: kind,
                dependency_bound: None,
                ttl_secs: Some(ttl),
                inconsistency_pct: result.inconsistency_ratio() * 100.0,
                hit_ratio: result.hit_ratio(),
                db_reads_per_sec: result.db_reads_per_second(),
            });
        }
    }
    rows
}

/// Figure 8: ABORT / EVICT / RETRY on the realistic workloads with
/// dependency lists bounded at 3.
pub fn fig8(duration: SimDuration, seed: u64) -> Vec<StrategyBreakdown> {
    let mut rows = Vec::new();
    for kind in [GraphKind::RetailAffinity, GraphKind::SocialNetwork] {
        for &strategy in &Strategy::ALL {
            let result = ExperimentConfig {
                duration,
                workload: graph_workload(kind),
                cache: CacheKind::TCache {
                    dependency_bound: 3,
                    strategy,
                },
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            rows.push(breakdown(Some(kind), strategy, &result));
        }
    }
    rows
}

/// One row of the headline comparison (abstract / §V-B): T-Cache with
/// dependency bound 3 versus the consistency-unaware cache.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HeadlineRow {
    /// Which topology the workload stands in for.
    pub workload: GraphKind,
    /// Inconsistency ratio of the consistency-unaware cache (percent).
    pub baseline_inconsistency_pct: f64,
    /// Inconsistency ratio of T-Cache (percent).
    pub tcache_inconsistency_pct: f64,
    /// Percentage of the baseline's inconsistencies that T-Cache removed
    /// (detected and either aborted or repaired by read-throughs).
    pub detected_pct: f64,
    /// Relative increase of the consistent-commit rate over the baseline
    /// (percent).
    pub consistent_rate_increase_pct: f64,
}

/// The headline claim: with dependency lists of size 3 T-Cache detects
/// 43–70 % of inconsistencies and increases the consistent-transaction rate
/// by 33–58 %.
pub fn headline(duration: SimDuration, seed: u64) -> Vec<HeadlineRow> {
    [GraphKind::RetailAffinity, GraphKind::SocialNetwork]
        .into_iter()
        .map(|kind| {
            let baseline = ExperimentConfig {
                duration,
                workload: graph_workload(kind),
                cache: CacheKind::Plain,
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            let tcache = ExperimentConfig {
                duration,
                workload: graph_workload(kind),
                cache: CacheKind::TCache {
                    dependency_bound: 3,
                    strategy: Strategy::Retry,
                },
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            let baseline_consistent = baseline.consistent_commit_ratio().max(1e-9);
            let baseline_incons = baseline.inconsistency_ratio();
            let removed = if baseline_incons > 0.0 {
                (1.0 - tcache.inconsistency_ratio() / baseline_incons) * 100.0
            } else {
                0.0
            };
            HeadlineRow {
                workload: kind,
                baseline_inconsistency_pct: baseline_incons * 100.0,
                tcache_inconsistency_pct: tcache.inconsistency_ratio() * 100.0,
                detected_pct: removed,
                consistent_rate_increase_pct: (tcache.consistent_commit_ratio()
                    / baseline_consistent
                    - 1.0)
                    * 100.0,
            }
        })
        .collect()
}

/// One row of the invalidation-loss sweep (an extension beyond the paper:
/// how sensitive is T-Cache to the channel loss rate?).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DropSweepRow {
    /// Fraction of invalidations dropped.
    pub loss: f64,
    /// Inconsistency ratio of the plain cache (percent).
    pub plain_inconsistency_pct: f64,
    /// Inconsistency ratio of T-Cache (percent).
    pub tcache_inconsistency_pct: f64,
}

/// Extension experiment: sweep the invalidation loss rate and compare the
/// plain cache with T-Cache (dependency bound 3, RETRY).
pub fn drop_sweep(duration: SimDuration, seed: u64, losses: &[f64]) -> Vec<DropSweepRow> {
    losses
        .iter()
        .map(|&loss| {
            let base = ExperimentConfig {
                duration,
                workload: graph_workload(GraphKind::RetailAffinity),
                cache: CacheKind::Plain,
                invalidation_loss: loss,
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            let tcache = ExperimentConfig {
                duration,
                workload: graph_workload(GraphKind::RetailAffinity),
                cache: CacheKind::TCache {
                    dependency_bound: 3,
                    strategy: Strategy::Retry,
                },
                invalidation_loss: loss,
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            DropSweepRow {
                loss,
                plain_inconsistency_pct: base.inconsistency_ratio() * 100.0,
                tcache_inconsistency_pct: tcache.inconsistency_ratio() * 100.0,
            }
        })
        .collect()
}

/// The heterogeneous per-cache loss rates of the default multi-cache
/// experiment: four edge caches whose invalidation links range from
/// reliable to badly lossy.
pub const MULTI_CACHE_LOSSES: [f64; 4] = [0.0, 0.1, 0.2, 0.4];

/// One row of the multi-cache experiment: one edge cache's outcome under
/// its own invalidation-loss rate, for the plain cache and for T-Cache.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MultiCacheRow {
    /// The cache server (rows are per cache, not per workload).
    pub cache: u32,
    /// Configured loss rate of this cache's invalidation channel.
    pub loss: f64,
    /// Inconsistency ratio of the consistency-unaware cache (percent).
    pub plain_inconsistency_pct: f64,
    /// Inconsistency ratio of T-Cache (percent).
    pub tcache_inconsistency_pct: f64,
    /// Percentage of T-Cache's read-only transactions aborted.
    pub tcache_aborted_pct: f64,
    /// T-Cache's hit ratio on this cache.
    pub tcache_hit_ratio: f64,
}

/// Aggregate view of one multi-cache comparison run.
#[derive(Debug, Clone, Serialize)]
pub struct MultiCacheFigure {
    /// Per-cache rows, ordered by `CacheId`.
    pub rows: Vec<MultiCacheRow>,
    /// The plain deployment's inconsistency ratio over all caches (percent).
    pub plain_aggregate_inconsistency_pct: f64,
    /// The T-Cache deployment's inconsistency ratio over all caches
    /// (percent).
    pub tcache_aggregate_inconsistency_pct: f64,
}

/// The multi-cache experiment: N edge caches over one database, each with an
/// independently seeded invalidation channel at its own loss rate (pass
/// [`MULTI_CACHE_LOSSES`] for the default four-cache setup). Reproduces the
/// inconsistency-vs-loss trend *per cache within a single deployment* and
/// compares the plain cache against T-Cache (dependency bound 5, ABORT).
pub fn multi_cache(duration: SimDuration, seed: u64, losses: &[f64]) -> MultiCacheFigure {
    let base = ExperimentConfig {
        duration,
        workload: WorkloadKind::PerfectClusters {
            objects: 1000,
            cluster_size: 5,
        },
        caches: CacheTopology::PerCacheLoss(losses.to_vec()),
        seed,
        ..ExperimentConfig::default()
    };
    let plain = ExperimentConfig {
        cache: CacheKind::Plain,
        ..base.clone()
    }
    .run();
    let tcache = ExperimentConfig {
        cache: CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Abort,
        },
        ..base
    }
    .run();
    let rows = plain
        .per_cache
        .iter()
        .zip(&tcache.per_cache)
        .map(|(p, t)| {
            debug_assert_eq!(p.id, t.id);
            MultiCacheRow {
                cache: p.id.0,
                loss: p.loss,
                plain_inconsistency_pct: p.inconsistency_ratio() * 100.0,
                tcache_inconsistency_pct: t.inconsistency_ratio() * 100.0,
                tcache_aborted_pct: t.abort_ratio() * 100.0,
                tcache_hit_ratio: t.hit_ratio(),
            }
        })
        .collect();
    MultiCacheFigure {
        rows,
        plain_aggregate_inconsistency_pct: plain.inconsistency_ratio() * 100.0,
        tcache_aggregate_inconsistency_pct: tcache.inconsistency_ratio() * 100.0,
    }
}

fn graph_workload(kind: GraphKind) -> WorkloadKind {
    WorkloadKind::Graph {
        kind,
        source_nodes: 4000,
        sampled_nodes: 1000,
    }
}

/// The heterogeneous per-cache loss rates of the default live-plane
/// experiment (the same ladder the multi-cache figure sweeps).
pub const LIVE_PLANE_LOSSES: [f64; 4] = MULTI_CACHE_LOSSES;

/// One cache of the live-plane experiment: its inconsistency under its own
/// loss rate, measured on the live reactor stack and on the discrete-event
/// simulator — the cross-plane comparison row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LivePlaneRow {
    /// The cache server.
    pub cache: u32,
    /// Configured loss rate of this cache's invalidation link.
    pub loss: f64,
    /// Plain-cache inconsistency on the live plane (percent).
    pub live_plain_inconsistency_pct: f64,
    /// Plain-cache inconsistency on the discrete-event plane (percent).
    pub sim_plain_inconsistency_pct: f64,
    /// T-Cache inconsistency on the live plane (percent).
    pub live_tcache_inconsistency_pct: f64,
    /// Invalidations this cache's live delivery task dropped.
    pub live_dropped: u64,
    /// Invalidations the discrete-event channel dropped.
    pub sim_dropped: u64,
}

/// Aggregate view of one live-plane experiment.
#[derive(Debug, Clone, Serialize)]
pub struct LivePlaneFigure {
    /// Per-cache cross-plane rows, ordered by `CacheId`.
    pub rows: Vec<LivePlaneRow>,
    /// Plain-cache inconsistency over all caches on the live plane
    /// (percent).
    pub live_aggregate_plain_pct: f64,
    /// Plain-cache inconsistency over all caches on the discrete-event
    /// plane (percent).
    pub sim_aggregate_plain_pct: f64,
    /// Read-only transactions per *wall-clock* second sustained by a
    /// free-running concurrent live run of the same configuration (driver,
    /// N client threads and the reactor all running flat out).
    pub live_read_txns_per_wall_sec: f64,
}

/// The live-plane experiment (ISSUE 5): the multi-cache
/// inconsistency-vs-loss trend reproduced on the *live* reactor stack — a
/// real `TCacheSystem`, reactor transport, loss applied by the per-cache
/// delivery tasks — next to the discrete-event plane's numbers for the
/// same configuration and seed. At zero delivery delay the lockstep live
/// rows must match the simulated ones exactly (same seeded loss streams,
/// same schedule); the figure is the repo's "one system measured two
/// ways" validation. A final free-running concurrent run measures the
/// wall-clock read throughput of the live stack.
pub fn live_plane(duration: SimDuration, seed: u64, losses: &[f64]) -> LivePlaneFigure {
    let base = ExperimentConfig {
        duration,
        workload: WorkloadKind::PerfectClusters {
            objects: 1000,
            cluster_size: 5,
        },
        cache: CacheKind::Plain,
        caches: CacheTopology::PerCacheLoss(losses.to_vec()),
        invalidation_delay: SimDuration::ZERO,
        seed,
        ..ExperimentConfig::default()
    };
    let live_plain = base
        .clone()
        .on_plane(ExecutionPlane::Live(LiveOptions::lockstep()))
        .run();
    let sim_plain = base.clone().on_plane(ExecutionPlane::DiscreteEvent).run();
    let live_tcache = ExperimentConfig {
        cache: CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Abort,
        },
        ..base.clone()
    }
    .on_plane(ExecutionPlane::Live(LiveOptions::lockstep()))
    .run();

    let rows = live_plain
        .per_cache
        .iter()
        .zip(&sim_plain.per_cache)
        .zip(&live_tcache.per_cache)
        .map(|((live, sim), tcache)| {
            debug_assert_eq!(live.id, sim.id);
            LivePlaneRow {
                cache: live.id.0,
                loss: live.loss,
                live_plain_inconsistency_pct: live.inconsistency_ratio() * 100.0,
                sim_plain_inconsistency_pct: sim.inconsistency_ratio() * 100.0,
                live_tcache_inconsistency_pct: tcache.inconsistency_ratio() * 100.0,
                live_dropped: live.channel.dropped,
                sim_dropped: sim.channel.dropped,
            }
        })
        .collect();

    // Wall-clock throughput of the live stack under real concurrency: the
    // same configuration, free-running. The result's execution window
    // covers only the threads actually driving the system (schedule
    // construction and monitor replay excluded), so the trajectory rows
    // track the stack rather than the harness.
    let concurrent = base
        .on_plane(ExecutionPlane::Live(LiveOptions::concurrent()))
        .run();
    LivePlaneFigure {
        rows,
        live_aggregate_plain_pct: live_plain.inconsistency_ratio() * 100.0,
        sim_aggregate_plain_pct: sim_plain.inconsistency_ratio() * 100.0,
        live_read_txns_per_wall_sec: concurrent
            .read_txns_per_wall_sec()
            .expect("live runs report an execution window"),
    }
}

/// The pipe capacities swept by the backpressure experiment, small enough
/// that the default slow-cache setup (200 ms delivery delay at ~500
/// invalidations/s, so ~100 messages in flight) overflows the tight ones.
pub const BACKPRESSURE_CAPACITIES: [usize; 4] = [4, 16, 64, 256];

/// The overflow policies compared by the backpressure experiment.
pub const BACKPRESSURE_POLICIES: [OverflowPolicy; 3] = [
    OverflowPolicy::DropOldest,
    OverflowPolicy::DropNewest,
    OverflowPolicy::Block,
];

/// One row of the backpressure experiment: one overflow policy at one pipe
/// capacity (`None` = the unbounded reference pipe).
#[derive(Debug, Clone, Serialize)]
pub struct BackpressureRow {
    /// In-flight pipe capacity (`None` for the unbounded baseline).
    pub capacity: Option<usize>,
    /// The overflow policy (`"block"`, `"drop-newest"`, `"drop-oldest"`).
    pub policy: String,
    /// Percentage of committed transactions that observed inconsistent
    /// data.
    pub inconsistency_pct: f64,
    /// Invalidations lost to pipe overflow.
    pub overflowed: u64,
    /// Sends that stalled behind a full `Block` pipe.
    pub stalled: u64,
    /// Invalidations delivered to the cache.
    pub delivered: u64,
}

/// The slow-cache backpressure experiment (an extension beyond the paper):
/// a single plain cache behind a congested invalidation pipe — 200 ms
/// delivery delay, no loss, so roughly a hundred messages are in flight at
/// the paper's update rate — swept over pipe capacities per overflow
/// policy. Undersized pipes shed or delay invalidations, and the
/// inconsistency the cache serves rises as the capacity shrinks; `Block`
/// never loses a message but stalls the publisher instead, which is the
/// backpressure trade-off the live reactor plane exposes.
pub fn backpressure(
    duration: SimDuration,
    seed: u64,
    capacities: &[usize],
    policies: &[OverflowPolicy],
) -> Vec<BackpressureRow> {
    let base = ExperimentConfig {
        duration,
        workload: WorkloadKind::PerfectClusters {
            objects: 1000,
            cluster_size: 5,
        },
        cache: CacheKind::Plain,
        caches: CacheTopology::Single,
        invalidation_loss: 0.0,
        invalidation_delay: SimDuration::from_millis(200),
        seed,
        ..ExperimentConfig::default()
    };
    let row = |capacity: Option<usize>, policy: OverflowPolicy| -> BackpressureRow {
        let result = ExperimentConfig {
            pipe_capacity: capacity,
            overflow_policy: policy,
            ..base.clone()
        }
        .run();
        BackpressureRow {
            capacity,
            policy: policy.to_string(),
            inconsistency_pct: result.inconsistency_ratio() * 100.0,
            overflowed: result.channel.overflowed,
            stalled: result.channel.stalled,
            delivered: result.channel.delivered,
        }
    };
    // An unbounded pipe never engages any policy, so the baseline is
    // simulated once and replicated as each policy's reference row.
    let baseline = row(None, OverflowPolicy::Block);
    let mut rows = Vec::new();
    for &policy in policies {
        rows.push(BackpressureRow {
            policy: policy.to_string(),
            ..baseline.clone()
        });
        for &capacity in capacities {
            rows.push(row(Some(capacity), policy));
        }
    }
    rows
}

/// One row of the fault-tolerance experiment: one partition length under
/// one recovery policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FaultToleranceRow {
    /// Length of the injected partition, in milliseconds.
    pub partition_ms: u64,
    /// The recovery policy (`"none"` or `"gap-resync(...)"`).
    pub recovery: String,
    /// Inconsistent commits the faulted cache served over the whole run.
    pub inconsistent: u64,
    /// Inconsistent commits in time bins starting at or after the heal —
    /// the figure's headline: bounded with gap-triggered resync, lingering
    /// without.
    pub post_heal_inconsistent: u64,
    /// Read-only transactions the faulted cache served in pass-through
    /// (degraded) mode.
    pub degraded_txns: u64,
    /// Inconsistent commits among the degraded-window transactions (must
    /// stay zero: pass-through reads come straight from the database).
    pub degraded_inconsistent: u64,
    /// Sequence-number gaps the faulted cache detected.
    pub gaps_detected: u64,
    /// Invalidations the gaps skipped over.
    pub invalidations_missed: u64,
    /// Recoveries served by replaying the database's invalidation log.
    pub log_replays: u64,
    /// Recoveries that dropped the store because the log was truncated.
    pub snapshot_resyncs: u64,
}

/// The fault-tolerance experiment (an extension beyond the paper): a plain
/// cache on a *reliable* zero-delay link is partitioned from the backend
/// for a window of each configured length, next to an unfaulted control
/// cache, under both recovery policies. Without recovery the cache returns
/// from the partition with a silently stale store and keeps committing
/// inconsistent transactions after the heal; with sequence-numbered streams
/// and gap-triggered resync it replays the database's invalidation log on
/// reconnect (or falls back to a snapshot resync once the log has been
/// truncated) and post-heal inconsistency returns to the healthy baseline.
/// Partitions longer than the configured staleness budget degrade the
/// cache to pass-through reads, which are served by the backend and never
/// classified inconsistent.
///
/// The partition always starts at t = 1 s; callers must keep
/// `1 s + partition_ms` inside `duration` so a post-heal window exists.
pub fn fault_tolerance(
    duration: SimDuration,
    seed: u64,
    partitions_ms: &[u64],
    staleness_budget: SimDuration,
) -> Vec<FaultToleranceRow> {
    let policies = [
        RecoveryPolicy::None,
        RecoveryPolicy::GapResync { staleness_budget },
    ];
    let mut rows = Vec::new();
    for &partition_ms in partitions_ms {
        let from = SimTime::from_secs(1);
        let to = from + SimDuration::from_millis(partition_ms);
        for policy in policies {
            let result = ExperimentConfig {
                duration,
                workload: WorkloadKind::PerfectClusters {
                    objects: 1000,
                    cluster_size: 5,
                },
                cache: CacheKind::Plain,
                caches: CacheTopology::PerCacheLoss(vec![0.0, 0.0]),
                invalidation_loss: 0.0,
                invalidation_delay: SimDuration::ZERO,
                faults: FaultPlan::new().partition(CacheId(0), from, to),
                recovery: policy,
                timeseries_bin: SimDuration::from_millis(500),
                seed,
                ..ExperimentConfig::default()
            }
            .run();
            let faulted = &result.per_cache[0];
            // Faults fire before the first transaction at or after their
            // instant, so every read in a bin starting at or after the
            // heal executed post-heal. (The control cache only ever adds
            // consistent commits to these bins.)
            let post_heal_inconsistent = result
                .timeseries
                .iter()
                .filter(|&(t, _)| t >= to)
                .map(|(_, bin)| bin.inconsistent)
                .sum();
            rows.push(FaultToleranceRow {
                partition_ms,
                recovery: policy.to_string(),
                inconsistent: faulted.report.committed_inconsistent,
                post_heal_inconsistent,
                degraded_txns: faulted.lifecycle.pass_through_txns,
                degraded_inconsistent: faulted.degraded.committed_inconsistent,
                gaps_detected: faulted.lifecycle.gaps_detected,
                invalidations_missed: faulted.lifecycle.invalidations_missed,
                log_replays: faulted.lifecycle.log_replays,
                snapshot_resyncs: faulted.lifecycle.snapshot_resyncs,
            });
        }
    }
    rows
}

/// Number of caches the scenario experiments deploy.
pub const SCENARIO_CACHES: usize = 4;

/// One scenario's aggregate row: traffic, verdicts and modeled tail
/// latency over the whole deployment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioRow {
    /// The scenario's catalog name.
    pub scenario: String,
    /// Read-only transactions executed.
    pub reads: u64,
    /// Update transactions executed (committed + aborted).
    pub updates: u64,
    /// Committed read-only transactions that observed inconsistent data
    /// (percent).
    pub inconsistency_pct: f64,
    /// Read-only transactions aborted by the cache strategy (percent).
    pub abort_pct: f64,
    /// Reads served while a cache was degraded to pass-through (percent).
    pub degraded_pct: f64,
    /// Median modeled client latency (µs).
    pub p50_us: u64,
    /// 99th-percentile modeled client latency (µs).
    pub p99_us: u64,
    /// 99.9th-percentile modeled client latency (µs).
    pub p999_us: u64,
    /// Invalidations dropped by the delivery tasks.
    pub dropped: u64,
}

/// One cache of one scenario: its share of the traffic, its verdicts and
/// its own latency tail.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioCacheRow {
    /// The scenario's catalog name.
    pub scenario: String,
    /// The cache server.
    pub cache: u32,
    /// Read-only transactions this cache served.
    pub reads: u64,
    /// Inconsistency among this cache's committed reads (percent).
    pub inconsistency_pct: f64,
    /// Median modeled client latency at this cache (µs).
    pub p50_us: u64,
    /// 99th-percentile modeled client latency at this cache (µs).
    pub p99_us: u64,
    /// 99.9th-percentile modeled client latency at this cache (µs).
    pub p999_us: u64,
}

/// The scenario-engine experiment: the five-scenario catalog measured on
/// the live lockstep plane, plus the two-tier topology comparison.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioFigure {
    /// One aggregate row per catalog scenario, in catalog order.
    pub rows: Vec<ScenarioRow>,
    /// Per-cache rows, grouped by scenario in catalog order.
    pub per_cache: Vec<ScenarioCacheRow>,
    /// Caches the database publishes to directly under the star topology.
    pub star_fanout: usize,
    /// Caches the database publishes to directly under the two-tier
    /// topology (its regional roots) — strictly lower than
    /// [`ScenarioFigure::star_fanout`] at equal deployment size.
    pub two_tier_fanout: usize,
    /// Aggregate inconsistency of the star-topology comparison run
    /// (percent).
    pub star_inconsistency_pct: f64,
    /// Aggregate inconsistency of the two-tier comparison run (percent).
    pub two_tier_inconsistency_pct: f64,
    /// Whether the two-tier run reproduced the star run's per-cache
    /// verdicts and drop counts exactly. With lossless regional parents
    /// each leaf sees the same invalidation sequence through its parent as
    /// it would directly, so the same seeded loss stream yields the same
    /// drops and verdicts — tree fan-out changes the publisher's work, not
    /// the leaves' consistency.
    pub two_tier_matches_star: bool,
}

/// The open-loop scenario engine (tentpole of the `scenarios` figure):
/// runs the five-scenario [`tcache_workload::catalog`] — hot-key storm,
/// flash crowd, diurnal curve, invalidation stampede, cache churn — on the
/// live lockstep plane over [`SCENARIO_CACHES`] caches, recording verdicts
/// and the deterministic modeled-latency histograms per cache and per
/// scenario. A second pair of runs compares the star invalidation topology
/// against a two-tier tree (two lossless regional parents relaying to four
/// leaves): the tree must cut the database's publisher fan-out while
/// leaving every leaf's verdicts untouched.
///
/// Everything here is deterministic: the same `(duration, seed)` returns
/// a bit-identical [`ScenarioFigure`], histogram quantiles included.
pub fn scenarios(duration: SimDuration, seed: u64) -> ScenarioFigure {
    use tcache_workload::LatencyHistogram;
    let specs = tcache_workload::catalog(duration, SCENARIO_CACHES as u32);
    let mut rows = Vec::with_capacity(specs.len());
    let mut per_cache = Vec::new();
    for spec in &specs {
        let result = ExperimentConfig {
            duration,
            caches: CacheTopology::Uniform(SCENARIO_CACHES),
            invalidation_delay: SimDuration::ZERO,
            scenario: Some(spec.clone()),
            seed,
            plane: ExecutionPlane::Live(LiveOptions::lockstep()),
            ..ExperimentConfig::default()
        }
        .run();
        let mut aggregate = LatencyHistogram::new();
        for column in &result.per_cache {
            aggregate.merge(&column.latency);
            per_cache.push(ScenarioCacheRow {
                scenario: spec.name().to_string(),
                cache: column.id.0,
                reads: column.report.read_only_total(),
                inconsistency_pct: column.inconsistency_ratio() * 100.0,
                p50_us: column.latency.p50().unwrap_or(0),
                p99_us: column.latency.p99().unwrap_or(0),
                p999_us: column.latency.p999().unwrap_or(0),
            });
        }
        let degraded: u64 = result
            .per_cache
            .iter()
            .map(|c| c.degraded.read_only_total())
            .sum();
        let reads = result.report.read_only_total();
        rows.push(ScenarioRow {
            scenario: spec.name().to_string(),
            reads,
            updates: result.report.updates_committed + result.report.updates_aborted,
            inconsistency_pct: result.inconsistency_ratio() * 100.0,
            abort_pct: result.abort_ratio() * 100.0,
            degraded_pct: if reads == 0 {
                0.0
            } else {
                degraded as f64 / reads as f64 * 100.0
            },
            p50_us: aggregate.p50().unwrap_or(0),
            p99_us: aggregate.p99().unwrap_or(0),
            p999_us: aggregate.p999().unwrap_or(0),
            dropped: result.channel.dropped,
        });
    }

    // Topology comparison: the storm scenario on six caches, star vs
    // two-tier. The parents (caches 0 and 1) keep lossless links so each
    // leaf's channel sees the identical message sequence either way;
    // only the leaves (2..6) drop, from their own seeded streams.
    let topology_losses = vec![0.0, 0.0, 0.2, 0.2, 0.2, 0.2];
    let base = ExperimentConfig {
        duration,
        caches: CacheTopology::PerCacheLoss(topology_losses),
        invalidation_delay: SimDuration::ZERO,
        scenario: Some(specs[0].clone()),
        seed,
        plane: ExecutionPlane::Live(LiveOptions::lockstep()),
        ..ExperimentConfig::default()
    };
    let star = base.clone().run();
    let parents = tcache::two_tier_parents(2, 2);
    let two_tier = ExperimentConfig {
        cache_parents: Some(parents.clone()),
        ..base
    }
    .run();
    let two_tier_matches_star = star
        .per_cache
        .iter()
        .zip(&two_tier.per_cache)
        .all(|(a, b)| a.report == b.report && a.channel.dropped == b.channel.dropped);

    ScenarioFigure {
        rows,
        per_cache,
        star_fanout: parents.len(),
        two_tier_fanout: parents.iter().filter(|p| p.is_none()).count(),
        star_inconsistency_pct: star.inconsistency_ratio() * 100.0,
        two_tier_inconsistency_pct: two_tier.inconsistency_ratio() * 100.0,
        two_tier_matches_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: SimDuration = SimDuration(3_000_000); // 3 s

    #[test]
    fn fault_tolerance_recovery_bounds_post_heal_inconsistency() {
        // 500 ms partition: the missed window fits the database's
        // invalidation log, so recovery replays it. 4 s partition: at
        // ~500 invalidations/s the log (capacity 1024) has been truncated
        // by heal time, forcing a snapshot resync.
        let rows = fault_tolerance(
            SimDuration::from_secs(8),
            7,
            &[500, 4000],
            SimDuration::from_millis(100),
        );
        assert_eq!(rows.len(), 4);
        let row = |ms: u64, resync: bool| {
            rows.iter()
                .find(|r| r.partition_ms == ms && (r.recovery != "no-recovery") == resync)
                .unwrap()
        };
        // Without recovery the cache comes back silently stale: post-heal
        // inconsistency lingers, and it grows with the partition length.
        let none_short = row(500, false);
        let none_long = row(4000, false);
        assert!(
            none_short.post_heal_inconsistent > 0,
            "without recovery the healed cache must keep serving stale data: {none_short:?}"
        );
        assert!(
            none_long.inconsistent > none_short.inconsistent,
            "inconsistency must grow with the partition length ({} vs {})",
            none_long.inconsistent,
            none_short.inconsistent
        );
        // The gap is *detected* (sequence numbers make it visible) but not
        // repaired under the no-recovery policy.
        assert!(none_short.gaps_detected > 0);
        assert!(none_short.invalidations_missed > 0);
        assert_eq!(none_short.log_replays, 0);
        assert_eq!(none_short.snapshot_resyncs, 0);
        assert_eq!(none_short.degraded_txns, 0, "no budget, never degrades");

        // With gap-triggered resync, post-heal inconsistency returns to
        // the healthy (zero-loss, zero-delay) baseline: zero.
        let resync_short = row(500, true);
        let resync_long = row(4000, true);
        for r in [resync_short, resync_long] {
            assert_eq!(
                r.post_heal_inconsistent, 0,
                "resync must restore the healthy baseline after the heal: {r:?}"
            );
            assert!(
                r.degraded_txns > 0,
                "a partition far past the 100 ms budget must degrade reads: {r:?}"
            );
            assert_eq!(
                r.degraded_inconsistent, 0,
                "degraded-window reads come from the backend and are never violations: {r:?}"
            );
        }
        // Short partition: the log still holds the missed window — replay.
        assert!(resync_short.log_replays >= 1, "{resync_short:?}");
        assert_eq!(resync_short.snapshot_resyncs, 0, "{resync_short:?}");
        // Long partition: the log was truncated — snapshot resync.
        assert!(resync_long.snapshot_resyncs >= 1, "{resync_long:?}");

        // The whole sweep is a pure function of the seed.
        let again = fault_tolerance(
            SimDuration::from_secs(8),
            7,
            &[500, 4000],
            SimDuration::from_millis(100),
        );
        assert_eq!(rows, again);
    }

    #[test]
    fn fig3_detection_improves_with_clustering() {
        // The α sweep uses the paper's 2000-object space, so it needs a
        // slightly longer run than the other quick tests before enough
        // stale entries accumulate to measure detection.
        let rows = fig3(SimDuration::from_secs(10), 7);
        assert_eq!(rows.len(), FIG3_ALPHAS.len());
        let lowest = rows.first().unwrap();
        let highest = rows.last().unwrap();
        assert!(
            highest.detected_pct > lowest.detected_pct + 20.0,
            "detection at α=4 ({:.1}%) must clearly exceed detection at α=1/32 ({:.1}%)",
            highest.detected_pct,
            lowest.detected_pct
        );
        assert!(highest.detected_pct > 60.0);
    }

    #[test]
    fn fig4_inconsistency_drops_after_clustering_starts() {
        let switch = SimTime::from_secs(6);
        let points = fig4(SimDuration::from_secs(12), switch, 7);
        assert!(points.len() >= 5);
        let before: f64 = points
            .iter()
            .filter(|p| p.time_secs < 6.0)
            .map(|p| p.inconsistent_rate)
            .sum::<f64>();
        let after: f64 = points
            .iter()
            .filter(|p| p.time_secs >= 8.0)
            .map(|p| p.inconsistent_rate)
            .sum::<f64>();
        let aborts_after: f64 = points
            .iter()
            .filter(|p| p.time_secs >= 8.0)
            .map(|p| p.aborted_rate)
            .sum::<f64>();
        assert!(
            after < before,
            "inconsistent commits must drop once accesses become clustered (before {before}, after {after})"
        );
        assert!(aborts_after > 0.0, "aborts appear once detection starts working");
    }

    #[test]
    fn fig6_evict_and_retry_reduce_undetected_inconsistency() {
        let rows = fig6(QUICK, 7);
        assert_eq!(rows.len(), 3);
        let abort = rows.iter().find(|r| r.strategy == Strategy::Abort).unwrap();
        let evict = rows.iter().find(|r| r.strategy == Strategy::Evict).unwrap();
        let retry = rows.iter().find(|r| r.strategy == Strategy::Retry).unwrap();
        assert!(evict.inconsistent_pct <= abort.inconsistent_pct + 1.0);
        assert!(retry.inconsistent_pct <= abort.inconsistent_pct + 1.0);
        // RETRY converts aborts into successful read-throughs.
        assert!(retry.aborted_pct < abort.aborted_pct + evict.aborted_pct);
        for r in &rows {
            let total = r.consistent_pct + r.inconsistent_pct + r.aborted_pct;
            assert!((total - 100.0).abs() < 1.0, "percentages sum to ~100, got {total}");
        }
    }

    #[test]
    fn fig7c_inconsistency_decreases_with_dependency_bound() {
        let rows = fig7c(QUICK, 7);
        assert_eq!(rows.len(), 12);
        for kind in [GraphKind::RetailAffinity, GraphKind::SocialNetwork] {
            let series: Vec<&RealisticRow> =
                rows.iter().filter(|r| r.workload == kind).collect();
            let at0 = series.iter().find(|r| r.dependency_bound == Some(0)).unwrap();
            let at3 = series.iter().find(|r| r.dependency_bound == Some(3)).unwrap();
            assert!(
                at3.inconsistency_pct < at0.inconsistency_pct,
                "{kind}: dependency lists must reduce inconsistency ({} vs {})",
                at3.inconsistency_pct,
                at0.inconsistency_pct
            );
            // Hit ratio is essentially unaffected by T-Cache.
            assert!((at3.hit_ratio - at0.hit_ratio).abs() < 0.1);
        }
    }

    #[test]
    fn fig7d_short_ttls_cost_hit_ratio() {
        let rows = fig7d(QUICK, 7, &[1000, 1]);
        assert_eq!(rows.len(), 4);
        for kind in [GraphKind::RetailAffinity, GraphKind::SocialNetwork] {
            let series: Vec<&RealisticRow> =
                rows.iter().filter(|r| r.workload == kind).collect();
            let long = series.iter().find(|r| r.ttl_secs == Some(1000)).unwrap();
            let short = series.iter().find(|r| r.ttl_secs == Some(1)).unwrap();
            assert!(short.hit_ratio < long.hit_ratio);
            assert!(short.db_reads_per_sec > long.db_reads_per_sec);
        }
    }

    #[test]
    fn fig8_and_headline_have_the_expected_shape() {
        let rows = fig8(QUICK, 7);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.workload.is_some());
            let total = r.consistent_pct + r.inconsistent_pct + r.aborted_pct;
            assert!((total - 100.0).abs() < 1.0);
        }
        let headline_rows = headline(QUICK, 7);
        assert_eq!(headline_rows.len(), 2);
        for h in &headline_rows {
            assert!(
                h.tcache_inconsistency_pct <= h.baseline_inconsistency_pct,
                "T-Cache must not increase inconsistency"
            );
            assert!(h.detected_pct > 0.0);
        }
    }

    #[test]
    fn multi_cache_inconsistency_tracks_per_cache_loss() {
        let figure = multi_cache(SimDuration::from_secs(6), 7, &MULTI_CACHE_LOSSES);
        assert_eq!(figure.rows.len(), 4);
        let reliable = &figure.rows[0];
        let lossiest = figure.rows.last().unwrap();
        assert_eq!(reliable.loss, 0.0);
        assert_eq!(lossiest.loss, 0.4);
        // Within one deployment, the cache behind the lossiest link commits
        // the most inconsistent transactions on the plain cache…
        assert!(
            lossiest.plain_inconsistency_pct > reliable.plain_inconsistency_pct,
            "lossiest {} vs reliable {}",
            lossiest.plain_inconsistency_pct,
            reliable.plain_inconsistency_pct
        );
        // …and T-Cache reduces it on every cache (small-sample tolerance).
        for row in &figure.rows {
            assert!(
                row.tcache_inconsistency_pct <= row.plain_inconsistency_pct + 0.5,
                "cache {}: tcache {} plain {}",
                row.cache,
                row.tcache_inconsistency_pct,
                row.plain_inconsistency_pct
            );
            assert!(row.tcache_hit_ratio > 0.5);
        }
        // T-Cache detects on the lossy caches, so aborts appear there.
        assert!(lossiest.tcache_aborted_pct > 0.0);
        // The aggregate sits between the best and worst cache.
        assert!(
            figure.plain_aggregate_inconsistency_pct >= reliable.plain_inconsistency_pct
                && figure.plain_aggregate_inconsistency_pct <= lossiest.plain_inconsistency_pct
        );
        assert!(
            figure.tcache_aggregate_inconsistency_pct
                <= figure.plain_aggregate_inconsistency_pct
        );
    }

    #[test]
    fn backpressure_inconsistency_grows_as_the_pipe_shrinks() {
        let rows = backpressure(
            SimDuration::from_secs(5),
            7,
            &[4, 256],
            &[OverflowPolicy::DropOldest, OverflowPolicy::Block],
        );
        assert_eq!(rows.len(), 6, "baseline + two capacities per policy");
        let find = |policy: &str, capacity: Option<usize>| {
            rows.iter()
                .find(|r| r.policy == policy && r.capacity == capacity)
                .unwrap()
        };
        let drop_base = find("drop-oldest", None);
        let drop_tight = find("drop-oldest", Some(4));
        // A four-slot pipe behind ~100 in-flight messages sheds most of the
        // stream and the cache turns measurably more inconsistent.
        assert!(drop_tight.overflowed > 0);
        assert_eq!(drop_base.overflowed, 0);
        assert!(
            drop_tight.inconsistency_pct > drop_base.inconsistency_pct,
            "shedding invalidations must raise inconsistency ({} vs {})",
            drop_tight.inconsistency_pct,
            drop_base.inconsistency_pct
        );
        // Block never loses a message — it stalls the publisher instead.
        let block_tight = find("block", Some(4));
        assert_eq!(block_tight.overflowed, 0);
        assert!(block_tight.stalled > 0);
        assert!(block_tight.delivered > drop_tight.delivered);
    }

    #[test]
    fn scenarios_run_the_catalog_and_cut_publisher_fanout() {
        let figure = scenarios(QUICK, 11);
        let names: Vec<&str> = figure.rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "hot_key_storm",
                "flash_crowd",
                "diurnal",
                "stampede",
                "cache_churn"
            ]
        );
        assert_eq!(figure.per_cache.len(), names.len() * SCENARIO_CACHES);
        for row in &figure.rows {
            assert!(row.reads > 0, "{} runs traffic", row.scenario);
            assert!(row.updates > 0, "{} commits updates", row.scenario);
            assert!(row.dropped > 0, "{} loses invalidations", row.scenario);
            assert!(
                row.p50_us > 0 && row.p50_us <= row.p99_us && row.p99_us <= row.p999_us,
                "latency quantiles are ordered: {row:?}"
            );
        }
        // The flash crowd triples the offered rate for a third of the run.
        let diurnal = figure.rows.iter().find(|r| r.scenario == "diurnal").unwrap();
        let crowd = figure
            .rows
            .iter()
            .find(|r| r.scenario == "flash_crowd")
            .unwrap();
        assert!(
            crowd.reads as f64 > diurnal.reads as f64 * 1.2,
            "flash crowd offers more reads ({} vs {})",
            crowd.reads,
            diurnal.reads
        );
        // The two-tier tree publishes to its regional roots only, without
        // changing any leaf's verdicts.
        assert!(figure.two_tier_fanout < figure.star_fanout);
        assert_eq!(figure.two_tier_fanout, 2);
        assert!(figure.two_tier_matches_star);
        // Bit-identical replay: same seed, same figure — histogram
        // quantiles, verdicts and fan-out numbers included.
        assert_eq!(figure, scenarios(QUICK, 11));
    }

    #[test]
    fn live_plane_reproduces_the_loss_trend_and_matches_the_simulator() {
        let figure = live_plane(SimDuration::from_secs(4), 7, &LIVE_PLANE_LOSSES);
        assert_eq!(figure.rows.len(), 4);
        let reliable = &figure.rows[0];
        let lossiest = figure.rows.last().unwrap();
        // The rising plain-cache inconsistency-vs-loss trend, measured on
        // the live reactor stack.
        assert!(
            lossiest.live_plain_inconsistency_pct > reliable.live_plain_inconsistency_pct,
            "live plain inconsistency must rise with loss ({} vs {})",
            lossiest.live_plain_inconsistency_pct,
            reliable.live_plain_inconsistency_pct
        );
        assert!(lossiest.live_plain_inconsistency_pct > 1.0);
        for row in &figure.rows {
            // At zero delivery delay the lockstep live plane and the
            // discrete-event plane share loss streams and schedule, so the
            // comparison rows agree exactly.
            assert_eq!(
                row.live_plain_inconsistency_pct, row.sim_plain_inconsistency_pct,
                "cache {}: cross-plane inconsistency must match exactly",
                row.cache
            );
            assert_eq!(row.live_dropped, row.sim_dropped, "cache {}", row.cache);
            // T-Cache on the live stack removes (almost) all of it: a
            // small absolute bound, not merely "no worse than plain" —
            // a live plane that stopped delivering dependency metadata
            // would fail here even though plain-relative checks pass.
            assert!(
                row.live_tcache_inconsistency_pct < 1.0,
                "cache {}: live tcache inconsistency must be near zero, got {} (plain {})",
                row.cache,
                row.live_tcache_inconsistency_pct,
                row.live_plain_inconsistency_pct
            );
        }
        assert_eq!(
            figure.live_aggregate_plain_pct,
            figure.sim_aggregate_plain_pct
        );
        assert!(figure.live_read_txns_per_wall_sec > 0.0);
    }

    #[test]
    fn drop_sweep_inconsistency_grows_with_loss() {
        let rows = drop_sweep(QUICK, 7, &[0.0, 0.4]);
        assert_eq!(rows.len(), 2);
        // Even with no loss the 50 ms delivery delay produces a trickle of
        // inconsistency, but heavy loss must make it clearly worse.
        assert!(rows[1].plain_inconsistency_pct > rows[0].plain_inconsistency_pct);
        assert!(rows[1].tcache_inconsistency_pct <= rows[1].plain_inconsistency_pct);
    }
}
