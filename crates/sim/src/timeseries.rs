//! Binned time series of transaction outcomes (Figures 4 and 5).

use serde::{Deserialize, Serialize};
use tcache_monitor::TransactionClass;
use tcache_types::{SimDuration, SimTime};

/// One time bin of read-only transaction outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBin {
    /// Committed transactions whose reads were consistent.
    pub consistent: u64,
    /// Committed transactions that observed inconsistent data.
    pub inconsistent: u64,
    /// Aborted transactions.
    pub aborted: u64,
}

impl TimeBin {
    /// Total transactions in the bin.
    pub fn total(&self) -> u64 {
        self.consistent + self.inconsistent + self.aborted
    }

    /// Fraction of the bin's committed transactions that were inconsistent.
    pub fn inconsistency_ratio(&self) -> f64 {
        let committed = self.consistent + self.inconsistent;
        if committed == 0 {
            0.0
        } else {
            self.inconsistent as f64 / committed as f64
        }
    }
}

/// A sequence of equally sized time bins accumulating transaction classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width: SimDuration,
    bins: Vec<TimeBin>,
}

impl TimeSeries {
    /// Creates a time series with the given bin width.
    ///
    /// # Panics
    /// Panics if the bin width is zero.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(bin_width > SimDuration::ZERO, "bin width must be positive");
        TimeSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Records one classified transaction completed at `at`.
    pub fn record(&mut self, at: SimTime, class: TransactionClass) {
        let index = (at.as_micros() / self.bin_width.as_micros()) as usize;
        if index >= self.bins.len() {
            self.bins.resize(index + 1, TimeBin::default());
        }
        let bin = &mut self.bins[index];
        match class {
            TransactionClass::CommittedConsistent => bin.consistent += 1,
            TransactionClass::CommittedInconsistent => bin.inconsistent += 1,
            TransactionClass::AbortedJustified | TransactionClass::AbortedUnnecessary => {
                bin.aborted += 1
            }
        }
    }

    /// The bins recorded so far (bin `i` covers
    /// `[i * bin_width, (i+1) * bin_width)`).
    pub fn bins(&self) -> &[TimeBin] {
        &self.bins
    }

    /// Iterates over `(bin start time, bin)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &TimeBin)> {
        self.bins.iter().enumerate().map(move |(i, bin)| {
            (
                SimTime::from_micros(i as u64 * self.bin_width.as_micros()),
                bin,
            )
        })
    }

    /// Transaction rates (per second) per bin as `(time, consistent,
    /// inconsistent, aborted)` — the series plotted in Figure 4.
    pub fn rates_per_second(&self) -> Vec<(f64, f64, f64, f64)> {
        let width = self.bin_width.as_secs_f64();
        self.iter()
            .map(|(t, bin)| {
                (
                    t.as_secs_f64(),
                    bin.consistent as f64 / width,
                    bin.inconsistent as f64 / width,
                    bin.aborted as f64 / width,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fall_into_the_right_bins() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(10));
        assert_eq!(ts.bin_width(), SimDuration::from_secs(10));
        ts.record(SimTime::from_secs(1), TransactionClass::CommittedConsistent);
        ts.record(SimTime::from_secs(9), TransactionClass::CommittedInconsistent);
        ts.record(SimTime::from_secs(10), TransactionClass::AbortedJustified);
        ts.record(SimTime::from_secs(25), TransactionClass::AbortedUnnecessary);
        let bins = ts.bins();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].consistent, 1);
        assert_eq!(bins[0].inconsistent, 1);
        assert_eq!(bins[0].aborted, 0);
        assert_eq!(bins[1].aborted, 1);
        assert_eq!(bins[2].aborted, 1);
        assert_eq!(bins[0].total(), 2);
        assert!((bins[0].inconsistency_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(bins[2].inconsistency_ratio(), 0.0);
    }

    #[test]
    fn rates_are_normalised_by_bin_width() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(2));
        for _ in 0..10 {
            ts.record(SimTime::from_secs(1), TransactionClass::CommittedConsistent);
        }
        let rates = ts.rates_per_second();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, 0.0);
        assert!((rates[0].1 - 5.0).abs() < 1e-9);
        let collected: Vec<_> = ts.iter().collect();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_width_panics() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
