//! Experiment results and derived metrics.

use crate::timeseries::TimeSeries;
use tcache_cache::CacheStatsSnapshot;
use tcache_db::stats::DbStatsSnapshot;
use tcache_monitor::MonitorReport;
use tcache_net::channel::ChannelStats;
use tcache_types::SimDuration;

/// Everything measured during one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Simulated duration of the run.
    pub duration: SimDuration,
    /// The consistency monitor's classification counts.
    pub report: MonitorReport,
    /// Cache-side statistics (hit ratio, aborts, retries, …).
    pub cache: CacheStatsSnapshot,
    /// Database-side statistics (reads served, updates committed, …).
    pub db: DbStatsSnapshot,
    /// Invalidation channel statistics (sent / dropped / delivered).
    pub channel: ChannelStats,
    /// Per-bin outcome time series (used by Figures 4 and 5).
    pub timeseries: TimeSeries,
}

impl ExperimentResult {
    /// The headline metric: the fraction of committed read-only transactions
    /// that observed inconsistent data.
    pub fn inconsistency_ratio(&self) -> f64 {
        self.report.inconsistency_ratio()
    }

    /// The cache hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Read load the cache placed on the database, in reads per simulated
    /// second (cache misses plus RETRY read-throughs).
    pub fn db_reads_per_second(&self) -> f64 {
        if self.duration == SimDuration::ZERO {
            0.0
        } else {
            self.cache.db_reads() as f64 / self.duration.as_secs_f64()
        }
    }

    /// Read-only transaction throughput in transactions per second.
    pub fn read_txn_rate(&self) -> f64 {
        if self.duration == SimDuration::ZERO {
            0.0
        } else {
            self.report.read_only_total() as f64 / self.duration.as_secs_f64()
        }
    }

    /// Fraction of all read-only transactions that committed with
    /// consistent data.
    pub fn consistent_commit_ratio(&self) -> f64 {
        self.report.consistent_commit_ratio()
    }

    /// Fraction of all read-only transactions that were aborted.
    pub fn abort_ratio(&self) -> f64 {
        self.report.abort_ratio()
    }

    /// Fraction of potential inconsistencies that the cache detected
    /// (Figure 3's y-axis).
    pub fn detection_ratio(&self) -> f64 {
        self.report.detection_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::SimDuration;

    fn sample() -> ExperimentResult {
        let report = MonitorReport {
            committed_consistent: 800,
            committed_inconsistent: 100,
            aborted_justified: 80,
            aborted_unnecessary: 20,
            ..MonitorReport::default()
        };
        let cache = CacheStatsSnapshot {
            reads: 5000,
            hits: 4500,
            misses: 500,
            retries: 10,
            ..CacheStatsSnapshot::default()
        };
        ExperimentResult {
            duration: SimDuration::from_secs(10),
            report,
            cache,
            db: DbStatsSnapshot::default(),
            channel: ChannelStats::default(),
            timeseries: TimeSeries::new(SimDuration::from_secs(1)),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert!((r.inconsistency_ratio() - 100.0 / 900.0).abs() < 1e-9);
        assert!((r.hit_ratio() - 0.9).abs() < 1e-9);
        assert!((r.db_reads_per_second() - 51.0).abs() < 1e-9);
        assert!((r.read_txn_rate() - 100.0).abs() < 1e-9);
        assert!((r.consistent_commit_ratio() - 0.8).abs() < 1e-9);
        assert!((r.abort_ratio() - 0.1).abs() < 1e-9);
        assert!((r.detection_ratio() - 100.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_handled() {
        let mut r = sample();
        r.duration = SimDuration::ZERO;
        assert_eq!(r.db_reads_per_second(), 0.0);
        assert_eq!(r.read_txn_rate(), 0.0);
    }
}
