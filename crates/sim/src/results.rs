//! Experiment results and derived metrics.

use crate::timeseries::TimeSeries;
use tcache_cache::{CacheStatsSnapshot, LifecycleStatsSnapshot};
use tcache_db::stats::DbStatsSnapshot;
use tcache_monitor::MonitorReport;
use tcache_net::channel::ChannelStats;
use tcache_types::{CacheId, SimDuration};
use tcache_workload::LatencyHistogram;

/// Everything measured for one cache server of a (possibly multi-cache)
/// experiment run.
#[derive(Debug, Clone)]
pub struct CacheColumnResult {
    /// The cache server.
    pub id: CacheId,
    /// The configured loss rate of this cache's invalidation channel.
    pub loss: f64,
    /// The monitor's classification of the transactions this cache served.
    /// (Update counters are global and stay zero here.)
    pub report: MonitorReport,
    /// The subset of [`CacheColumnResult::report`] served while the cache
    /// was degraded to pass-through reads (empty unless a fault plan drove
    /// the cache past its staleness budget).
    pub degraded: MonitorReport,
    /// This cache's statistics.
    pub cache: CacheStatsSnapshot,
    /// This cache's channel statistics.
    pub channel: ChannelStats,
    /// Fault/recovery lifecycle counters: stream gaps detected, log
    /// replays, snapshot resyncs, crash/partition events observed.
    pub lifecycle: LifecycleStatsSnapshot,
    /// Modeled client-latency histogram of the reads this cache served.
    /// Empty unless the run was driven by a scenario
    /// ([`crate::ExperimentConfig::scenario`]), whose deterministic
    /// latency model fills it identically on both planes.
    pub latency: LatencyHistogram,
}

impl CacheColumnResult {
    /// The cache's inconsistency ratio (fraction of its committed read-only
    /// transactions that observed inconsistent data).
    pub fn inconsistency_ratio(&self) -> f64 {
        self.report.inconsistency_ratio()
    }

    /// The cache's hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Fraction of this cache's read-only transactions that were aborted.
    pub fn abort_ratio(&self) -> f64 {
        self.report.abort_ratio()
    }
}

/// Everything measured during one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Simulated duration of the run.
    pub duration: SimDuration,
    /// The consistency monitor's classification counts over all caches.
    pub report: MonitorReport,
    /// Cache-side statistics summed over all deployed caches.
    pub cache: CacheStatsSnapshot,
    /// Database-side statistics (reads served, updates committed, …).
    pub db: DbStatsSnapshot,
    /// Invalidation channel statistics summed over all per-cache channels.
    pub channel: ChannelStats,
    /// Per-cache measurements, indexed by `CacheId` (one entry per deployed
    /// cache; a single-cache run has exactly one).
    pub per_cache: Vec<CacheColumnResult>,
    /// Per-bin outcome time series (used by Figures 4 and 5).
    pub timeseries: TimeSeries,
    /// Wall-clock time the live plane spent *executing* the schedule
    /// (client threads + driver + reactor, excluding schedule
    /// construction, system build and monitor replay). `None` on the
    /// discrete-event plane, whose wall time measures the simulator, not
    /// the system.
    pub execution_wall: Option<std::time::Duration>,
}

impl ExperimentResult {
    /// The headline metric: the fraction of committed read-only transactions
    /// that observed inconsistent data.
    pub fn inconsistency_ratio(&self) -> f64 {
        self.report.inconsistency_ratio()
    }

    /// The cache hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Read load the cache placed on the database, in reads per simulated
    /// second (cache misses plus RETRY read-throughs).
    pub fn db_reads_per_second(&self) -> f64 {
        if self.duration == SimDuration::ZERO {
            0.0
        } else {
            self.cache.db_reads() as f64 / self.duration.as_secs_f64()
        }
    }

    /// Read-only transaction throughput in transactions per second.
    pub fn read_txn_rate(&self) -> f64 {
        if self.duration == SimDuration::ZERO {
            0.0
        } else {
            self.report.read_only_total() as f64 / self.duration.as_secs_f64()
        }
    }

    /// Fraction of all read-only transactions that committed with
    /// consistent data.
    pub fn consistent_commit_ratio(&self) -> f64 {
        self.report.consistent_commit_ratio()
    }

    /// Fraction of all read-only transactions that were aborted.
    pub fn abort_ratio(&self) -> f64 {
        self.report.abort_ratio()
    }

    /// Fraction of potential inconsistencies that the cache detected
    /// (Figure 3's y-axis).
    pub fn detection_ratio(&self) -> f64 {
        self.report.detection_ratio()
    }

    /// Number of caches the run deployed.
    pub fn cache_count(&self) -> usize {
        self.per_cache.len()
    }

    /// The per-cache measurements for one cache server.
    pub fn cache_result(&self, id: CacheId) -> Option<&CacheColumnResult> {
        self.per_cache.iter().find(|c| c.id == id)
    }

    /// `(CacheId, inconsistency ratio)` for every deployed cache — the
    /// per-cache view of the headline metric.
    pub fn per_cache_inconsistency_ratios(&self) -> Vec<(CacheId, f64)> {
        self.per_cache
            .iter()
            .map(|c| (c.id, c.inconsistency_ratio()))
            .collect()
    }

    /// Read-only transactions per wall-clock second of live execution
    /// (`None` on the discrete-event plane, or if nothing ran).
    pub fn read_txns_per_wall_sec(&self) -> Option<f64> {
        let wall = self.execution_wall?.as_secs_f64();
        (wall > 0.0).then(|| self.report.read_only_total() as f64 / wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::SimDuration;

    fn sample() -> ExperimentResult {
        let report = MonitorReport {
            committed_consistent: 800,
            committed_inconsistent: 100,
            aborted_justified: 80,
            aborted_unnecessary: 20,
            ..MonitorReport::default()
        };
        let cache = CacheStatsSnapshot {
            reads: 5000,
            hits: 4500,
            misses: 500,
            retries: 10,
            ..CacheStatsSnapshot::default()
        };
        ExperimentResult {
            duration: SimDuration::from_secs(10),
            report,
            cache,
            db: DbStatsSnapshot::default(),
            channel: ChannelStats::default(),
            per_cache: vec![CacheColumnResult {
                id: CacheId(0),
                loss: 0.2,
                report,
                degraded: MonitorReport::default(),
                cache,
                channel: ChannelStats::default(),
                lifecycle: LifecycleStatsSnapshot::default(),
                latency: LatencyHistogram::new(),
            }],
            timeseries: TimeSeries::new(SimDuration::from_secs(1)),
            execution_wall: Some(std::time::Duration::from_secs(2)),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert!((r.inconsistency_ratio() - 100.0 / 900.0).abs() < 1e-9);
        assert!((r.hit_ratio() - 0.9).abs() < 1e-9);
        assert!((r.db_reads_per_second() - 51.0).abs() < 1e-9);
        assert!((r.read_txn_rate() - 100.0).abs() < 1e-9);
        assert!((r.consistent_commit_ratio() - 0.8).abs() < 1e-9);
        assert!((r.abort_ratio() - 0.1).abs() < 1e-9);
        assert!((r.detection_ratio() - 100.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn per_cache_accessors() {
        let r = sample();
        assert_eq!(r.cache_count(), 1);
        let column = r.cache_result(CacheId(0)).unwrap();
        assert!((column.inconsistency_ratio() - r.inconsistency_ratio()).abs() < 1e-9);
        assert!((column.hit_ratio() - 0.9).abs() < 1e-9);
        assert!((column.abort_ratio() - 0.1).abs() < 1e-9);
        assert_eq!(column.loss, 0.2);
        assert!(r.cache_result(CacheId(3)).is_none());
        let ratios = r.per_cache_inconsistency_ratios();
        assert_eq!(ratios.len(), 1);
        assert_eq!(ratios[0].0, CacheId(0));
    }

    #[test]
    fn wall_clock_throughput_is_derived_from_execution_time() {
        let r = sample();
        // 1000 read-only txns over 2 s of live execution.
        assert!((r.read_txns_per_wall_sec().unwrap() - 500.0).abs() < 1e-9);
        let mut r = sample();
        r.execution_wall = None;
        assert!(r.read_txns_per_wall_sec().is_none());
    }

    #[test]
    fn zero_duration_is_handled() {
        let mut r = sample();
        r.duration = SimDuration::ZERO;
        assert_eq!(r.db_reads_per_second(), 0.0);
        assert_eq!(r.read_txn_rate(), 0.0);
    }
}
