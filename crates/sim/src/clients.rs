//! Client arrival processes.
//!
//! The paper's prototype drives the database with update clients at 100
//! transactions per second and the cache with read-only clients at 500
//! transactions per second (§IV). The harness models each client class as a
//! Poisson arrival process with the configured aggregate rate, which matches
//! a large population of independent clients.

use rand::RngCore;
use rand_distr::{Distribution, Exp};
use tcache_types::{SimDuration, SimTime};

/// A Poisson arrival process with a fixed aggregate rate.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalProcess {
    rate_per_sec: f64,
}

impl ArrivalProcess {
    /// Creates an arrival process issuing `rate_per_sec` transactions per
    /// second on average.
    ///
    /// # Panics
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive"
        );
        ArrivalProcess { rate_per_sec }
    }

    /// The configured rate.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Samples the next arrival strictly after `now`.
    pub fn next_arrival(&self, now: SimTime, rng: &mut dyn RngCore) -> SimTime {
        let exp = Exp::new(self.rate_per_sec).expect("positive rate");
        let gap_secs: f64 = exp.sample(&mut WrappedRng(rng));
        // Never schedule two arrivals at the exact same microsecond so the
        // event queue ordering stays meaningful.
        let gap = SimDuration::from_secs_f64(gap_secs).max(SimDuration::from_micros(1));
        now + gap
    }

    /// Expected number of arrivals over a duration.
    pub fn expected_arrivals(&self, duration: SimDuration) -> f64 {
        self.rate_per_sec * duration.as_secs_f64()
    }
}

/// Adapter letting `rand_distr` sample from a `&mut dyn RngCore`.
struct WrappedRng<'a>(&'a mut dyn RngCore);

impl rand::RngCore for WrappedRng<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_advance_time_monotonically() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ArrivalProcess::new(500.0);
        assert_eq!(p.rate_per_sec(), 500.0);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let next = p.next_arrival(now, &mut rng);
            assert!(next > now);
            now = next;
        }
    }

    #[test]
    fn long_run_rate_matches_the_configuration() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess::new(100.0);
        let mut now = SimTime::ZERO;
        let n = 50_000;
        for _ in 0..n {
            now = p.next_arrival(now, &mut rng);
        }
        let observed = n as f64 / now.as_secs_f64();
        assert!(
            (observed - 100.0).abs() < 3.0,
            "observed rate {observed} txn/s"
        );
        assert!((p.expected_arrivals(SimDuration::from_secs(10)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ArrivalProcess::new(0.0);
    }
}
