//! The discrete-event experiment harness.
//!
//! This crate wires together the backend database, the unreliable
//! invalidation channels, the edge caches, the consistency monitor and a
//! workload generator into the setup of §IV (Figure 2), generalized from
//! one cache to a [`experiment::CacheTopology`] of N caches: update clients
//! drive the database at a fixed rate, each cache's read-only client
//! population drives its cache, the database fans invalidations out over
//! each cache's own (independently seeded, possibly heterogeneously lossy)
//! channel, and the monitor classifies every completed read-only
//! transaction both globally and per cache.
//!
//! [`experiment::ExperimentConfig::run`] runs one configuration to
//! completion and returns an [`results::ExperimentResult`]; [`figures`]
//! contains one driver per figure of the paper's evaluation, each of which
//! returns the rows / series that the corresponding figure plots.
//!
//! Execution is split from specification: [`schedule::Schedule`] turns a
//! configuration into a deterministic transaction script, and the
//! configured [`plane::ExecutionPlane`] decides what executes it — the
//! discrete-event simulator (the default) or the *live* plane, which
//! drives a real `TCacheSystem` (reactor transport, modeled delivery) with
//! one client thread per cache. The same config runs unchanged on either.
//!
//! # Example
//!
//! ```
//! use tcache_sim::experiment::{CacheKind, ExperimentConfig, WorkloadKind};
//! use tcache_types::{SimDuration, Strategy};
//!
//! let config = ExperimentConfig {
//!     duration: SimDuration::from_secs(5),
//!     workload: WorkloadKind::PerfectClusters { objects: 500, cluster_size: 5 },
//!     cache: CacheKind::TCache { dependency_bound: 3, strategy: Strategy::Abort },
//!     ..ExperimentConfig::default()
//! };
//! let result = config.run();
//! assert!(result.report.read_only_total() > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bridge;
pub mod clients;
pub mod event;
pub mod experiment;
pub mod figures;
pub mod plane;
pub mod results;
pub mod schedule;
pub mod timeseries;

pub use bridge::{BridgeDivergence, BridgeReport, DifferentialBridge, TxnReport};
pub use experiment::{CacheKind, CacheSite, CacheTopology, Experiment, ExperimentConfig, WorkloadKind};
pub use plane::{ExecutionPlane, LiveOptions, LivePacing};
pub use schedule::{Schedule, ScheduledTxn};
pub use results::{CacheColumnResult, ExperimentResult};
pub use timeseries::{TimeBin, TimeSeries};
