//! The plane-agnostic transaction schedule.
//!
//! Everything random about an experiment's *workload* — arrival times,
//! which cache a read-only transaction targets, the access set of every
//! transaction — is a pure function of the configuration and its seed,
//! independent of how transactions execute. [`Schedule::build`] replays
//! exactly the draw sequence the discrete-event loop historically made
//! (arrival draws and workload generation interleaved in event order, from
//! the same `seed + 2` stream) and materializes the result: one
//! [`ScheduledTxn`] per transaction, in event order.
//!
//! Both execution planes consume the same schedule. The discrete-event
//! plane replays it against the simulated components; the live plane
//! partitions it over real client threads driving a `TCacheSystem`. Same
//! seed → same schedule → the planes disagree only where their *delivery*
//! semantics differ, which is precisely what cross-plane experiments are
//! meant to measure.

use crate::clients::ArrivalProcess;
use crate::event::{Event, EventQueue};
use crate::experiment::ExperimentConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcache_types::{AccessSet, CacheId, SimTime, TxnId};

/// One transaction of the schedule, in event order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledTxn {
    /// Scheduled (simulated) start time.
    pub at: SimTime,
    /// The transaction id both planes execute it under.
    pub txn: TxnId,
    /// The cache serving it (`None` for update transactions, which go to
    /// the database).
    pub target: Option<CacheId>,
    /// The objects it accesses, in access order.
    pub access: AccessSet,
}

impl ScheduledTxn {
    /// Whether this is an update transaction.
    pub fn is_update(&self) -> bool {
        self.target.is_none()
    }
}

/// The full deterministic transaction script of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Every transaction, in event order (non-decreasing `at`; ties in the
    /// order the original event loop would have popped them).
    pub ops: Vec<ScheduledTxn>,
    /// How many objects the workload touches; both planes populate the
    /// database with exactly this many.
    pub object_count: u64,
}

impl Schedule {
    /// Builds the schedule for `config`, reproducing the discrete-event
    /// loop's historical draw order bit for bit.
    ///
    /// # Panics
    /// Panics if the configured topology deploys zero caches (or a
    /// weighted topology gives every cache zero client weight).
    pub fn build(config: &ExperimentConfig) -> Schedule {
        let mut workload = config.workload.build(config.seed);
        let object_count = workload.object_count() as u64;
        let client_shares = config.caches.client_shares();
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let updates = ArrivalProcess::new(config.update_rate);
        // The aggregate read rate is split over the per-cache client
        // populations according to the topology's client shares (evenly,
        // unless the topology is weighted); a zero-weight cache fields no
        // clients of its own.
        let reads: Vec<Option<ArrivalProcess>> = client_shares
            .iter()
            .map(|&share| (share > 0.0).then(|| ArrivalProcess::new(config.read_rate * share)))
            .collect();
        let end = SimTime::ZERO + config.duration;

        let mut queue = EventQueue::new();
        queue.schedule(
            updates.next_arrival(SimTime::ZERO, &mut rng),
            Event::UpdateTransaction,
        );
        for (i, process) in reads.iter().enumerate() {
            if let Some(process) = process {
                queue.schedule(
                    process.next_arrival(SimTime::ZERO, &mut rng),
                    Event::ReadOnlyTransaction(CacheId(i as u32)),
                );
            }
        }

        let mut ops = Vec::new();
        let mut next_txn = 1u64;
        while let Some((now, event)) = queue.pop() {
            if now > end {
                break;
            }
            let target = match event {
                Event::DeliverInvalidations => continue,
                Event::UpdateTransaction => None,
                Event::ReadOnlyTransaction(cache) => Some(cache),
            };
            // Draw order matters for bit-exactness: the historical loop
            // generated the transaction's access set first and drew the
            // next arrival of its class second. Keep that order.
            let access = workload.generate(now, &mut rng);
            match target {
                None => {
                    queue.schedule(updates.next_arrival(now, &mut rng), Event::UpdateTransaction);
                }
                Some(cache) => {
                    let process = reads[cache.0 as usize]
                        .as_ref()
                        .expect("a scheduled cache has an arrival process");
                    queue.schedule(
                        process.next_arrival(now, &mut rng),
                        Event::ReadOnlyTransaction(cache),
                    );
                }
            }
            ops.push(ScheduledTxn {
                at: now,
                txn: TxnId(next_txn),
                target,
                access,
            });
            next_txn += 1;
        }
        Schedule { ops, object_count }
    }

    /// Number of update transactions.
    pub fn update_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_update()).count()
    }

    /// Number of read-only transactions targeting `cache`.
    pub fn read_count_for(&self, cache: CacheId) -> usize {
        self.ops
            .iter()
            .filter(|op| op.target == Some(cache))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{CacheTopology, WorkloadKind};
    use tcache_types::SimDuration;

    fn config() -> ExperimentConfig {
        ExperimentConfig {
            duration: SimDuration::from_secs(5),
            workload: WorkloadKind::PerfectClusters {
                objects: 500,
                cluster_size: 5,
            },
            caches: CacheTopology::Uniform(2),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn schedules_are_deterministic_and_ordered() {
        let a = Schedule::build(&config());
        let b = Schedule::build(&config());
        assert_eq!(a, b);
        assert!(a.ops.windows(2).all(|w| w[0].at <= w[1].at));
        // Transaction ids are assigned in event order, starting at 1.
        assert!(a
            .ops
            .iter()
            .enumerate()
            .all(|(i, op)| op.txn == TxnId(i as u64 + 1)));
        let mut other = config();
        other.seed = 9;
        assert_ne!(a, Schedule::build(&other));
    }

    #[test]
    fn rates_and_shares_shape_the_schedule() {
        let schedule = Schedule::build(&config());
        let updates = schedule.update_count() as f64;
        let reads = (schedule.ops.len() - schedule.update_count()) as f64;
        // 5 seconds at 100 and 500 txn/s respectively; generous slack.
        assert!((updates - 500.0).abs() < 150.0, "updates {updates}");
        assert!((reads - 2500.0).abs() < 400.0, "reads {reads}");
        // Uniform topology splits reads roughly evenly over the caches.
        let per_cache = schedule.read_count_for(CacheId(0)) as f64;
        assert!((per_cache / reads - 0.5).abs() < 0.1);
        assert_eq!(schedule.object_count, 500);
        assert!(schedule.ops.iter().all(|op| op.access.len() == 5));
    }
}
