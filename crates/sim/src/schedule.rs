//! The plane-agnostic transaction schedule.
//!
//! Everything random about an experiment's *workload* — arrival times,
//! which cache a read-only transaction targets, the access set of every
//! transaction — is a pure function of the configuration and its seed,
//! independent of how transactions execute. [`Schedule::build`] replays
//! exactly the draw sequence the discrete-event loop historically made
//! (arrival draws and workload generation interleaved in event order, from
//! the same `seed + 2` stream) and materializes the result: one
//! [`ScheduledTxn`] per transaction, in event order.
//!
//! Both execution planes consume the same schedule. The discrete-event
//! plane replays it against the simulated components; the live plane
//! partitions it over real client threads driving a `TCacheSystem`. Same
//! seed → same schedule → the planes disagree only where their *delivery*
//! semantics differ, which is precisely what cross-plane experiments are
//! meant to measure.

use crate::clients::ArrivalProcess;
use crate::event::{Event, EventQueue};
use crate::experiment::ExperimentConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use tcache_types::{scenario_seed, zipf_seed, AccessSet, CacheId, ObjectId, SimTime, TxnId};
use tcache_workload::scenario::{streams, unit_draw};
use tcache_workload::{ScenarioSpec, ZipfSampler};

/// One transaction of the schedule, in event order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledTxn {
    /// Scheduled (simulated) start time.
    pub at: SimTime,
    /// The transaction id both planes execute it under.
    pub txn: TxnId,
    /// The cache serving it (`None` for update transactions, which go to
    /// the database).
    pub target: Option<CacheId>,
    /// The objects it accesses, in access order.
    pub access: AccessSet,
}

impl ScheduledTxn {
    /// Whether this is an update transaction.
    pub fn is_update(&self) -> bool {
        self.target.is_none()
    }
}

/// The full deterministic transaction script of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Every transaction, in event order (non-decreasing `at`; ties in the
    /// order the original event loop would have popped them).
    pub ops: Vec<ScheduledTxn>,
    /// How many objects the workload touches; both planes populate the
    /// database with exactly this many.
    pub object_count: u64,
}

impl Schedule {
    /// Builds the schedule for `config`, reproducing the discrete-event
    /// loop's historical draw order bit for bit.
    ///
    /// # Panics
    /// Panics if the configured topology deploys zero caches (or a
    /// weighted topology gives every cache zero client weight).
    pub fn build(config: &ExperimentConfig) -> Schedule {
        if let Some(spec) = &config.scenario {
            return build_scenario(config, spec);
        }
        let mut workload = config.workload.build(config.seed);
        let object_count = workload.object_count() as u64;
        let client_shares = config.caches.client_shares();
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
        let updates = ArrivalProcess::new(config.update_rate);
        // The aggregate read rate is split over the per-cache client
        // populations according to the topology's client shares (evenly,
        // unless the topology is weighted); a zero-weight cache fields no
        // clients of its own.
        let reads: Vec<Option<ArrivalProcess>> = client_shares
            .iter()
            .map(|&share| (share > 0.0).then(|| ArrivalProcess::new(config.read_rate * share)))
            .collect();
        let end = SimTime::ZERO + config.duration;

        let mut queue = EventQueue::new();
        queue.schedule(
            updates.next_arrival(SimTime::ZERO, &mut rng),
            Event::UpdateTransaction,
        );
        for (i, process) in reads.iter().enumerate() {
            if let Some(process) = process {
                queue.schedule(
                    process.next_arrival(SimTime::ZERO, &mut rng),
                    Event::ReadOnlyTransaction(CacheId(i as u32)),
                );
            }
        }

        let mut ops = Vec::new();
        let mut next_txn = 1u64;
        while let Some((now, event)) = queue.pop() {
            if now > end {
                break;
            }
            let target = match event {
                Event::DeliverInvalidations => continue,
                Event::UpdateTransaction => None,
                Event::ReadOnlyTransaction(cache) => Some(cache),
            };
            // Draw order matters for bit-exactness: the historical loop
            // generated the transaction's access set first and drew the
            // next arrival of its class second. Keep that order.
            let access = workload.generate(now, &mut rng);
            match target {
                None => {
                    queue.schedule(updates.next_arrival(now, &mut rng), Event::UpdateTransaction);
                }
                Some(cache) => {
                    let process = reads[cache.0 as usize]
                        .as_ref()
                        .expect("a scheduled cache has an arrival process");
                    queue.schedule(
                        process.next_arrival(now, &mut rng),
                        Event::ReadOnlyTransaction(cache),
                    );
                }
            }
            ops.push(ScheduledTxn {
                at: now,
                txn: TxnId(next_txn),
                target,
                access,
            });
            next_txn += 1;
        }
        Schedule { ops, object_count }
    }

    /// Number of update transactions.
    pub fn update_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_update()).count()
    }

    /// Number of read-only transactions targeting `cache`.
    pub fn read_count_for(&self, cache: CacheId) -> usize {
        self.ops
            .iter()
            .filter(|op| op.target == Some(cache))
            .count()
    }
}

/// The scenario-driven schedule: an open-loop two-stream arrival loop
/// (updates at the configured rate, reads at the configured rate shaped by
/// the scenario's load curves), with every key drawn from the scenario's
/// deterministic Zipfian sampler and every per-read decision — hot-key
/// storm redirection, cache assignment under crowd shifts, stampede
/// chasing — a pure function of `(run seed, draw index)`. Only the arrival
/// *times* come from the sequential `seed + 2` RNG stream; everything
/// keyed by draw index replays identically under any worker interleaving.
fn build_scenario(config: &ExperimentConfig, spec: &ScenarioSpec) -> Schedule {
    let object_count = spec.object_count();
    let per_txn = spec.accesses_per_transaction();
    let client_shares = config.caches.client_shares();
    let cache_count = client_shares.len();
    let sampler = ZipfSampler::new(zipf_seed(config.seed), object_count, spec.skew());
    let storm_seed = scenario_seed(config.seed, streams::STORM);
    let assign_seed = scenario_seed(config.seed, streams::ASSIGN);
    let stampede_seed = scenario_seed(config.seed, streams::STAMPEDE);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
    let updates = ArrivalProcess::new(config.update_rate);
    let end = SimTime::ZERO + config.duration;
    let mut next_update = updates.next_arrival(SimTime::ZERO, &mut rng);
    // The read process is open-loop and time-varying: each arrival draws
    // the next gap at the rate the load curves dictate *now*.
    let mut next_read = ArrivalProcess::new(config.read_rate * spec.rate_multiplier(SimTime::ZERO))
        .next_arrival(SimTime::ZERO, &mut rng);
    let mut ops = Vec::new();
    let mut next_txn = 1u64;
    // Global access-draw counter: every key of every transaction (update
    // or read) consumes exactly one sampler draw, so the key sequence is
    // a pure function of the run seed.
    let mut key_draw = 0u64;
    // Global read counter: per-read decisions (cache assignment, stampede
    // coin) are indexed by it.
    let mut read_draw = 0u64;
    // Recently updated objects (first write of each update), pruned to the
    // stampede window — what stampeding reads chase.
    let mut recent: VecDeque<(SimTime, ObjectId)> = VecDeque::new();
    loop {
        let is_update = next_update <= next_read;
        let now = if is_update { next_update } else { next_read };
        if now > end {
            break;
        }
        if is_update {
            let access: AccessSet = (0..per_txn)
                .map(|_| {
                    let key = sampler.key_for_draw(key_draw);
                    key_draw += 1;
                    key
                })
                .collect();
            if spec.stampede().is_some() {
                if let Some(&first) = access.objects().first() {
                    recent.push_back((now, first));
                }
            }
            ops.push(ScheduledTxn {
                at: now,
                txn: TxnId(next_txn),
                target: None,
                access,
            });
            next_txn += 1;
            next_update = updates.next_arrival(now, &mut rng);
        } else {
            let mut keys: Vec<ObjectId> = Vec::with_capacity(per_txn);
            for _ in 0..per_txn {
                let key = sampler.key_for_draw(key_draw);
                keys.push(spec.apply_storm(storm_seed, now, key_draw, key));
                key_draw += 1;
            }
            if let Some(stampede) = spec.stampede() {
                while let Some(&(at, _)) = recent.front() {
                    if at + stampede.window < now {
                        recent.pop_front();
                    } else {
                        break;
                    }
                }
                if !recent.is_empty() && spec.stampede_redirect(stampede_seed, read_draw * 2) {
                    let pick = unit_draw(stampede_seed, read_draw * 2 + 1);
                    let index = ((pick * recent.len() as f64) as usize).min(recent.len() - 1);
                    keys[0] = recent[index].1;
                }
            }
            let weights = spec.cache_weights(now, &client_shares);
            let cache = spec
                .assign_cache(assign_seed, read_draw, &weights)
                .min(cache_count - 1);
            ops.push(ScheduledTxn {
                at: now,
                txn: TxnId(next_txn),
                target: Some(CacheId(cache as u32)),
                access: keys.into_iter().collect(),
            });
            next_txn += 1;
            read_draw += 1;
            next_read = ArrivalProcess::new(config.read_rate * spec.rate_multiplier(now))
                .next_arrival(now, &mut rng);
        }
    }
    Schedule { ops, object_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{CacheTopology, WorkloadKind};
    use tcache_types::SimDuration;

    fn config() -> ExperimentConfig {
        ExperimentConfig {
            duration: SimDuration::from_secs(5),
            workload: WorkloadKind::PerfectClusters {
                objects: 500,
                cluster_size: 5,
            },
            caches: CacheTopology::Uniform(2),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn schedules_are_deterministic_and_ordered() {
        let a = Schedule::build(&config());
        let b = Schedule::build(&config());
        assert_eq!(a, b);
        assert!(a.ops.windows(2).all(|w| w[0].at <= w[1].at));
        // Transaction ids are assigned in event order, starting at 1.
        assert!(a
            .ops
            .iter()
            .enumerate()
            .all(|(i, op)| op.txn == TxnId(i as u64 + 1)));
        let mut other = config();
        other.seed = 9;
        assert_ne!(a, Schedule::build(&other));
    }

    #[test]
    fn rates_and_shares_shape_the_schedule() {
        let schedule = Schedule::build(&config());
        let updates = schedule.update_count() as f64;
        let reads = (schedule.ops.len() - schedule.update_count()) as f64;
        // 5 seconds at 100 and 500 txn/s respectively; generous slack.
        assert!((updates - 500.0).abs() < 150.0, "updates {updates}");
        assert!((reads - 2500.0).abs() < 400.0, "reads {reads}");
        // Uniform topology splits reads roughly evenly over the caches.
        let per_cache = schedule.read_count_for(CacheId(0)) as f64;
        assert!((per_cache / reads - 0.5).abs() < 0.1);
        assert_eq!(schedule.object_count, 500);
        assert!(schedule.ops.iter().all(|op| op.access.len() == 5));
    }

    fn scenario_config(spec: ScenarioSpec) -> ExperimentConfig {
        ExperimentConfig {
            duration: SimDuration::from_secs(6),
            caches: CacheTopology::Uniform(2),
            scenario: Some(spec),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn scenario_schedules_are_deterministic_and_zipf_skewed() {
        let spec = ScenarioSpec::new("sched", 400, 5, 1.0, 100_000);
        let a = Schedule::build(&scenario_config(spec.clone()));
        let b = Schedule::build(&scenario_config(spec));
        assert_eq!(a, b);
        assert_eq!(a.object_count, 400);
        assert!(a.ops.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a
            .ops
            .iter()
            .enumerate()
            .all(|(i, op)| op.txn == TxnId(i as u64 + 1)));
        // Zipf skew: the hottest decile of keys draws a disproportionate
        // share of the accesses.
        let mut hot = 0u64;
        let mut total = 0u64;
        for op in &a.ops {
            for key in op.access.objects() {
                total += 1;
                if key.as_u64() < 40 {
                    hot += 1;
                }
            }
        }
        assert!(
            hot * 3 > total,
            "hottest 10% of keys must draw over a third of accesses ({hot}/{total})"
        );
    }

    #[test]
    fn scenario_load_burst_raises_the_read_rate() {
        let burst = tcache_workload::LoadCurve::Burst {
            at: SimTime::from_secs(2),
            len: SimDuration::from_secs(2),
            factor: 4.0,
        };
        let spec = ScenarioSpec::new("burst", 400, 5, 0.9, 100_000).with_load(burst);
        let schedule = Schedule::build(&scenario_config(spec));
        let reads_in = |from: u64, to: u64| {
            schedule
                .ops
                .iter()
                .filter(|op| {
                    !op.is_update()
                        && op.at >= SimTime::from_secs(from)
                        && op.at < SimTime::from_secs(to)
                })
                .count() as f64
        };
        let quiet = reads_in(0, 2);
        let bursting = reads_in(2, 4);
        assert!(
            bursting > quiet * 2.5,
            "4x burst must show up in arrivals ({quiet} quiet vs {bursting} bursting)"
        );
    }

    #[test]
    fn scenario_crowd_shift_moves_read_traffic() {
        let spec = ScenarioSpec::new("crowd", 400, 5, 0.9, 100_000).with_crowd_shift(
            tcache_workload::CrowdShift {
                at: SimTime::from_secs(3),
                cache: 0,
                weight: 9.0,
            },
        );
        let schedule = Schedule::build(&scenario_config(spec));
        let share_to_0 = |from: u64, to: u64| {
            let window: Vec<_> = schedule
                .ops
                .iter()
                .filter(|op| {
                    !op.is_update()
                        && op.at >= SimTime::from_secs(from)
                        && op.at < SimTime::from_secs(to)
                })
                .collect();
            let to_0 = window
                .iter()
                .filter(|op| op.target == Some(CacheId(0)))
                .count();
            to_0 as f64 / window.len() as f64
        };
        assert!((share_to_0(0, 3) - 0.5).abs() < 0.1, "even split before");
        assert!(share_to_0(3, 6) > 0.8, "crowd concentrates on cache 0 after");
    }
}
