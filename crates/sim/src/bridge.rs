//! Differential counterexample bridge: replays a model-checker trace
//! action-by-action against the real protocol stack.
//!
//! The model in `tcache-model` claims to mirror `Database`, `EdgeCache`
//! and the `ConsistencyMonitor` line by line. The bridge is what makes
//! that claim falsifiable: it drives one real database and one real edge
//! cache per modeled cache through the exact same
//! [`ProtocolAction`] sequence, delivering invalidations by hand where
//! the model's network would, and after **every** action compares every
//! observable the two sides share — versions read, abort objects, stream
//! positions, cached working sets, lifecycle states and all nine
//! lifecycle counters. The first disagreement is reported as a
//! [`BridgeDivergence`] naming the step, the action and the mismatching
//! observable.
//!
//! Counterexamples found by the explorer are minimized and then fed
//! through here, so an invariant violation is never just a statement
//! about the model: the same trace demonstrably produces the same
//! behaviour on the shipped implementation.

use std::sync::Arc;
use tcache_cache::{EdgeCache, ReadMode};
use tcache_db::{Database, DatabaseConfig, Invalidation};
use tcache_model::{
    ground_truth_serializable, history_of, read_txn_id, update_txn_id, CachePolicyKind,
    ModelConfig, ModelState, TxnMode, TxnOutcome,
};
use tcache_monitor::ConsistencyMonitor;
use tcache_types::{
    AccessSet, CacheId, ObjectId, ProtocolAction, RecoveryPolicy, SimDuration, SimTime, Strategy,
    TCacheError, TransactionRecord, Value, Version,
};

/// A disagreement between the model and the real stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeDivergence {
    /// Zero-based index of the action whose replay diverged.
    pub step: usize,
    /// The action being replayed.
    pub action: ProtocolAction,
    /// What disagreed, with both sides' values.
    pub detail: String,
}

impl std::fmt::Display for BridgeDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model/implementation divergence at step {} ({}): {}",
            self.step, self.action, self.detail
        )
    }
}

impl std::error::Error for BridgeDivergence {}

/// The classification of one finished read-only transaction, recorded by
/// the bridge at its finish edge with verdicts from both judges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnReport {
    /// Index of the scripted transaction.
    pub txn: usize,
    /// Whether it committed (on both sides — divergence otherwise).
    pub committed: bool,
    /// The `(object, version)` pairs it observed, in read order.
    pub observed: Vec<(u64, u64)>,
    /// The live monitor's two-tier serializability verdict.
    pub monitor_serializable: bool,
    /// The brute-force ground-truth verdict.
    pub ground_truth: bool,
}

/// Summary of a completed replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeReport {
    /// Actions replayed.
    pub steps: usize,
    /// Individual observable comparisons performed (all equal).
    pub comparisons: u64,
    /// One entry per read-only transaction that finished during the
    /// trace, in finish order.
    pub finished: Vec<TxnReport>,
}

/// Replays protocol traces against a live `Database`/`EdgeCache` stack in
/// lockstep with the model, comparing observables after every action.
pub struct DifferentialBridge {
    config: ModelConfig,
    model: ModelState,
    db: Arc<Database>,
    caches: Vec<EdgeCache>,
    monitor: ConsistencyMonitor,
    steps: usize,
    comparisons: u64,
    finished: Vec<TxnReport>,
}

impl DifferentialBridge {
    /// Builds the real stack for `config`: a database with the scripted
    /// objects and log capacity, one edge cache per modeled cache with the
    /// matching policy, recovery policy installed on each.
    pub fn new(config: &ModelConfig) -> Self {
        let db_config = DatabaseConfig {
            invalidation_log_capacity: config.log_capacity,
            ..DatabaseConfig::unbounded()
        };
        let db = Arc::new(Database::new(db_config));
        db.populate((0..config.objects).map(|o| (ObjectId(o), Value::new(o))));

        let policy = match config.recovery.staleness_budget() {
            Some(budget) => RecoveryPolicy::GapResync {
                staleness_budget: SimDuration::from_secs(budget),
            },
            None => RecoveryPolicy::None,
        };
        let caches = config
            .caches
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                let cache = match kind {
                    CachePolicyKind::TCacheUnbounded => {
                        EdgeCache::unbounded(CacheId(i as u32), Arc::clone(&db), Strategy::Abort)
                    }
                    CachePolicyKind::Plain => EdgeCache::plain(CacheId(i as u32), Arc::clone(&db)),
                };
                cache.set_recovery_policy(policy);
                cache
            })
            .collect();

        DifferentialBridge {
            config: config.clone(),
            model: ModelState::initial(config),
            db,
            caches,
            monitor: ConsistencyMonitor::new(),
            steps: 0,
            comparisons: 0,
            finished: Vec::new(),
        }
    }

    /// Replays a whole trace, returning the report or the first
    /// divergence.
    ///
    /// # Errors
    /// Returns the first [`BridgeDivergence`], which names the step,
    /// action and mismatching observable.
    pub fn run(config: &ModelConfig, trace: &[ProtocolAction]) -> Result<BridgeReport, BridgeDivergence> {
        let mut bridge = DifferentialBridge::new(config);
        for &action in trace {
            bridge.step(action)?;
        }
        Ok(bridge.report())
    }

    /// The model state after the actions replayed so far.
    pub fn model(&self) -> &ModelState {
        &self.model
    }

    /// The real edge cache backing modeled cache `index`.
    pub fn cache(&self, index: usize) -> &EdgeCache {
        &self.caches[index]
    }

    /// The real backend database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The live monitor, fed every committed update so far.
    pub fn monitor(&self) -> &ConsistencyMonitor {
        &self.monitor
    }

    /// The report for the actions replayed so far.
    pub fn report(&self) -> BridgeReport {
        BridgeReport {
            steps: self.steps,
            comparisons: self.comparisons,
            finished: self.finished.clone(),
        }
    }

    fn diverged(&self, action: ProtocolAction, detail: String) -> BridgeDivergence {
        BridgeDivergence {
            step: self.steps,
            action,
            detail,
        }
    }

    fn check(
        &mut self,
        action: ProtocolAction,
        equal: bool,
        detail: impl FnOnce() -> String,
    ) -> Result<(), BridgeDivergence> {
        self.comparisons += 1;
        if equal {
            Ok(())
        } else {
            Err(self.diverged(action, detail()))
        }
    }

    /// The real-stack timestamp for the model's logical clock: one second
    /// per tick, so `clock > since + budget` decides identically on both
    /// sides.
    fn now(&self) -> SimTime {
        SimTime::from_secs(self.model.clock)
    }

    /// Replays one action on both sides and compares every shared
    /// observable.
    ///
    /// # Errors
    /// Returns a [`BridgeDivergence`] on the first disagreement (or when
    /// `action` is not enabled in the model).
    pub fn step(&mut self, action: ProtocolAction) -> Result<(), BridgeDivergence> {
        let prev = self.model.clone();
        let Some(next) = self.model.apply(&self.config, action) else {
            return Err(self.diverged(action, "action not enabled in the model".to_string()));
        };
        let now = self.now(); // before the tick advances the clock
        self.model = next;

        match action {
            ProtocolAction::UpdateCommit { update } => {
                self.replay_update(action, update)?;
            }
            ProtocolAction::Deliver { cache, index } => {
                let inv = prev.caches[cache].pending[index];
                self.caches[cache].apply_invalidation(Invalidation::with_seq(
                    ObjectId(inv.object),
                    Version(inv.version),
                    update_txn_id(inv.update),
                    inv.seq,
                ));
            }
            ProtocolAction::DropInvalidation { .. } => {
                // The network loses the record; the real cache sees nothing.
            }
            ProtocolAction::ReadStep { txn } => {
                self.replay_read_step(action, txn, &prev, now)?;
            }
            ProtocolAction::Crash { cache } => self.caches[cache].crash(now),
            ProtocolAction::Restart { cache } => self.caches[cache].restart(),
            ProtocolAction::Partition { cache } => self.caches[cache].disconnect(now),
            ProtocolAction::Reconnect { cache } => self.caches[cache].reconnect(),
            ProtocolAction::Tick => {
                // Purely logical: both clocks advance via `now()`.
            }
        }

        self.record_finish_edges(action, &prev)?;
        self.compare_state(action)?;
        self.steps += 1;
        Ok(())
    }

    /// Replays an update commit and compares the commit record and the
    /// stamped invalidation sequence numbers.
    fn replay_update(&mut self, action: ProtocolAction, update: usize) -> Result<(), BridgeDivergence> {
        let writes: Vec<ObjectId> = self.config.updates[update].iter().map(|&o| ObjectId(o)).collect();
        let access = AccessSet::new(writes);
        let commit = match self.db.execute_update(update_txn_id(update), &access) {
            Ok(commit) => commit,
            Err(e) => {
                return Err(self.diverged(action, format!("real update aborted: {e}")));
            }
        };
        let (_, model_version) = *self.model.committed.last().expect("just committed");
        self.check(action, commit.version.0 == model_version, || {
            format!(
                "commit version: real {} vs model {model_version}",
                commit.version.0
            )
        })?;

        let first_seq = self.model.db.latest_seq - self.config.updates[update].len() as u64 + 1;
        for (i, inv) in commit.invalidations.iter().enumerate() {
            let object = self.config.updates[update][i];
            let expected_seq = first_seq + i as u64;
            self.check(
                action,
                inv.seq == expected_seq && inv.object.0 == object && inv.new_version.0 == model_version,
                || {
                    format!(
                        "invalidation {i}: real (seq {}, {}@{}) vs model (seq {expected_seq}, o{object}@{model_version})",
                        inv.seq, inv.object, inv.new_version
                    )
                },
            )?;
        }

        // Feed the live monitor exactly as the planes do.
        self.monitor.record_update_commit(&TransactionRecord::update_committed(
            commit.txn,
            commit.reads.clone(),
            commit.written.clone(),
            SimTime(commit.version.0),
        ));
        Ok(())
    }

    /// Replays one scripted read step: a degraded transaction's single
    /// synchronous pass-through round, or one `EdgeCache::read` of the
    /// cached path, comparing the outcome against the model's.
    fn replay_read_step(
        &mut self,
        action: ProtocolAction,
        txn: usize,
        prev: &ModelState,
        now: SimTime,
    ) -> Result<(), BridgeDivergence> {
        let script = self.config.reads[txn].clone();
        let keys: Vec<ObjectId> = script.keys.iter().map(|&k| ObjectId(k)).collect();
        let latched_pass_through = prev.txns[txn].mode.is_none()
            && self.model.txns[txn].mode == Some(TxnMode::PassThrough);

        if latched_pass_through {
            // One synchronous backend round for the whole script, through
            // the lifecycle-aware entry point so the real cache performs
            // the same budget-expiry degrade transition.
            let log = match self.caches[script.cache].execute_read_only(now, read_txn_id(txn), &keys) {
                Ok(log) => log,
                Err(e) => return Err(self.diverged(action, format!("real pass-through failed: {e}"))),
            };
            self.check(action, log.mode == ReadMode::PassThrough, || {
                format!("serving mode: real {:?} vs model PassThrough", log.mode)
            })?;
            self.check(action, log.committed, || {
                "pass-through transaction aborted on the real side".to_string()
            })?;
            let real: Vec<(u64, u64)> = log.observed.iter().map(|&(o, v)| (o.0, v.0)).collect();
            let model = self.model.txns[txn].observed.clone();
            return self.check(action, real == model, || {
                format!("pass-through observations: real {real:?} vs model {model:?}")
            });
        }

        let key = script.keys[prev.txns[txn].next_key];
        let last_op = prev.txns[txn].next_key + 1 == script.keys.len();
        let result = self.caches[script.cache].read(now, read_txn_id(txn), ObjectId(key), last_op);
        let model_txn = &self.model.txns[txn];
        let newly_aborted = !prev.txns[txn].finished()
            && matches!(model_txn.outcome, Some(TxnOutcome::Aborted { .. }));

        match (result, newly_aborted) {
            (Ok(read), false) => {
                let (_, model_version) = *model_txn.observed.last().expect("model recorded the read");
                self.check(action, read.version.0 == model_version, || {
                    format!(
                        "read o{key}: real version {} vs model {model_version}",
                        read.version.0
                    )
                })
            }
            (Err(TCacheError::InconsistencyAbort { violating_object, .. }), true) => {
                let model_object = match model_txn.outcome {
                    Some(TxnOutcome::Aborted { violating_object }) => violating_object,
                    _ => unreachable!("newly_aborted checked"),
                };
                self.check(action, violating_object.0 == model_object, || {
                    format!(
                        "abort object: real {violating_object} vs model o{model_object}"
                    )
                })
            }
            (Ok(read), true) => Err(self.diverged(
                action,
                format!(
                    "model aborted txn {txn} but the real read returned o{key}@{}",
                    read.version.0
                ),
            )),
            (Err(e), _) => Err(self.diverged(
                action,
                format!("real read of o{key} failed where the model did not abort: {e}"),
            )),
        }
    }

    /// Classifies transactions that finished during this action and
    /// cross-checks the live monitor against the rebuilt-history verdict.
    fn record_finish_edges(
        &mut self,
        action: ProtocolAction,
        prev: &ModelState,
    ) -> Result<(), BridgeDivergence> {
        for txn in 0..self.model.txns.len() {
            if prev.txns[txn].finished() || !self.model.txns[txn].finished() {
                continue;
            }
            let observed = self.model.txns[txn].observed.clone();
            let typed: Vec<(ObjectId, Version)> =
                observed.iter().map(|&(o, v)| (ObjectId(o), Version(v))).collect();
            let committed = self.model.txns[txn].outcome == Some(TxnOutcome::Committed);
            let live = self.monitor.is_serializable(&typed);
            let history = history_of(&self.config, &self.model.committed);
            let truth = ground_truth_serializable(&history, &observed);

            // The live monitor was fed incrementally; a fresh monitor fed
            // the reconstructed history must agree (this is what the
            // model's oracle consults).
            let mut rebuilt = ConsistencyMonitor::new();
            for u in &history {
                rebuilt.record_update_commit(&TransactionRecord::update_committed(
                    u.txn,
                    u.reads.clone(),
                    u.writes.clone(),
                    SimTime(u.version),
                ));
            }
            let rebuilt_verdict = rebuilt.is_serializable(&typed);
            self.check(action, live == rebuilt_verdict, || {
                format!(
                    "monitor verdict for txn {txn} {observed:?}: live {live} vs rebuilt {rebuilt_verdict}"
                )
            })?;

            self.finished.push(TxnReport {
                txn,
                committed,
                observed,
                monitor_serializable: live,
                ground_truth: truth,
            });
        }
        Ok(())
    }

    /// Compares every shared observable of the post-action states.
    fn compare_state(&mut self, action: ProtocolAction) -> Result<(), BridgeDivergence> {
        let model_latest = self.model.db.latest_seq;
        let real_latest = self.db.invalidation_latest_seq();
        self.check(action, real_latest == model_latest, || {
            format!("db stream position: real {real_latest} vs model {model_latest}")
        })?;

        for i in 0..self.caches.len() {
            let model = self.model.caches[i].clone();
            let real_seq = self.caches[i].last_applied_seq();
            self.check(action, real_seq == model.last_seq, || {
                format!(
                    "cache {i} applied seq: real {real_seq} vs model {}",
                    model.last_seq
                )
            })?;

            let real_state = self.caches[i].lifecycle_state().name();
            let model_state = model.status.name();
            self.check(action, real_state == model_state, || {
                format!("cache {i} lifecycle: real {real_state} vs model {model_state}")
            })?;

            let real_objects = self.caches[i].cached_objects();
            self.check(action, real_objects == model.store.len(), || {
                format!(
                    "cache {i} working set size: real {real_objects} vs model {}",
                    model.store.len()
                )
            })?;
            for &object in model.store.keys() {
                let contains = self.caches[i].contains(ObjectId(object));
                self.check(action, contains, || {
                    format!("cache {i} working set: model caches o{object}, real does not")
                })?;
            }

            let stats = self.caches[i].lifecycle_stats();
            let pairs = [
                ("gaps_detected", stats.gaps_detected, model.gaps_detected),
                ("invalidations_missed", stats.invalidations_missed, model.invalidations_missed),
                ("log_replays", stats.log_replays, model.log_replays),
                ("replayed_invalidations", stats.replayed_invalidations, model.replayed_invalidations),
                ("snapshot_resyncs", stats.snapshot_resyncs, model.snapshot_resyncs),
                ("pass_through_txns", stats.pass_through_txns, model.pass_through_txns),
                ("crashes", stats.crashes, model.crashes),
                ("partitions", stats.partitions, model.partitions),
                ("reconnects", stats.reconnects, model.reconnects),
            ];
            for (name, real, model_value) in pairs {
                self.check(action, real == model_value, || {
                    format!("cache {i} {name}: real {real} vs model {model_value}")
                })?;
            }
        }
        Ok(())
    }
}
