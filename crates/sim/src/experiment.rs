//! The experiment runner: one database column, one cache, one monitor.

use crate::clients::ArrivalProcess;
use crate::event::{Event, EventQueue};
use crate::results::ExperimentResult;
use crate::timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig};
use tcache_monitor::ConsistencyMonitor;
use tcache_net::channel::InvalidationChannel;
use tcache_net::{LatencyModel, LossModel};
use tcache_types::{
    CacheId, DependencyBound, ObjectId, SimDuration, SimTime, Strategy, TCacheError,
    TransactionRecord, TxnId, Value,
};
use tcache_workload::graph::GraphKind;
use tcache_workload::{
    DriftingClusters, ParetoClusters, PerfectClusters, PhaseShift, RandomWalkWorkload,
    UniformRandom, WorkloadGenerator,
};

/// Which workload drives the clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Perfectly clustered synthetic accesses (§V-A1).
    PerfectClusters {
        /// Number of objects.
        objects: u64,
        /// Cluster size.
        cluster_size: u64,
    },
    /// Approximately clustered synthetic accesses with Pareto parameter α.
    ParetoClusters {
        /// Number of objects.
        objects: u64,
        /// Cluster size.
        cluster_size: u64,
        /// Pareto shape parameter.
        alpha: f64,
    },
    /// Uniformly random accesses.
    Uniform {
        /// Number of objects.
        objects: u64,
    },
    /// Perfect clusters whose boundaries drift over time (Figure 5).
    Drifting {
        /// Number of objects.
        objects: u64,
        /// Cluster size.
        cluster_size: u64,
        /// How often the clusters shift by one object.
        shift_every: SimDuration,
    },
    /// Uniform accesses that become perfectly clustered at `switch_at`
    /// (Figure 4).
    PhaseShift {
        /// Number of objects.
        objects: u64,
        /// Cluster size after the switch.
        cluster_size: u64,
        /// When accesses become clustered.
        switch_at: SimTime,
    },
    /// Random-walk transactions over a sampled graph topology (§V-B).
    Graph {
        /// Which topology the graph stands in for.
        kind: GraphKind,
        /// Nodes of the synthetic source graph before sampling.
        source_nodes: usize,
        /// Nodes retained by the random-walk sampler.
        sampled_nodes: usize,
    },
}

impl WorkloadKind {
    /// The paper's retail (Amazon-like) workload.
    pub fn retail() -> Self {
        WorkloadKind::Graph {
            kind: GraphKind::RetailAffinity,
            source_nodes: 4000,
            sampled_nodes: 1000,
        }
    }

    /// The paper's social-network (Orkut-like) workload.
    pub fn social() -> Self {
        WorkloadKind::Graph {
            kind: GraphKind::SocialNetwork,
            source_nodes: 4000,
            sampled_nodes: 1000,
        }
    }

    /// Builds the generator, using `seed` for any topology generation.
    pub fn build(&self, seed: u64) -> Box<dyn WorkloadGenerator> {
        match *self {
            WorkloadKind::PerfectClusters {
                objects,
                cluster_size,
            } => Box::new(PerfectClusters::new(objects, cluster_size, 5)),
            WorkloadKind::ParetoClusters {
                objects,
                cluster_size,
                alpha,
            } => Box::new(ParetoClusters::new(objects, cluster_size, 5, alpha)),
            WorkloadKind::Uniform { objects } => Box::new(UniformRandom::new(objects, 5)),
            WorkloadKind::Drifting {
                objects,
                cluster_size,
                shift_every,
            } => Box::new(DriftingClusters::new(objects, cluster_size, 5, shift_every)),
            WorkloadKind::PhaseShift {
                objects,
                cluster_size,
                switch_at,
            } => Box::new(PhaseShift::new(
                Box::new(UniformRandom::new(objects, 5)),
                Box::new(PerfectClusters::new(objects, cluster_size, 5)),
                switch_at,
            )),
            WorkloadKind::Graph {
                kind,
                source_nodes,
                sampled_nodes,
            } => Box::new(RandomWalkWorkload::paper_workload(
                kind,
                source_nodes,
                sampled_nodes,
                seed,
            )),
        }
    }
}

/// Which cache implementation serves the read-only clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// T-Cache with bounded dependency lists.
    TCache {
        /// Maximum dependency-list length.
        dependency_bound: usize,
        /// Reaction to detected inconsistencies.
        strategy: Strategy,
    },
    /// T-Cache with unbounded dependency lists (Theorem 1).
    Unbounded {
        /// Reaction to detected inconsistencies.
        strategy: Strategy,
    },
    /// The consistency-unaware baseline.
    Plain,
    /// The TTL-limited baseline of §V-B2.
    Ttl {
        /// Entry time-to-live.
        ttl: SimDuration,
    },
}

impl CacheKind {
    fn database_bound(&self) -> DependencyBound {
        match *self {
            CacheKind::TCache {
                dependency_bound, ..
            } => DependencyBound::Bounded(dependency_bound),
            CacheKind::Unbounded { .. } => DependencyBound::Unbounded,
            CacheKind::Plain | CacheKind::Ttl { .. } => DependencyBound::Bounded(0),
        }
    }

    fn build(&self, backend: Arc<Database>) -> EdgeCache {
        let id = CacheId(0);
        match *self {
            CacheKind::TCache {
                dependency_bound,
                strategy,
            } => EdgeCache::tcache(id, backend, dependency_bound, strategy),
            CacheKind::Unbounded { strategy } => EdgeCache::unbounded(id, backend, strategy),
            CacheKind::Plain => EdgeCache::plain(id, backend),
            CacheKind::Ttl { ttl } => EdgeCache::ttl_baseline(id, backend, ttl),
        }
    }
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Aggregate update-transaction rate (the paper uses 100 txn/s).
    pub update_rate: f64,
    /// Aggregate read-only transaction rate (the paper uses 500 txn/s).
    pub read_rate: f64,
    /// The workload driving both client classes.
    pub workload: WorkloadKind,
    /// The cache under test.
    pub cache: CacheKind,
    /// Fraction of invalidations dropped by the channel (the paper uses 0.2).
    pub invalidation_loss: f64,
    /// One-way delivery delay of surviving invalidations.
    pub invalidation_delay: SimDuration,
    /// Bin width of the outcome time series.
    pub timeseries_bin: SimDuration,
    /// Random seed (workload topology, arrivals, channel loss).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            duration: SimDuration::from_secs(30),
            update_rate: 100.0,
            read_rate: 500.0,
            workload: WorkloadKind::ParetoClusters {
                objects: 2000,
                cluster_size: 5,
                alpha: 1.0,
            },
            cache: CacheKind::TCache {
                dependency_bound: 5,
                strategy: Strategy::Abort,
            },
            invalidation_loss: 0.2,
            invalidation_delay: SimDuration::from_millis(50),
            timeseries_bin: SimDuration::from_secs(1),
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// Runs the experiment to completion.
    pub fn run(self) -> ExperimentResult {
        Experiment::new(self).run()
    }
}

/// A fully wired experiment, ready to run.
pub struct Experiment {
    config: ExperimentConfig,
    db: Arc<Database>,
    cache: EdgeCache,
    channel: InvalidationChannel,
    monitor: ConsistencyMonitor,
    workload: Box<dyn WorkloadGenerator>,
    rng: StdRng,
    queue: EventQueue,
    timeseries: TimeSeries,
    next_txn: u64,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// Builds all components (database, cache, channel, monitor, workload)
    /// from the configuration and populates the database.
    pub fn new(config: ExperimentConfig) -> Self {
        let workload = config.workload.build(config.seed);
        let db = Arc::new(Database::new(DatabaseConfig {
            shards: 1,
            dependency_bound: config.cache.database_bound(),
            history_depth: 0,
        }));
        db.populate((0..workload.object_count() as u64).map(|i| (ObjectId(i), Value::new(0))));
        let cache = config.cache.build(Arc::clone(&db));
        let channel = InvalidationChannel::new(
            LossModel::uniform(config.invalidation_loss),
            LatencyModel::Constant(config.invalidation_delay),
            config.seed.wrapping_add(1),
        );
        Experiment {
            config,
            db,
            cache,
            channel,
            monitor: ConsistencyMonitor::new(),
            workload,
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(2)),
            queue: EventQueue::new(),
            timeseries: TimeSeries::new(config.timeseries_bin),
            next_txn: 1,
        }
    }

    /// The configuration this experiment was built from.
    pub fn config(&self) -> ExperimentConfig {
        self.config
    }

    fn next_txn_id(&mut self) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        id
    }

    /// Runs the experiment and collects the results.
    pub fn run(mut self) -> ExperimentResult {
        let updates = ArrivalProcess::new(self.config.update_rate);
        let reads = ArrivalProcess::new(self.config.read_rate);
        let end = SimTime::ZERO + self.config.duration;

        self.queue.schedule(
            updates.next_arrival(SimTime::ZERO, &mut self.rng),
            Event::UpdateTransaction,
        );
        self.queue.schedule(
            reads.next_arrival(SimTime::ZERO, &mut self.rng),
            Event::ReadOnlyTransaction,
        );

        while let Some((now, event)) = self.queue.pop() {
            if now > end {
                break;
            }
            // Deliver every invalidation due by now before serving clients.
            self.deliver_due(now);
            match event {
                Event::DeliverInvalidations => {}
                Event::UpdateTransaction => {
                    self.run_update(now);
                    self.queue
                        .schedule(updates.next_arrival(now, &mut self.rng), Event::UpdateTransaction);
                }
                Event::ReadOnlyTransaction => {
                    self.run_read_only(now);
                    self.queue
                        .schedule(reads.next_arrival(now, &mut self.rng), Event::ReadOnlyTransaction);
                }
            }
        }

        ExperimentResult {
            duration: self.config.duration,
            report: self.monitor.report(),
            cache: self.cache.stats(),
            db: self.db.stats(),
            channel: self.channel.stats(),
            timeseries: self.timeseries,
        }
    }

    fn deliver_due(&mut self, now: SimTime) {
        for invalidation in self.channel.due(now) {
            self.cache.apply_invalidation(invalidation);
        }
    }

    fn run_update(&mut self, now: SimTime) {
        let txn = self.next_txn_id();
        let access = self.workload.generate(now, &mut self.rng);
        match self.db.execute_update(txn, &access) {
            Ok(commit) => {
                let record = TransactionRecord::update_committed(
                    txn,
                    commit.reads.clone(),
                    commit.written.clone(),
                    now,
                );
                self.monitor.record_update_commit(&record);
                self.channel
                    .send(now, commit.invalidations.iter().copied());
                if let Some(at) = self.channel.next_delivery_at() {
                    self.queue.schedule(at, Event::DeliverInvalidations);
                }
            }
            Err(_) => {
                self.monitor.record_update_abort();
            }
        }
    }

    fn run_read_only(&mut self, now: SimTime) {
        let txn = self.next_txn_id();
        let access = self.workload.generate(now, &mut self.rng);
        let keys = access.objects();
        let mut observed = Vec::with_capacity(keys.len());
        let mut aborted = false;
        for (i, &key) in keys.iter().enumerate() {
            let last_op = i + 1 == keys.len();
            match self.cache.read(now, txn, key, last_op) {
                Ok(v) => observed.push((v.id, v.version)),
                Err(TCacheError::InconsistencyAbort { .. }) => {
                    aborted = true;
                    break;
                }
                Err(e) => panic!("unexpected cache error during experiment: {e}"),
            }
        }
        let class = self.monitor.record_read_only(&observed, !aborted);
        self.timeseries.record(now, class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            duration: SimDuration::from_secs(5),
            workload: WorkloadKind::PerfectClusters {
                objects: 500,
                cluster_size: 5,
            },
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn experiment_produces_traffic_at_the_configured_rates() {
        let result = quick_config().run();
        let reads = result.report.read_only_total() as f64;
        let updates = (result.report.updates_committed + result.report.updates_aborted) as f64;
        // 5 seconds at 500 and 100 txn/s respectively; allow generous slack.
        assert!((reads - 2500.0).abs() < 400.0, "read txns {reads}");
        assert!((updates - 500.0).abs() < 150.0, "update txns {updates}");
        assert!(result.hit_ratio() > 0.5);
        assert!(result.channel.sent > 0);
        let loss = result.channel.loss_ratio();
        assert!((loss - 0.2).abs() < 0.05, "channel loss {loss}");
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let a = quick_config().run();
        let b = quick_config().run();
        assert_eq!(a.report, b.report);
        assert_eq!(a.cache, b.cache);
        let mut other = quick_config();
        other.seed = 7;
        let c = other.run();
        assert_ne!(a.report, c.report);
    }

    #[test]
    fn plain_cache_commits_inconsistent_transactions() {
        let mut config = quick_config();
        config.cache = CacheKind::Plain;
        let result = config.run();
        assert_eq!(result.report.aborted_total(), 0);
        assert!(
            result.report.committed_inconsistent > 0,
            "with 20% invalidation loss the consistency-unaware cache must commit some inconsistent transactions"
        );
    }

    #[test]
    fn tcache_detects_most_inconsistencies_on_clustered_workloads() {
        let plain = {
            let mut c = quick_config();
            c.cache = CacheKind::Plain;
            c.run()
        };
        let tcache = {
            let mut c = quick_config();
            c.cache = CacheKind::TCache {
                dependency_bound: 5,
                strategy: Strategy::Abort,
            };
            c.run()
        };
        assert!(
            tcache.inconsistency_ratio() < plain.inconsistency_ratio(),
            "T-Cache ({}) must reduce the inconsistency ratio below the plain cache ({})",
            tcache.inconsistency_ratio(),
            plain.inconsistency_ratio()
        );
        assert!(tcache.report.aborted_total() > 0);
    }

    #[test]
    fn reliable_channel_produces_no_inconsistencies() {
        let mut config = quick_config();
        config.invalidation_loss = 0.0;
        config.invalidation_delay = SimDuration::ZERO;
        let result = config.run();
        assert_eq!(
            result.report.committed_inconsistent, 0,
            "without loss or delay every committed transaction is consistent"
        );
        assert_eq!(result.channel.dropped, 0);
    }

    #[test]
    fn workload_kind_builders_produce_generators() {
        for kind in [
            WorkloadKind::PerfectClusters { objects: 100, cluster_size: 5 },
            WorkloadKind::ParetoClusters { objects: 100, cluster_size: 5, alpha: 1.0 },
            WorkloadKind::Uniform { objects: 100 },
            WorkloadKind::Drifting {
                objects: 100,
                cluster_size: 5,
                shift_every: SimDuration::from_secs(10),
            },
            WorkloadKind::PhaseShift {
                objects: 100,
                cluster_size: 5,
                switch_at: SimTime::from_secs(10),
            },
        ] {
            let mut generator = kind.build(1);
            assert_eq!(generator.object_count(), 100);
            let access = generator.generate(SimTime::ZERO, &mut StdRng::seed_from_u64(1));
            assert_eq!(access.len(), 5);
        }
        let retail = WorkloadKind::retail().build(1);
        assert_eq!(retail.object_count(), 1000);
        let social = WorkloadKind::social().build(1);
        assert_eq!(social.object_count(), 1000);
    }

    #[test]
    fn ttl_cache_lowers_hit_ratio() {
        let infinite = {
            let mut c = quick_config();
            c.cache = CacheKind::Plain;
            c.run()
        };
        let ttl = {
            let mut c = quick_config();
            c.cache = CacheKind::Ttl {
                ttl: SimDuration::from_millis(500),
            };
            c.run()
        };
        assert!(
            ttl.hit_ratio() < infinite.hit_ratio(),
            "a short TTL must reduce the hit ratio ({} vs {})",
            ttl.hit_ratio(),
            infinite.hit_ratio()
        );
        assert!(ttl.db_reads_per_second() > infinite.db_reads_per_second());
    }
}
