//! The experiment runner: one database column serving N edge caches.
//!
//! The paper's setup (§IV, Figure 2) wires a single cache; the harness
//! generalizes it to a [`CacheTopology`] of N caches over the same backend.
//! Each cache has its own invalidation channel (independently seeded from
//! `(seed, CacheId)`, optionally with heterogeneous loss) and its own
//! read-only client population; the consistency monitor classifies
//! transactions both globally and per cache, since cache serializability is
//! a per-cache-server property.

use crate::plane::ExecutionPlane;
use crate::results::ExperimentResult;
use crate::schedule::Schedule;
use crate::timeseries::TimeSeries;
use std::sync::Arc;
use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig};
use tcache_monitor::ConsistencyMonitor;
use tcache_net::fanout::{CacheLink, InvalidationFanout};
use tcache_net::fault::{FaultEvent, FaultKind, FaultPlan};
use tcache_net::pipe::OverflowPolicy;
use tcache_types::{
    CacheId, DependencyBound, ObjectId, RecoveryPolicy, SimDuration, SimTime, Strategy, Value,
};
use tcache_workload::graph::GraphKind;
use tcache_workload::{
    ChurnAction, DriftingClusters, ParetoClusters, PerfectClusters, PhaseShift,
    RandomWalkWorkload, ScenarioSpec, UniformRandom, WorkloadGenerator,
};

/// Which workload drives the clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Perfectly clustered synthetic accesses (§V-A1).
    PerfectClusters {
        /// Number of objects.
        objects: u64,
        /// Cluster size.
        cluster_size: u64,
    },
    /// Approximately clustered synthetic accesses with Pareto parameter α.
    ParetoClusters {
        /// Number of objects.
        objects: u64,
        /// Cluster size.
        cluster_size: u64,
        /// Pareto shape parameter.
        alpha: f64,
    },
    /// Uniformly random accesses.
    Uniform {
        /// Number of objects.
        objects: u64,
    },
    /// Perfect clusters whose boundaries drift over time (Figure 5).
    Drifting {
        /// Number of objects.
        objects: u64,
        /// Cluster size.
        cluster_size: u64,
        /// How often the clusters shift by one object.
        shift_every: SimDuration,
    },
    /// Uniform accesses that become perfectly clustered at `switch_at`
    /// (Figure 4).
    PhaseShift {
        /// Number of objects.
        objects: u64,
        /// Cluster size after the switch.
        cluster_size: u64,
        /// When accesses become clustered.
        switch_at: SimTime,
    },
    /// Random-walk transactions over a sampled graph topology (§V-B).
    Graph {
        /// Which topology the graph stands in for.
        kind: GraphKind,
        /// Nodes of the synthetic source graph before sampling.
        source_nodes: usize,
        /// Nodes retained by the random-walk sampler.
        sampled_nodes: usize,
    },
}

impl WorkloadKind {
    /// The paper's retail (Amazon-like) workload.
    pub fn retail() -> Self {
        WorkloadKind::Graph {
            kind: GraphKind::RetailAffinity,
            source_nodes: 4000,
            sampled_nodes: 1000,
        }
    }

    /// The paper's social-network (Orkut-like) workload.
    pub fn social() -> Self {
        WorkloadKind::Graph {
            kind: GraphKind::SocialNetwork,
            source_nodes: 4000,
            sampled_nodes: 1000,
        }
    }

    /// Builds the generator, using `seed` for any topology generation.
    pub fn build(&self, seed: u64) -> Box<dyn WorkloadGenerator> {
        match *self {
            WorkloadKind::PerfectClusters {
                objects,
                cluster_size,
            } => Box::new(PerfectClusters::new(objects, cluster_size, 5)),
            WorkloadKind::ParetoClusters {
                objects,
                cluster_size,
                alpha,
            } => Box::new(ParetoClusters::new(objects, cluster_size, 5, alpha)),
            WorkloadKind::Uniform { objects } => Box::new(UniformRandom::new(objects, 5)),
            WorkloadKind::Drifting {
                objects,
                cluster_size,
                shift_every,
            } => Box::new(DriftingClusters::new(objects, cluster_size, 5, shift_every)),
            WorkloadKind::PhaseShift {
                objects,
                cluster_size,
                switch_at,
            } => Box::new(PhaseShift::new(
                Box::new(UniformRandom::new(objects, 5)),
                Box::new(PerfectClusters::new(objects, cluster_size, 5)),
                switch_at,
            )),
            WorkloadKind::Graph {
                kind,
                source_nodes,
                sampled_nodes,
            } => Box::new(RandomWalkWorkload::paper_workload(
                kind,
                source_nodes,
                sampled_nodes,
                seed,
            )),
        }
    }
}

/// Which cache implementation serves the read-only clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// T-Cache with bounded dependency lists.
    TCache {
        /// Maximum dependency-list length.
        dependency_bound: usize,
        /// Reaction to detected inconsistencies.
        strategy: Strategy,
    },
    /// T-Cache with unbounded dependency lists (Theorem 1).
    Unbounded {
        /// Reaction to detected inconsistencies.
        strategy: Strategy,
    },
    /// The consistency-unaware baseline.
    Plain,
    /// The TTL-limited baseline of §V-B2.
    Ttl {
        /// Entry time-to-live.
        ttl: SimDuration,
    },
}

impl CacheKind {
    fn database_bound(&self) -> DependencyBound {
        match *self {
            CacheKind::TCache {
                dependency_bound, ..
            } => DependencyBound::Bounded(dependency_bound),
            CacheKind::Unbounded { .. } => DependencyBound::Unbounded,
            CacheKind::Plain | CacheKind::Ttl { .. } => DependencyBound::Bounded(0),
        }
    }

    /// Builds a cache of this kind with the given server id. Every cache of
    /// a multi-cache deployment must carry its real id — stats and
    /// violations from distinct caches must never be conflated.
    pub fn build(&self, id: CacheId, backend: Arc<Database>) -> EdgeCache {
        match *self {
            CacheKind::TCache {
                dependency_bound,
                strategy,
            } => EdgeCache::tcache(id, backend, dependency_bound, strategy),
            CacheKind::Unbounded { strategy } => EdgeCache::unbounded(id, backend, strategy),
            CacheKind::Plain => EdgeCache::plain(id, backend),
            CacheKind::Ttl { ttl } => EdgeCache::ttl_baseline(id, backend, ttl),
        }
    }
}

/// One edge-cache site of a [`CacheTopology::Weighted`] deployment: its
/// invalidation-link loss rate and the relative weight of its read-only
/// client population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSite {
    /// Loss rate of this cache's invalidation channel.
    pub loss: f64,
    /// Relative share of the aggregate read rate served by this cache's
    /// clients (weights are normalized over the deployment; 0 deploys the
    /// cache with no client population of its own).
    pub weight: f64,
}

impl CacheSite {
    /// A site with the given loss and client weight.
    ///
    /// # Panics
    /// Panics if `weight` is negative or not finite.
    pub fn new(loss: f64, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "client weight must be non-negative"
        );
        CacheSite { loss, weight }
    }
}

/// How many edge caches the experiment deploys and what their invalidation
/// links look like. All caches run the same [`CacheKind`] and share the
/// backend database; they differ in their channel's loss process and
/// (for [`CacheTopology::Weighted`]) in the size of their client
/// population.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheTopology {
    /// The paper's single-column setup: one cache whose channel uses the
    /// experiment-level `invalidation_loss`.
    Single,
    /// N identical caches, each with its own independently seeded channel
    /// at the experiment-level loss rate.
    Uniform(usize),
    /// One cache per entry, with heterogeneous per-cache loss rates.
    PerCacheLoss(Vec<f64>),
    /// One cache per entry with heterogeneous loss *and* per-cache client
    /// weights: cache `i` serves `weight_i / Σ weights` of the aggregate
    /// read rate, modelling geo-partitioned traffic instead of one evenly
    /// split client population.
    Weighted(Vec<CacheSite>),
}

impl CacheTopology {
    /// Number of caches deployed.
    ///
    /// # Panics
    /// Panics on an empty topology (`Uniform(0)` or an empty loss list).
    pub fn cache_count(&self) -> usize {
        let n = match self {
            CacheTopology::Single => 1,
            CacheTopology::Uniform(n) => *n,
            CacheTopology::PerCacheLoss(losses) => losses.len(),
            CacheTopology::Weighted(sites) => sites.len(),
        };
        assert!(n > 0, "an experiment needs at least one cache");
        n
    }

    /// The per-cache loss rates, with `default_loss` filling the uniform
    /// topologies.
    pub fn losses(&self, default_loss: f64) -> Vec<f64> {
        match self {
            CacheTopology::Single => vec![default_loss],
            CacheTopology::Uniform(n) => vec![default_loss; *n],
            CacheTopology::PerCacheLoss(losses) => losses.clone(),
            CacheTopology::Weighted(sites) => sites.iter().map(|s| s.loss).collect(),
        }
    }

    /// Each cache's normalized share of the aggregate read rate. Uniform
    /// topologies split evenly; [`CacheTopology::Weighted`] normalizes the
    /// configured weights.
    ///
    /// # Panics
    /// Panics if every weight of a weighted topology is zero.
    pub fn client_shares(&self) -> Vec<f64> {
        let n = self.cache_count();
        match self {
            CacheTopology::Weighted(sites) => {
                let total: f64 = sites.iter().map(|s| s.weight).sum();
                assert!(total > 0.0, "at least one cache needs client weight");
                sites.iter().map(|s| s.weight / total).collect()
            }
            _ => vec![1.0 / n as f64; n],
        }
    }
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Aggregate update-transaction rate (the paper uses 100 txn/s).
    pub update_rate: f64,
    /// Aggregate read-only transaction rate across all caches (the paper
    /// uses 500 txn/s); each cache's client population gets an equal share.
    pub read_rate: f64,
    /// The workload driving both client classes.
    pub workload: WorkloadKind,
    /// The cache under test.
    pub cache: CacheKind,
    /// How many caches are deployed and their per-cache channel loss.
    pub caches: CacheTopology,
    /// Fraction of invalidations dropped by the channel (the paper uses
    /// 0.2); per-cache rates in [`CacheTopology::PerCacheLoss`] override it.
    pub invalidation_loss: f64,
    /// One-way delivery delay of surviving invalidations.
    pub invalidation_delay: SimDuration,
    /// In-flight capacity of each cache's invalidation pipe (`None` for the
    /// paper's unbounded pipe).
    pub pipe_capacity: Option<usize>,
    /// What a full pipe does with an arriving invalidation.
    pub overflow_policy: OverflowPolicy,
    /// Deterministic schedule of injected faults (crashes, partitions,
    /// delay spikes). Empty by default; both execution planes walk the
    /// same plan with a cursor and apply due events before each operation.
    pub faults: FaultPlan,
    /// Optional open-loop scenario. When set, the scenario drives the
    /// transaction schedule instead of [`ExperimentConfig::workload`]:
    /// keys come from the scenario's deterministic Zipfian sampler, the
    /// offered read rate follows its load curves, reads are assigned to
    /// caches by its (possibly shifting) population weights, and its
    /// crash/restart churn is merged into the fault plan
    /// ([`ExperimentConfig::effective_faults`]). Pause/resume churn needs
    /// the live plane's pausable pipes.
    pub scenario: Option<ScenarioSpec>,
    /// Optional two-tier invalidation topology: `cache_parents[i]` names
    /// the regional parent cache leaf `i` subscribes through (`None` makes
    /// cache `i` a root the database publishes to directly). Live plane
    /// only — the tree is wired through the reactor's relay fan-out.
    pub cache_parents: Option<Vec<Option<CacheId>>>,
    /// How caches recover from invalidation-stream gaps and how long a cut
    /// off cache may serve its (possibly stale) store before degrading to
    /// pass-through reads. Applied to every deployed cache.
    pub recovery: RecoveryPolicy,
    /// Bin width of the outcome time series.
    pub timeseries_bin: SimDuration,
    /// Random seed (workload topology, arrivals, channel loss). Per-cache
    /// channel seeds are derived from `(seed, CacheId)`.
    pub seed: u64,
    /// Which backend executes the run: the discrete-event simulator (the
    /// default) or the live reactor stack (see [`crate::plane`]). The
    /// transaction schedule is identical on both.
    pub plane: ExecutionPlane,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            duration: SimDuration::from_secs(30),
            update_rate: 100.0,
            read_rate: 500.0,
            workload: WorkloadKind::ParetoClusters {
                objects: 2000,
                cluster_size: 5,
                alpha: 1.0,
            },
            cache: CacheKind::TCache {
                dependency_bound: 5,
                strategy: Strategy::Abort,
            },
            caches: CacheTopology::Single,
            invalidation_loss: 0.2,
            invalidation_delay: SimDuration::from_millis(50),
            pipe_capacity: None,
            overflow_policy: OverflowPolicy::Block,
            faults: FaultPlan::default(),
            scenario: None,
            cache_parents: None,
            recovery: RecoveryPolicy::None,
            timeseries_bin: SimDuration::from_secs(1),
            seed: 42,
            plane: ExecutionPlane::DiscreteEvent,
        }
    }
}

impl ExperimentConfig {
    /// Runs the experiment to completion on its configured
    /// [`ExecutionPlane`]. The same configuration (and thus the same
    /// transaction schedule) runs unchanged on either plane.
    pub fn run(self) -> ExperimentResult {
        match self.plane {
            ExecutionPlane::DiscreteEvent => Experiment::new(self).run(),
            ExecutionPlane::Live(options) => crate::plane::live::run(self, options),
        }
    }

    /// The same configuration, retargeted to another execution plane.
    pub fn on_plane(self, plane: ExecutionPlane) -> Self {
        ExperimentConfig { plane, ..self }
    }

    /// The fault plan both planes actually walk: the configured
    /// [`ExperimentConfig::faults`] with the scenario's crash/restart
    /// churn merged in (pause/resume churn stays outside the plan — it is
    /// applied through the live plane's pausable pipes instead).
    pub fn effective_faults(&self) -> FaultPlan {
        let mut plan = self.faults.clone();
        if let Some(spec) = &self.scenario {
            for event in spec.churn_events() {
                let kind = match event.action {
                    ChurnAction::Crash => FaultKind::Crash,
                    ChurnAction::Restart => FaultKind::Restart,
                    ChurnAction::Pause | ChurnAction::Resume => continue,
                };
                plan.push(FaultEvent {
                    at: event.at,
                    cache: CacheId(event.cache),
                    kind,
                });
            }
        }
        plan
    }
}

/// A fully wired discrete-event experiment, ready to run.
pub struct Experiment {
    pub(crate) config: ExperimentConfig,
    pub(crate) db: Arc<Database>,
    /// One cache per deployed column; `caches[i].id() == CacheId(i)`.
    pub(crate) caches: Vec<EdgeCache>,
    /// Configured loss rate of each cache's channel (same indexing).
    pub(crate) losses: Vec<f64>,
    pub(crate) fanout: InvalidationFanout,
    pub(crate) monitor: ConsistencyMonitor,
    pub(crate) timeseries: TimeSeries,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// Builds all components (database, caches, per-cache channels,
    /// monitor) from the configuration and populates the database.
    ///
    /// # Panics
    /// Panics if the configured [`CacheTopology`] deploys zero caches, or
    /// if the configuration needs live-plane machinery the discrete plane
    /// lacks (pause/resume churn, a two-tier `cache_parents` tree).
    pub fn new(config: ExperimentConfig) -> Self {
        assert!(config.caches.cache_count() > 0);
        if let Some(spec) = &config.scenario {
            assert!(
                !spec.has_pause_churn(),
                "pause/resume churn needs the live plane's pausable pipes"
            );
        }
        assert!(
            config.cache_parents.is_none(),
            "two-tier topology needs the live plane's reactor fan-out"
        );
        let object_count = match &config.scenario {
            Some(spec) => spec.object_count(),
            None => config.workload.build(config.seed).object_count() as u64,
        };
        let db = Arc::new(Database::new(DatabaseConfig {
            dependency_bound: config.cache.database_bound(),
            ..DatabaseConfig::default()
        }));
        db.populate((0..object_count).map(|i| (ObjectId(i), Value::new(0))));
        let losses = config.caches.losses(config.invalidation_loss);
        let caches: Vec<EdgeCache> = (0..losses.len())
            .map(|i| {
                let cache = config.cache.build(CacheId(i as u32), Arc::clone(&db));
                cache.set_recovery_policy(config.recovery);
                cache
            })
            .collect();
        // Each cache's channel is seeded from (seed, CacheId), so the loss
        // pattern a cache observes does not depend on how many other caches
        // are deployed or how events interleave.
        let pipe_capacity = config.pipe_capacity.unwrap_or(usize::MAX);
        let fanout = InvalidationFanout::new(
            config.seed,
            losses.iter().enumerate().map(|(i, &loss)| {
                CacheLink::uniform(CacheId(i as u32), loss, config.invalidation_delay)
                    .with_pipe(pipe_capacity, config.overflow_policy)
            }),
        );
        let timeseries = TimeSeries::new(config.timeseries_bin);
        Experiment {
            config,
            db,
            caches,
            losses,
            fanout,
            monitor: ConsistencyMonitor::new(),
            timeseries,
        }
    }

    /// The configuration this experiment was built from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Builds the transaction schedule and replays it against the
    /// discrete-event components, collecting the results.
    pub fn run(self) -> ExperimentResult {
        let schedule = Schedule::build(&self.config);
        crate::plane::discrete::execute(self, &schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            duration: SimDuration::from_secs(5),
            workload: WorkloadKind::PerfectClusters {
                objects: 500,
                cluster_size: 5,
            },
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn experiment_produces_traffic_at_the_configured_rates() {
        let result = quick_config().run();
        let reads = result.report.read_only_total() as f64;
        let updates = (result.report.updates_committed + result.report.updates_aborted) as f64;
        // 5 seconds at 500 and 100 txn/s respectively; allow generous slack.
        assert!((reads - 2500.0).abs() < 400.0, "read txns {reads}");
        assert!((updates - 500.0).abs() < 150.0, "update txns {updates}");
        assert!(result.hit_ratio() > 0.5);
        assert!(result.channel.sent > 0);
        let loss = result.channel.loss_ratio();
        assert!((loss - 0.2).abs() < 0.05, "channel loss {loss}");
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let a = quick_config().run();
        let b = quick_config().run();
        assert_eq!(a.report, b.report);
        assert_eq!(a.cache, b.cache);
        let mut other = quick_config();
        other.seed = 7;
        let c = other.run();
        assert_ne!(a.report, c.report);
    }

    #[test]
    fn plain_cache_commits_inconsistent_transactions() {
        let mut config = quick_config();
        config.cache = CacheKind::Plain;
        let result = config.run();
        assert_eq!(result.report.aborted_total(), 0);
        assert!(
            result.report.committed_inconsistent > 0,
            "with 20% invalidation loss the consistency-unaware cache must commit some inconsistent transactions"
        );
    }

    #[test]
    fn tcache_detects_most_inconsistencies_on_clustered_workloads() {
        let plain = {
            let mut c = quick_config();
            c.cache = CacheKind::Plain;
            c.run()
        };
        let tcache = {
            let mut c = quick_config();
            c.cache = CacheKind::TCache {
                dependency_bound: 5,
                strategy: Strategy::Abort,
            };
            c.run()
        };
        assert!(
            tcache.inconsistency_ratio() < plain.inconsistency_ratio(),
            "T-Cache ({}) must reduce the inconsistency ratio below the plain cache ({})",
            tcache.inconsistency_ratio(),
            plain.inconsistency_ratio()
        );
        assert!(tcache.report.aborted_total() > 0);
    }

    #[test]
    fn reliable_channel_produces_no_inconsistencies() {
        let mut config = quick_config();
        config.invalidation_loss = 0.0;
        config.invalidation_delay = SimDuration::ZERO;
        let result = config.run();
        assert_eq!(
            result.report.committed_inconsistent, 0,
            "without loss or delay every committed transaction is consistent"
        );
        assert_eq!(result.channel.dropped, 0);
    }

    #[test]
    fn multi_cache_run_reports_per_cache_and_aggregate_views() {
        let config = ExperimentConfig {
            caches: CacheTopology::PerCacheLoss(vec![0.0, 0.1, 0.2, 0.4]),
            ..quick_config()
        };
        let result = config.clone().run();
        assert_eq!(result.cache_count(), 4);

        // Per-cache read-only classifications partition the global report.
        let read_only_sum: u64 = result
            .per_cache
            .iter()
            .map(|c| c.report.read_only_total())
            .sum();
        assert_eq!(read_only_sum, result.report.read_only_total());
        let inconsistent_sum: u64 = result
            .per_cache
            .iter()
            .map(|c| c.report.committed_inconsistent)
            .sum();
        assert_eq!(inconsistent_sum, result.report.committed_inconsistent);

        // Channel and cache stats aggregate across the fan-out.
        let sent_sum: u64 = result.per_cache.iter().map(|c| c.channel.sent).sum();
        assert_eq!(sent_sum, result.channel.sent);
        let reads_sum: u64 = result.per_cache.iter().map(|c| c.cache.reads).sum();
        assert_eq!(reads_sum, result.cache.reads);

        // Every cache sees its own configured loss rate on its own channel.
        for column in &result.per_cache {
            assert!(
                (column.channel.loss_ratio() - column.loss).abs() < 0.07,
                "{}: observed loss {} configured {}",
                column.id,
                column.channel.loss_ratio(),
                column.loss
            );
            // Each cache serves roughly its share of the read traffic.
            let share = column.report.read_only_total() as f64 / read_only_sum as f64;
            assert!((share - 0.25).abs() < 0.1, "{} share {share}", column.id);
        }

        // Multi-cache runs are reproducible for a fixed seed.
        let again = config.run();
        assert_eq!(result.report, again.report);
        for (a, b) in result.per_cache.iter().zip(&again.per_cache) {
            assert_eq!(a.report, b.report);
            assert_eq!(a.cache, b.cache);
            assert_eq!(a.channel, b.channel);
        }
    }

    #[test]
    fn weighted_topology_skews_read_traffic_per_cache() {
        let config = ExperimentConfig {
            caches: CacheTopology::Weighted(vec![
                CacheSite::new(0.2, 3.0),
                CacheSite::new(0.2, 1.0),
            ]),
            ..quick_config()
        };
        let result = config.clone().run();
        assert_eq!(result.cache_count(), 2);
        let total: u64 = result
            .per_cache
            .iter()
            .map(|c| c.report.read_only_total())
            .sum();
        let share0 = result.per_cache[0].report.read_only_total() as f64 / total as f64;
        assert!(
            (share0 - 0.75).abs() < 0.06,
            "cache 0 must serve ~75% of the reads, got {share0}"
        );
        // The aggregate rate is preserved: 5 s at 500 txn/s.
        assert!((total as f64 - 2500.0).abs() < 400.0, "total reads {total}");
        // Weighted runs stay deterministic.
        let again = config.run();
        assert_eq!(result.report, again.report);
    }

    #[test]
    fn zero_weight_caches_field_no_clients() {
        let result = ExperimentConfig {
            caches: CacheTopology::Weighted(vec![
                CacheSite::new(0.2, 1.0),
                CacheSite::new(0.2, 0.0),
            ]),
            ..quick_config()
        }
        .run();
        assert_eq!(result.per_cache[1].report.read_only_total(), 0);
        assert!(result.per_cache[0].report.read_only_total() > 0);
        // The idle cache still receives invalidations on its own channel.
        assert!(result.per_cache[1].channel.sent > 0);
    }

    #[test]
    #[should_panic(expected = "client weight")]
    fn all_zero_weights_panic() {
        let _ = CacheTopology::Weighted(vec![CacheSite::new(0.0, 0.0)]).client_shares();
    }

    #[test]
    fn bounded_pipes_overflow_and_are_observable() {
        // A tiny pipe behind a long delay: the in-flight backlog exceeds
        // the capacity and the policy's counters must surface it.
        let base = ExperimentConfig {
            invalidation_loss: 0.0,
            invalidation_delay: SimDuration::from_millis(200),
            pipe_capacity: Some(4),
            ..quick_config()
        };
        let dropped = ExperimentConfig {
            overflow_policy: OverflowPolicy::DropOldest,
            ..base.clone()
        }
        .run();
        assert!(dropped.channel.overflowed > 0);
        assert_eq!(dropped.channel.stalled, 0);
        let blocked = ExperimentConfig {
            overflow_policy: OverflowPolicy::Block,
            ..base
        }
        .run();
        assert_eq!(blocked.channel.overflowed, 0);
        assert!(blocked.channel.stalled > 0);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn empty_topology_panics_at_construction() {
        let _ = Experiment::new(ExperimentConfig {
            caches: CacheTopology::Uniform(0),
            ..quick_config()
        });
    }

    #[test]
    fn uniform_topology_deploys_identical_caches() {
        let config = ExperimentConfig {
            caches: CacheTopology::Uniform(2),
            ..quick_config()
        };
        let result = config.run();
        assert_eq!(result.cache_count(), 2);
        for column in &result.per_cache {
            assert_eq!(column.loss, 0.2);
            assert!(column.report.read_only_total() > 0);
        }
        assert_eq!(
            result.per_cache_inconsistency_ratios().len(),
            2,
            "one headline ratio per cache"
        );
    }

    #[test]
    fn workload_kind_builders_produce_generators() {
        for kind in [
            WorkloadKind::PerfectClusters { objects: 100, cluster_size: 5 },
            WorkloadKind::ParetoClusters { objects: 100, cluster_size: 5, alpha: 1.0 },
            WorkloadKind::Uniform { objects: 100 },
            WorkloadKind::Drifting {
                objects: 100,
                cluster_size: 5,
                shift_every: SimDuration::from_secs(10),
            },
            WorkloadKind::PhaseShift {
                objects: 100,
                cluster_size: 5,
                switch_at: SimTime::from_secs(10),
            },
        ] {
            let mut generator = kind.build(1);
            assert_eq!(generator.object_count(), 100);
            let access = generator.generate(SimTime::ZERO, &mut StdRng::seed_from_u64(1));
            assert_eq!(access.len(), 5);
        }
        let retail = WorkloadKind::retail().build(1);
        assert_eq!(retail.object_count(), 1000);
        let social = WorkloadKind::social().build(1);
        assert_eq!(social.object_count(), 1000);
    }

    #[test]
    fn ttl_cache_lowers_hit_ratio() {
        let infinite = {
            let mut c = quick_config();
            c.cache = CacheKind::Plain;
            c.run()
        };
        let ttl = {
            let mut c = quick_config();
            c.cache = CacheKind::Ttl {
                ttl: SimDuration::from_millis(500),
            };
            c.run()
        };
        assert!(
            ttl.hit_ratio() < infinite.hit_ratio(),
            "a short TTL must reduce the hit ratio ({} vs {})",
            ttl.hit_ratio(),
            infinite.hit_ratio()
        );
        assert!(ttl.db_reads_per_second() > infinite.db_reads_per_second());
    }
}
