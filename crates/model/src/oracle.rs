//! Serializability oracles for model histories.
//!
//! The model checker needs two independent judgements about every completed
//! read set:
//!
//! * **ground truth** — is the read set *actually* serializable with the
//!   committed update history? Computed here by brute force
//!   ([`ground_truth_serializable`]), deliberately sharing no code with the
//!   monitor so invariants 2 and 3 (monitor soundness / completeness) are
//!   not circular;
//! * **the oracle under test** — what the consistency monitor would say.
//!   [`TwoTierOracle`] is the production verdict (interval test with SGT
//!   fallback); [`IntervalOnlyOracle`] is the intentionally-broken variant
//!   (first tier only) used to prove the checker detects oracle bugs and
//!   that the differential bridge reproduces them on the real stack.
//!
//! # Ground truth
//!
//! Updates conflict when their write sets intersect (every update reads
//! what it writes, so intersecting access sets imply write-write and
//! read-write conflicts); conflicting updates must keep version order in
//! any serial order, while disjoint updates commute. A read-only
//! transaction is serializable iff it can be placed at *some* point of such
//! a serial order — equivalently, iff there is a subset `S` of the
//! committed updates, downward-closed under the conflict precedence, whose
//! frontier matches every read: for each `(object, version)` read, the
//! newest update in `S` writing `object` installed exactly `version` (or
//! the object is untouched by `S` and `version` is the initial 0). With the
//! handful of updates a checked configuration scripts, enumerating all
//! `2^n` subsets is trivial.

use crate::config::ModelConfig;
use tcache_monitor::ConsistencyMonitor;
use tcache_types::{ObjectId, SimTime, TransactionRecord, TxnId, Version};

/// The transaction id the bridge and the model both assign to scripted
/// update `u` (kept away from read ids so records never collide).
pub fn update_txn_id(update: usize) -> TxnId {
    TxnId(1000 + update as u64)
}

/// The transaction id the bridge and the model both assign to scripted
/// read-only transaction `t`.
pub fn read_txn_id(txn: usize) -> TxnId {
    TxnId(100 + txn as u64)
}

/// One committed update as the oracles see it: the id, the versions
/// observed before the update and the versions written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleUpdate {
    /// Transaction id ([`update_txn_id`] of the update's index).
    pub txn: TxnId,
    /// The version assigned to the update.
    pub version: u64,
    /// `(object, version before the update)` for every accessed object.
    pub reads: Vec<(ObjectId, Version)>,
    /// `(object, new version)` for every written object.
    pub writes: Vec<(ObjectId, Version)>,
}

/// Derives the oracle-visible update history from a model state's
/// committed-update list (in commit order): before-versions are
/// reconstructed by replaying the history, exactly matching the
/// `UpdateCommit` records the real database emits.
pub fn history_of(config: &ModelConfig, committed: &[(usize, u64)]) -> Vec<OracleUpdate> {
    let mut current = vec![0u64; config.objects as usize];
    let mut history = Vec::with_capacity(committed.len());
    for &(update, version) in committed {
        let writes = &config.updates[update];
        let reads = writes
            .iter()
            .map(|&o| (ObjectId(o), Version(current[o as usize])))
            .collect();
        let written = writes
            .iter()
            .map(|&o| (ObjectId(o), Version(version)))
            .collect();
        for &o in writes {
            current[o as usize] = version;
        }
        history.push(OracleUpdate {
            txn: update_txn_id(update),
            version,
            reads,
            writes: written,
        });
    }
    history
}

/// Ground truth by subset enumeration (see the module docs). `history`
/// must be in version (= commit) order; `reads` are `(object, version)`
/// pairs with `0` meaning the initial version.
pub fn ground_truth_serializable(history: &[OracleUpdate], reads: &[(u64, u64)]) -> bool {
    let n = history.len();
    assert!(n < usize::BITS as usize, "history too large for subset enumeration");
    let write_set = |u: &OracleUpdate| u.writes.iter().map(|&(o, _)| o.0).collect::<Vec<_>>();
    let writes: Vec<Vec<u64>> = history.iter().map(write_set).collect();
    let conflicts = |i: usize, j: usize| writes[i].iter().any(|o| writes[j].contains(o));

    'subsets: for mask in 0u64..(1u64 << n) {
        // Downward closure: an update in S must be preceded by every
        // conflicting update with a smaller version.
        for j in 0..n {
            if mask & (1 << j) == 0 {
                continue;
            }
            for i in 0..j {
                if mask & (1 << i) == 0 && conflicts(i, j) {
                    continue 'subsets;
                }
            }
        }
        // Frontier: every read must observe exactly the newest version S
        // installed for its object.
        let frontier_matches = reads.iter().all(|&(object, version)| {
            let latest = (0..n)
                .filter(|&j| mask & (1 << j) != 0 && writes[j].contains(&object))
                .map(|j| history[j].version)
                .max()
                .unwrap_or(0);
            latest == version
        });
        if frontier_matches {
            return true;
        }
    }
    false
}

/// A serializability oracle queried on `(history, reads)` pairs.
pub trait SerializabilityOracle {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// `true` when the oracle judges `reads` consistent with `history`.
    fn consistent(&self, history: &[OracleUpdate], reads: &[(u64, u64)]) -> bool;
}

/// Feeds `history` into a fresh [`ConsistencyMonitor`], mirroring how the
/// live system reports update commits.
fn monitor_for(history: &[OracleUpdate]) -> ConsistencyMonitor {
    let mut monitor = ConsistencyMonitor::new();
    for update in history {
        monitor.record_update_commit(&TransactionRecord::update_committed(
            update.txn,
            update.reads.clone(),
            update.writes.clone(),
            SimTime(update.version),
        ));
    }
    monitor
}

fn to_typed(reads: &[(u64, u64)]) -> Vec<(ObjectId, Version)> {
    reads.iter().map(|&(o, v)| (ObjectId(o), Version(v))).collect()
}

/// The production monitor verdict: commit-order interval test with exact
/// SGT fallback (`ConsistencyMonitor::is_serializable`).
#[derive(Debug, Default, Clone, Copy)]
pub struct TwoTierOracle;

impl SerializabilityOracle for TwoTierOracle {
    fn name(&self) -> &'static str {
        "two-tier"
    }

    fn consistent(&self, history: &[OracleUpdate], reads: &[(u64, u64)]) -> bool {
        monitor_for(history).is_serializable(&to_typed(reads))
    }
}

/// The intentionally-broken oracle: the interval test *without* the SGT
/// fallback (`ConsistencyMonitor::interval_consistent`). Sound histories
/// made of commuting independent updates are mis-flagged, which the
/// checker must detect as a monitor-soundness violation.
#[derive(Debug, Default, Clone, Copy)]
pub struct IntervalOnlyOracle;

impl SerializabilityOracle for IntervalOnlyOracle {
    fn name(&self) -> &'static str {
        "interval-only"
    }

    fn consistent(&self, history: &[OracleUpdate], reads: &[(u64, u64)]) -> bool {
        monitor_for(history).interval_consistent(&to_typed(reads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn independent_history() -> Vec<OracleUpdate> {
        // u0 writes {0} at version 1, u1 writes {1} at version 2 — disjoint.
        history_of(&ModelConfig::independent_updates(), &[(0, 1), (1, 2)])
    }

    #[test]
    fn ground_truth_accepts_prefix_frontiers() {
        let config = ModelConfig::quick_core();
        let history = history_of(&config, &[(0, 1)]);
        // Before, and after, the joint update: serializable.
        assert!(ground_truth_serializable(&history, &[(0, 0), (1, 0)]));
        assert!(ground_truth_serializable(&history, &[(0, 1), (1, 1)]));
        // Torn across it: not serializable.
        assert!(!ground_truth_serializable(&history, &[(0, 0), (1, 1)]));
        assert!(!ground_truth_serializable(&history, &[(0, 1), (1, 0)]));
    }

    #[test]
    fn ground_truth_commutes_independent_updates() {
        let history = independent_history();
        // Every combination of old/new per object is serializable because
        // the updates commute.
        for a in [0, 1] {
            for b in [0, 2] {
                assert!(
                    ground_truth_serializable(&history, &[(0, a), (1, b)]),
                    "({a},{b}) should be serializable"
                );
            }
        }
        // A version nobody wrote is not.
        assert!(!ground_truth_serializable(&history, &[(0, 2)]));
    }

    #[test]
    fn two_tier_oracle_matches_truth_on_commuting_updates() {
        let history = independent_history();
        let reads = [(0u64, 0u64), (1u64, 2u64)];
        assert!(ground_truth_serializable(&history, &reads));
        assert!(TwoTierOracle.consistent(&history, &reads));
        // The broken first-tier-only oracle mis-flags the same reads.
        assert!(!IntervalOnlyOracle.consistent(&history, &reads));
    }

    #[test]
    fn history_reconstruction_tracks_before_versions() {
        let config = ModelConfig::truncated_log();
        let history = history_of(&config, &[(0, 1), (1, 2)]);
        assert_eq!(history[0].reads, vec![(ObjectId(0), Version(0)), (ObjectId(1), Version(0))]);
        assert_eq!(history[1].reads, vec![(ObjectId(0), Version(1))]);
        assert_eq!(history[1].writes, vec![(ObjectId(0), Version(2))]);
    }
}
