//! Checked configurations: the closed little worlds the explorer
//! enumerates.
//!
//! A [`ModelConfig`] fixes everything that is *not* explored: the number of
//! objects and caches, each cache's policy, the scripted update and
//! read-only transactions, the recovery policy and the fault budget. The
//! explorer then enumerates every interleaving of the scripted work with
//! deliveries, losses, reorders, faults and clock ticks.
//!
//! The named constructors ([`ModelConfig::quick_core`] and friends) are the
//! configurations the `model_check` bench binary runs; their exact shapes
//! (and the reachable-state counts they produce) are documented in
//! `docs/REPRODUCING.md`.

/// The cache policy a modeled cache runs, mirroring the
/// `CachePolicyConfig` presets the implementation offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachePolicyKind {
    /// The consistency-unaware baseline: no transaction records, no checks,
    /// dependency lists re-bounded to zero on install.
    Plain,
    /// T-Cache with an unbounded dependency list and the ABORT strategy —
    /// the configuration of Theorem 1.
    TCacheUnbounded,
}

impl CachePolicyKind {
    /// `true` when the policy runs the transactional consistency check.
    pub fn transactional(self) -> bool {
        matches!(self, CachePolicyKind::TCacheUnbounded)
    }

    /// The dependency-list bound entries are re-bounded to on install
    /// (mirrors `CachePolicyConfig::dependency_bound.limit()`).
    pub fn dependency_limit(self) -> usize {
        match self {
            CachePolicyKind::Plain => 0,
            CachePolicyKind::TCacheUnbounded => usize::MAX,
        }
    }
}

/// The recovery policy in force at every modeled cache, mirroring
/// `RecoveryPolicy` with time measured in logical clock ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelRecovery {
    /// No recovery machinery: gaps advance the stream position without
    /// resyncing and disconnected caches keep serving stale data forever.
    None,
    /// Gap-triggered and reconnect-time resyncs, with a staleness budget
    /// for partitioned caches (in ticks of the model's logical clock).
    GapResync {
        /// Ticks a disconnected cache may keep serving cached reads before
        /// degrading to pass-through.
        staleness_budget: u64,
    },
}

impl ModelRecovery {
    /// `true` when gaps and reconnects trigger resyncs.
    pub fn resyncs(self) -> bool {
        matches!(self, ModelRecovery::GapResync { .. })
    }

    /// The staleness budget, if one is configured.
    pub fn staleness_budget(self) -> Option<u64> {
        match self {
            ModelRecovery::None => None,
            ModelRecovery::GapResync { staleness_budget } => Some(staleness_budget),
        }
    }
}

/// One scripted read-only transaction: the cache that serves it and the
/// keys it reads, in order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReadScript {
    /// Index of the serving cache in [`ModelConfig::caches`].
    pub cache: usize,
    /// The object indices read, in order.
    pub keys: Vec<u64>,
}

/// Bounds on the adversarial actions, keeping the state space finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultBudget {
    /// Maximum number of cache crashes across the execution.
    pub crashes: u32,
    /// Maximum number of network partitions across the execution.
    pub partitions: u32,
    /// Maximum number of dropped invalidations across the execution.
    pub drops: u32,
    /// Maximum number of logical clock ticks.
    pub ticks: u32,
    /// How deep into a cache's in-flight queue an out-of-order delivery
    /// (or drop) may reach; `1` forbids reordering entirely.
    pub reorder_window: usize,
}

impl FaultBudget {
    /// No faults at all: pure interleaving of commits, deliveries and
    /// reads.
    pub fn none() -> Self {
        FaultBudget {
            crashes: 0,
            partitions: 0,
            drops: 0,
            ticks: 0,
            reorder_window: 1,
        }
    }
}

/// A complete checked configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Scenario name (used in reports).
    pub name: &'static str,
    /// Number of objects in the backend store (indices `0..objects`).
    pub objects: u64,
    /// The caches and their policies.
    pub caches: Vec<CachePolicyKind>,
    /// The update transactions available to commit (each at most once);
    /// every inner vector is the update's write set as sorted, distinct
    /// object indices.
    pub updates: Vec<Vec<u64>>,
    /// The scripted read-only transactions.
    pub reads: Vec<ReadScript>,
    /// The recovery policy applied to every cache.
    pub recovery: ModelRecovery,
    /// Capacity of the backend's invalidation log ring buffer.
    pub log_capacity: usize,
    /// The fault budget.
    pub faults: FaultBudget,
}

impl ModelConfig {
    /// Validates internal consistency (indices in range, write sets sorted
    /// and distinct, scripts non-empty). Returns a description of the first
    /// problem found.
    ///
    /// # Errors
    /// A human-readable description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.objects == 0 {
            return Err("config needs at least one object".into());
        }
        if self.caches.is_empty() {
            return Err("config needs at least one cache".into());
        }
        if self.log_capacity == 0 {
            return Err("invalidation log capacity must be positive".into());
        }
        if self.faults.reorder_window == 0 {
            return Err("reorder window must be at least 1".into());
        }
        for (i, write_set) in self.updates.iter().enumerate() {
            if write_set.is_empty() {
                return Err(format!("update {i} has an empty write set"));
            }
            if !write_set.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("update {i} write set must be sorted and distinct"));
            }
            if write_set.iter().any(|&o| o >= self.objects) {
                return Err(format!("update {i} references an unknown object"));
            }
        }
        for (i, script) in self.reads.iter().enumerate() {
            if script.keys.is_empty() {
                return Err(format!("read script {i} is empty"));
            }
            if script.cache >= self.caches.len() {
                return Err(format!("read script {i} references an unknown cache"));
            }
            if script.keys.iter().any(|&o| o >= self.objects) {
                return Err(format!("read script {i} references an unknown object"));
            }
        }
        Ok(())
    }

    /// The quick gating configuration: 2 caches (one T-Cache, one plain) ×
    /// 2 objects × 3 transactions (one joint update, one read-only script
    /// per cache), with drops, reordering, one crash, one partition and
    /// enough ticks to exhaust the staleness budget. Exhaustively explored
    /// by `model_check --quick` in CI.
    pub fn quick_core() -> Self {
        ModelConfig {
            name: "quick-core",
            objects: 2,
            caches: vec![CachePolicyKind::TCacheUnbounded, CachePolicyKind::Plain],
            updates: vec![vec![0, 1]],
            reads: vec![
                ReadScript {
                    cache: 0,
                    keys: vec![0, 1],
                },
                ReadScript {
                    cache: 1,
                    keys: vec![0, 1],
                },
            ],
            recovery: ModelRecovery::GapResync {
                staleness_budget: 1,
            },
            log_capacity: 4,
            faults: FaultBudget {
                crashes: 1,
                partitions: 1,
                drops: 2,
                ticks: 2,
                reorder_window: 2,
            },
        }
    }

    /// Two independent (write-set-disjoint) updates racing two read-only
    /// scripts. This is where commuting histories live: the commit-order
    /// interval test alone mis-flags them, so the two-tier monitor's SGT
    /// fallback is load-bearing — and the seeded interval-only oracle
    /// produces its soundness counterexample here.
    pub fn independent_updates() -> Self {
        ModelConfig {
            name: "independent-updates",
            objects: 2,
            caches: vec![CachePolicyKind::TCacheUnbounded, CachePolicyKind::Plain],
            updates: vec![vec![0], vec![1]],
            reads: vec![
                ReadScript {
                    cache: 0,
                    keys: vec![0, 1],
                },
                ReadScript {
                    cache: 1,
                    keys: vec![0, 1],
                },
            ],
            recovery: ModelRecovery::GapResync {
                staleness_budget: 1,
            },
            log_capacity: 4,
            faults: FaultBudget {
                crashes: 0,
                partitions: 1,
                drops: 1,
                ticks: 2,
                reorder_window: 2,
            },
        }
    }

    /// A single-slot invalidation log under two sequential updates: every
    /// gap resync lands past the retained suffix, forcing the
    /// snapshot-resync (store drop) path rather than a log replay.
    pub fn truncated_log() -> Self {
        ModelConfig {
            name: "truncated-log",
            objects: 2,
            caches: vec![CachePolicyKind::TCacheUnbounded],
            updates: vec![vec![0, 1], vec![0]],
            reads: vec![ReadScript {
                cache: 0,
                keys: vec![0, 1],
            }],
            recovery: ModelRecovery::GapResync {
                staleness_budget: 1,
            },
            log_capacity: 1,
            faults: FaultBudget {
                crashes: 0,
                partitions: 1,
                drops: 2,
                ticks: 2,
                reorder_window: 2,
            },
        }
    }

    /// The distinguisher for invariant 4: the same world as
    /// [`ModelConfig::quick_core`] but with [`ModelRecovery::None`], where
    /// a dropped invalidation leaves a healthy cache serving a version
    /// older than the stream position it has acknowledged. Checked
    /// *expecting* a recovery-safety violation.
    pub fn no_recovery() -> Self {
        ModelConfig {
            name: "no-recovery",
            recovery: ModelRecovery::None,
            ..ModelConfig::quick_core()
        }
    }

    /// The scenarios `model_check --quick` runs (all expected to satisfy
    /// every invariant).
    pub fn quick_suite() -> Vec<ModelConfig> {
        vec![ModelConfig::quick_core()]
    }

    /// The full scenario sweep (`model_check` without `--quick`).
    pub fn full_suite() -> Vec<ModelConfig> {
        vec![
            ModelConfig::quick_core(),
            ModelConfig::independent_updates(),
            ModelConfig::truncated_log(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_configs_validate() {
        for config in ModelConfig::full_suite() {
            config.validate().expect("shipped config must validate");
        }
        ModelConfig::no_recovery().validate().unwrap();
    }

    #[test]
    fn validation_rejects_malformed_configs() {
        let mut config = ModelConfig::quick_core();
        config.updates.push(vec![1, 0]);
        assert!(config.validate().is_err());

        let mut config = ModelConfig::quick_core();
        config.reads[0].cache = 9;
        assert!(config.validate().is_err());

        let mut config = ModelConfig::quick_core();
        config.log_capacity = 0;
        assert!(config.validate().is_err());
    }
}
