//! The four checked invariants.
//!
//! 1. **Theorem-1 serializability** — every *committed* read-only
//!    transaction served by a T-Cache (unbounded dependency lists, ABORT
//!    strategy) is serializable with the committed update history, per
//!    ground truth.
//! 2. **Monitor soundness** — the monitor never flags a genuinely
//!    serializable read set.
//! 3. **Monitor completeness** — every genuinely non-serializable read set
//!    (plain caches produce them) is flagged.
//! 4. **Recovery safety** — under `GapResync`, a *healthy* cache never
//!    caches a version older than the newest version the invalidation
//!    stream announced for that object up to the cache's acknowledged
//!    position. (Disconnected caches are exempt while within the staleness
//!    budget — that bounded staleness is the budget's whole point — and
//!    degraded caches no longer serve cached reads.)
//!
//! Invariants 1–3 are *edge* properties: they are evaluated exactly when a
//! transaction finishes, against the update history at that moment — the
//! same moment the live monitor classifies the transaction. Invariant 4 is
//! a *state* property checked on every reachable state.
//!
//! Verdicts are memoized per `(history, reads)`: distinct histories in a
//! checked configuration number in the dozens, so both the brute-force
//! ground truth and the rebuilt-monitor oracle stay cheap even across
//! hundreds of thousands of transitions.

use crate::config::ModelConfig;
use crate::oracle::{ground_truth_serializable, history_of, SerializabilityOracle};
use crate::state::{ModelState, TxnOutcome};
use std::collections::HashMap;
use std::fmt;

/// Which invariant a violation breaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Theorem 1: committed T-Cache read-only transactions serializable.
    TheoremOneSerializability,
    /// The monitor flagged a serializable read set.
    MonitorSoundness,
    /// The monitor missed a non-serializable read set.
    MonitorCompleteness,
    /// A healthy cache under `GapResync` holds a version older than its
    /// acknowledged stream position announces.
    RecoverySafety,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::TheoremOneSerializability => "theorem-1-serializability",
            InvariantKind::MonitorSoundness => "monitor-soundness",
            InvariantKind::MonitorCompleteness => "monitor-completeness",
            InvariantKind::RecoverySafety => "recovery-safety",
        };
        f.write_str(name)
    }
}

/// A concrete invariant violation found in some reachable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The breached invariant.
    pub kind: InvariantKind,
    /// The read-only transaction involved (invariants 1–3).
    pub txn: Option<usize>,
    /// The cache involved (invariant 4).
    pub cache: Option<usize>,
    /// Human-readable description with the offending data.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Memo key: the committed-update list paired with a transaction's
/// observed `(object, version)` reads — verdicts depend on nothing else.
type VerdictKey = (Vec<(usize, u64)>, Vec<(u64, u64)>);

/// Stateful checker carrying the memoized oracle/ground-truth verdicts.
pub struct InvariantChecker<'a> {
    config: &'a ModelConfig,
    oracle: &'a dyn SerializabilityOracle,
    truth_memo: HashMap<VerdictKey, bool>,
    oracle_memo: HashMap<VerdictKey, bool>,
    /// Number of finish-edge (invariant 1–3) evaluations performed.
    pub finish_checks: u64,
    force_recovery: bool,
}

impl<'a> InvariantChecker<'a> {
    /// Creates a checker for `config` judging the monitor through
    /// `oracle`.
    pub fn new(config: &'a ModelConfig, oracle: &'a dyn SerializabilityOracle) -> Self {
        InvariantChecker {
            config,
            oracle,
            truth_memo: HashMap::new(),
            oracle_memo: HashMap::new(),
            finish_checks: 0,
            force_recovery: false,
        }
    }

    /// Evaluates the recovery-safety predicate even when the configured
    /// policy never resyncs. Invariant 4 is only *guaranteed* under
    /// `GapResync`; forcing the check on a `ModelRecovery::None`
    /// configuration demonstrates that the guarantee is load-bearing (the
    /// shipped `no-recovery` scenario does exactly that).
    #[must_use]
    pub fn with_forced_recovery_check(mut self) -> Self {
        self.force_recovery = true;
        self
    }

    fn truth(&mut self, committed: &[(usize, u64)], reads: &[(u64, u64)]) -> bool {
        let key = (committed.to_vec(), reads.to_vec());
        if let Some(&verdict) = self.truth_memo.get(&key) {
            return verdict;
        }
        let history = history_of(self.config, committed);
        let verdict = ground_truth_serializable(&history, reads);
        self.truth_memo.insert(key, verdict);
        verdict
    }

    fn oracle_verdict(&mut self, committed: &[(usize, u64)], reads: &[(u64, u64)]) -> bool {
        let key = (committed.to_vec(), reads.to_vec());
        if let Some(&verdict) = self.oracle_memo.get(&key) {
            return verdict;
        }
        let history = history_of(self.config, committed);
        let verdict = self.oracle.consistent(&history, reads);
        self.oracle_memo.insert(key, verdict);
        verdict
    }

    /// Checks the state property (invariant 4) on `state`.
    pub fn check_state(&mut self, state: &ModelState) -> Option<InvariantViolation> {
        if !self.config.recovery.resyncs() && !self.force_recovery {
            return None;
        }
        let stream = state.full_stream(self.config);
        for (c, cache) in state.caches.iter().enumerate() {
            if cache.status != crate::state::CacheStatus::Healthy {
                continue;
            }
            for (&object, entry) in &cache.store {
                let announced = stream
                    .iter()
                    .filter(|inv| inv.seq <= cache.last_seq && inv.object == object)
                    .map(|inv| inv.version)
                    .max()
                    .unwrap_or(0);
                if entry.version < announced {
                    return Some(InvariantViolation {
                        kind: InvariantKind::RecoverySafety,
                        txn: None,
                        cache: Some(c),
                        detail: format!(
                            "healthy cache {c} caches object {object} at version {} \
                             but acknowledged stream position {} announcing version {}",
                            entry.version, cache.last_seq, announced
                        ),
                    });
                }
            }
        }
        None
    }

    /// Checks the edge properties (invariants 1–3) for every transaction
    /// that finished in the `prev → next` transition.
    pub fn check_edge(
        &mut self,
        prev: &ModelState,
        next: &ModelState,
    ) -> Option<InvariantViolation> {
        for (t, txn) in next.txns.iter().enumerate() {
            if prev.txns[t].finished() || !txn.finished() {
                continue;
            }
            self.finish_checks += 1;
            let reads = txn.observed.clone();
            let truth = self.truth(&next.committed, &reads);
            let oracle = self.oracle_verdict(&next.committed, &reads);
            let committed = txn.outcome == Some(TxnOutcome::Committed);
            let tcache = self.config.caches[self.config.reads[t].cache].transactional();

            if tcache && committed && !truth {
                return Some(InvariantViolation {
                    kind: InvariantKind::TheoremOneSerializability,
                    txn: Some(t),
                    cache: Some(self.config.reads[t].cache),
                    detail: format!(
                        "committed T-Cache read-only txn {t} observed {reads:?}, \
                         not serializable with history {:?}",
                        next.committed
                    ),
                });
            }
            if truth && !oracle {
                return Some(InvariantViolation {
                    kind: InvariantKind::MonitorSoundness,
                    txn: Some(t),
                    cache: Some(self.config.reads[t].cache),
                    detail: format!(
                        "oracle `{}` flags serializable reads {reads:?} of txn {t} \
                         against history {:?}",
                        self.oracle.name(),
                        next.committed
                    ),
                });
            }
            if !truth && oracle {
                return Some(InvariantViolation {
                    kind: InvariantKind::MonitorCompleteness,
                    txn: Some(t),
                    cache: Some(self.config.reads[t].cache),
                    detail: format!(
                        "oracle `{}` accepts non-serializable reads {reads:?} of txn {t} \
                         against history {:?}",
                        self.oracle.name(),
                        next.committed
                    ),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TwoTierOracle;
    use tcache_types::ProtocolAction;

    #[test]
    fn recovery_safety_flags_stale_entry_after_unresynced_gap() {
        // Under RecoveryPolicy::None a dropped invalidation leaves the
        // healthy cache holding o0@0 while its stream position acknowledges
        // seq 2 (which announced o0@1).
        let config = ModelConfig::no_recovery();
        let oracle = TwoTierOracle;
        let mut state = crate::state::ModelState::initial(&config);
        for action in [
            ProtocolAction::ReadStep { txn: 0 },
            ProtocolAction::UpdateCommit { update: 0 },
            ProtocolAction::DropInvalidation { cache: 0, index: 0 },
            ProtocolAction::Deliver { cache: 0, index: 0 },
        ] {
            state = state.apply(&config, action).expect("enabled");
        }
        // The invariant-4 *predicate* fires on this state; the shipped
        // no-recovery scenario exists exactly to demonstrate it.
        let mut checker = InvariantChecker::new(&config, &oracle).with_forced_recovery_check();
        let violation = checker.check_state(&state).expect("stale entry flagged");
        assert_eq!(violation.kind, InvariantKind::RecoverySafety);
        assert_eq!(violation.cache, Some(0));
    }

    #[test]
    fn clean_history_passes_all_edge_checks() {
        let config = ModelConfig::quick_core();
        let oracle = TwoTierOracle;
        let mut checker = InvariantChecker::new(&config, &oracle);
        let mut prev = crate::state::ModelState::initial(&config);
        for action in [
            ProtocolAction::UpdateCommit { update: 0 },
            ProtocolAction::ReadStep { txn: 0 },
            ProtocolAction::ReadStep { txn: 0 },
        ] {
            let next = prev.apply(&config, action).expect("enabled");
            assert!(checker.check_edge(&prev, &next).is_none());
            assert!(checker.check_state(&next).is_none());
            prev = next;
        }
        assert_eq!(checker.finish_checks, 1);
    }
}
