//! Exhaustive interleaving model of the epoch-reclamation read path.
//!
//! `tcache_types::epoch::EpochDomain` protects the cache's lock-free read
//! side: readers pin an epoch before traversing published pointers, writers
//! retire unlinked nodes into an epoch-tagged queue, and reclamation only
//! runs once the global epoch has advanced past every reader that could
//! still hold the pointer. The safety argument lives as prose in that
//! module; this model checks it *mechanically* at the abstraction level
//! where the races actually happen — the individual loads, increments and
//! CASes of the protocol, not whole operations.
//!
//! Two models live here:
//!
//! * [`explore_epoch`] — readers (`read epoch → increment pin slot →
//!   validate → load published pointer → dereference → unpin`) interleaved
//!   with a writer (`swap published pointer → retire old node at the
//!   current epoch`) and an advancer (`check prior-epoch pin slot → CAS
//!   epoch → reclaim nodes whose retire epoch is ≥ grace behind`). The
//!   advancer runs as an independent pseudo-thread, which over-approximates
//!   the implementation (where `try_advance` is called from `defer` and
//!   guard drop) — strictly more schedules, so safety here implies safety
//!   there. The invariant: **no reader ever dereferences a reclaimed
//!   node**. Knobs deliberately break the protocol — [`EpochModelConfig::ungated_advance`]
//!   skips the pin-slot check and [`EpochModelConfig::short_grace`] reclaims
//!   one epoch early — so `model_check` can demonstrate the model *detects*
//!   use-after-reclaim, not merely that the healthy config passes.
//!
//! * [`explore_floor`] — the invalidation/apply race on one cache slot:
//!   an installer (floor veto, newer-cached veto, install) racing an
//!   invalidator (raise floor, unlink strictly older). The invariant: **no
//!   invalidation is lost** — once an invalidation to floor `f` completes,
//!   the slot never holds a version `< f`. With the stripe write lock
//!   ([`FloorModelConfig::locked`]) each logical op is one atomic
//!   transition and the invariant holds; with the lock removed the
//!   check/install split loses the race, which is exactly why
//!   `EpochShardedStorage` keeps its writers serialized per stripe even
//!   though readers go lock-free.
//!
//! Both explorers are plain hand-rolled BFS over hashable states, in the
//! style of [`crate::explore()`], with parent links for counterexample
//! reconstruction. State spaces are tiny (thousands of states) so the
//! exploration is exact, not sampled.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Number of pin-count slots in the epoch domain (epochs alias mod 3).
const SLOTS: u64 = 3;

/// Hard cap on discovered states; hit only by a runaway configuration.
const MAX_STATES: usize = 4_000_000;

/// Scenario parameters for the reclamation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochModelConfig {
    /// Scenario name for reports.
    pub name: &'static str,
    /// Concurrent reader threads (each runs `passes` full read cycles).
    pub readers: usize,
    /// Pointer swaps the writer performs (each retires the old node).
    pub installs: u8,
    /// Read cycles per reader.
    pub passes: u8,
    /// Upper bound on the global epoch (bounds the advancer).
    pub max_epoch: u64,
    /// Epochs a retired node must age before reclamation
    /// (`retired_at + grace <= epoch`); the implementation uses 3.
    pub grace: u64,
    /// Re-validate the global epoch after incrementing the pin slot,
    /// undoing and retrying on a mismatch (the implementation's pin loop).
    pub validate_pin: bool,
    /// Gate epoch advance on the prior epoch's pin slot being empty.
    pub gate_advance: bool,
}

impl EpochModelConfig {
    /// The protocol as implemented: grace 3, validated pins, gated
    /// advance. Must hold exhaustively.
    pub fn faithful() -> Self {
        EpochModelConfig {
            name: "epoch_faithful",
            readers: 2,
            installs: 2,
            passes: 1,
            max_epoch: 8,
            grace: 3,
            validate_pin: true,
            gate_advance: true,
        }
    }

    /// Advance ignores pin slots entirely. The grace period alone cannot
    /// protect a pinned reader, so the model must find a reader
    /// dereferencing a reclaimed node.
    pub fn ungated_advance() -> Self {
        EpochModelConfig {
            name: "epoch_ungated_advance",
            gate_advance: false,
            ..Self::faithful()
        }
    }

    /// Reclaim after one epoch instead of three. The pin-slot gate only
    /// inspects one slot per advance, so a single epoch of aging is not
    /// enough; the model must find a use-after-reclaim.
    pub fn short_grace() -> Self {
        EpochModelConfig {
            name: "epoch_short_grace",
            grace: 1,
            ..Self::faithful()
        }
    }
}

/// Where a single reader is in its pin/load/deref cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReaderPhase {
    /// Between passes (or done, when no passes remain).
    Idle,
    /// Read the global epoch as `epoch`, not yet pinned.
    Observed {
        /// The epoch value the reader sampled.
        epoch: u64,
    },
    /// Incremented `pins[epoch % 3]`; validation still pending.
    Incremented {
        /// The epoch the reader sampled before incrementing.
        epoch: u64,
    },
    /// Pin validated (or validation disabled); safe-by-protocol window.
    Pinned {
        /// Pin slot the reader occupies.
        slot: u8,
    },
    /// Loaded the published pointer while pinned.
    Loaded {
        /// Pin slot the reader occupies.
        slot: u8,
        /// Generation of the node the reader loaded.
        gen: u8,
    },
    /// Dereferenced the node (the invariant check); ready to unpin.
    Checked {
        /// Pin slot the reader occupies.
        slot: u8,
    },
}

/// Writer program counter: swap and retire alternate per install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WriterPc {
    /// Next step publishes a fresh node, unlinking the current one.
    Swap,
    /// Next step retires the unlinked node at the then-current epoch.
    Retire {
        /// Generation of the node awaiting retirement.
        old: u8,
    },
}

/// One interleaving state of the reclamation model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    epoch: u64,
    pins: [u8; SLOTS as usize],
    published: u8,
    installs_done: u8,
    writer: WriterPc,
    /// Retired nodes as `(gen, retired_at)`, kept sorted for canonical
    /// hashing (generations are unique).
    retired: Vec<(u8, u64)>,
    /// Bitmask over generations already reclaimed.
    reclaimed: u8,
    /// Epoch observed by a pending advance (between check and CAS).
    advance_obs: Option<u64>,
    readers: Vec<(ReaderPhase, u8)>,
}

impl State {
    fn initial(config: &EpochModelConfig) -> Self {
        State {
            epoch: 0,
            pins: [0; SLOTS as usize],
            published: 0,
            installs_done: 0,
            writer: WriterPc::Swap,
            retired: Vec::new(),
            reclaimed: 0,
            advance_obs: None,
            readers: vec![(ReaderPhase::Idle, config.passes); config.readers],
        }
    }
}

/// One atomic step of the reclamation model (reader index where relevant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    ReadEpoch(usize),
    IncPin(usize),
    Validate(usize),
    Load(usize),
    Deref(usize),
    Unpin(usize),
    Swap,
    Retire,
    AdvanceCheck,
    AdvanceCas,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Action::ReadEpoch(r) => write!(f, "reader{r}: read epoch"),
            Action::IncPin(r) => write!(f, "reader{r}: increment pin slot"),
            Action::Validate(r) => write!(f, "reader{r}: validate epoch"),
            Action::Load(r) => write!(f, "reader{r}: load published pointer"),
            Action::Deref(r) => write!(f, "reader{r}: dereference"),
            Action::Unpin(r) => write!(f, "reader{r}: unpin"),
            Action::Swap => write!(f, "writer: swap published pointer"),
            Action::Retire => write!(f, "writer: retire old node"),
            Action::AdvanceCheck => write!(f, "advancer: prior-epoch pin check"),
            Action::AdvanceCas => write!(f, "advancer: CAS epoch + reclaim"),
        }
    }
}

/// Statistics of one exhaustive exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochStats {
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions generated (including edges into visited states).
    pub transitions: u64,
    /// Depth of the deepest newly-discovered state.
    pub depth: usize,
    /// Reclamation events (non-vacuity: the invariant was actually
    /// exercised, not just trivially unreachable).
    pub reclaims: u64,
    /// True if the state bound (`MAX_STATES`) was hit and the exploration
    /// is incomplete.
    pub truncated: bool,
}

/// A counterexample: what went wrong plus the interleaving reaching it.
#[derive(Debug, Clone)]
pub struct EpochViolation {
    /// Human-readable description of the violated invariant.
    pub description: String,
    /// The action sequence from the initial state to the violation.
    pub trace: Vec<String>,
}

impl fmt::Display for EpochViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.description)
    }
}

/// Result of [`explore_epoch`] / [`explore_floor`].
#[derive(Debug, Clone)]
pub struct EpochExploration {
    /// Exploration statistics (exact when no violation and not truncated).
    pub stats: EpochStats,
    /// First violation found (BFS order: depth-minimal), if any.
    pub violation: Option<EpochViolation>,
}

/// Every enabled successor of `state`, with the invariant checked on
/// dereference steps.
fn successors(
    state: &State,
    config: &EpochModelConfig,
) -> Vec<(Action, State, Option<String>, bool)> {
    let mut out = Vec::new();

    for (r, &(phase, passes_left)) in state.readers.iter().enumerate() {
        match phase {
            ReaderPhase::Idle if passes_left > 0 => {
                let mut next = state.clone();
                next.readers[r].0 = ReaderPhase::Observed { epoch: state.epoch };
                out.push((Action::ReadEpoch(r), next, None, false));
            }
            ReaderPhase::Idle => {}
            ReaderPhase::Observed { epoch } => {
                let mut next = state.clone();
                let slot = (epoch % SLOTS) as usize;
                next.pins[slot] += 1;
                next.readers[r].0 = if config.validate_pin {
                    ReaderPhase::Incremented { epoch }
                } else {
                    ReaderPhase::Pinned { slot: slot as u8 }
                };
                out.push((Action::IncPin(r), next, None, false));
            }
            ReaderPhase::Incremented { epoch } => {
                let mut next = state.clone();
                let slot = (epoch % SLOTS) as usize;
                if state.epoch == epoch {
                    next.readers[r].0 = ReaderPhase::Pinned { slot: slot as u8 };
                } else {
                    // Stale sample: undo the increment and retry the pin.
                    next.pins[slot] -= 1;
                    next.readers[r].0 = ReaderPhase::Idle;
                }
                out.push((Action::Validate(r), next, None, false));
            }
            ReaderPhase::Pinned { slot } => {
                let mut next = state.clone();
                next.readers[r].0 = ReaderPhase::Loaded {
                    slot,
                    gen: state.published,
                };
                out.push((Action::Load(r), next, None, false));
            }
            ReaderPhase::Loaded { slot, gen } => {
                let mut next = state.clone();
                next.readers[r].0 = ReaderPhase::Checked { slot };
                let violation = (state.reclaimed & (1 << gen) != 0).then(|| {
                    format!(
                        "reader{r} dereferenced reclaimed node g{gen} \
                         (epoch {}, pins {:?})",
                        state.epoch, state.pins
                    )
                });
                out.push((Action::Deref(r), next, violation, false));
            }
            ReaderPhase::Checked { slot } => {
                let mut next = state.clone();
                next.pins[slot as usize] -= 1;
                next.readers[r] = (ReaderPhase::Idle, passes_left - 1);
                out.push((Action::Unpin(r), next, None, false));
            }
        }
    }

    if state.installs_done < config.installs {
        match state.writer {
            WriterPc::Swap => {
                let mut next = state.clone();
                next.published = state.installs_done + 1;
                next.writer = WriterPc::Retire {
                    old: state.published,
                };
                out.push((Action::Swap, next, None, false));
            }
            WriterPc::Retire { old } => {
                let mut next = state.clone();
                let at = state.epoch;
                let pos = next.retired.partition_point(|&(g, _)| g < old);
                next.retired.insert(pos, (old, at));
                next.installs_done += 1;
                next.writer = WriterPc::Swap;
                out.push((Action::Retire, next, None, false));
            }
        }
    }

    match state.advance_obs {
        None if state.epoch < config.max_epoch => {
            let prior_slot = ((state.epoch + SLOTS - 1) % SLOTS) as usize;
            if !config.gate_advance || state.pins[prior_slot] == 0 {
                let mut next = state.clone();
                next.advance_obs = Some(state.epoch);
                out.push((Action::AdvanceCheck, next, None, false));
            }
        }
        None => {}
        Some(observed) => {
            let mut next = state.clone();
            next.advance_obs = None;
            let mut reclaimed_now = false;
            if state.epoch == observed {
                next.epoch = observed + 1;
                let epoch = next.epoch;
                next.retired.retain(|&(gen, at)| {
                    if at + config.grace <= epoch {
                        next.reclaimed |= 1 << gen;
                        reclaimed_now = true;
                        false
                    } else {
                        true
                    }
                });
            }
            out.push((Action::AdvanceCas, next, None, reclaimed_now));
        }
    }

    out
}

/// Exhaustive BFS over every interleaving of `config`, checking that no
/// reader dereferences a reclaimed node.
pub fn explore_epoch(config: &EpochModelConfig) -> EpochExploration {
    let initial = State::initial(config);
    let mut states = vec![initial.clone()];
    let mut index: HashMap<State, usize> = HashMap::from([(initial, 0)]);
    let mut parents: Vec<Option<(usize, Action)>> = vec![None];
    let mut depths = vec![0usize];
    let mut queue = VecDeque::from([0usize]);
    let mut stats = EpochStats {
        states: 1,
        ..EpochStats::default()
    };

    while let Some(current) = queue.pop_front() {
        let state = states[current].clone();
        for (action, next, violation, reclaimed_now) in successors(&state, config) {
            stats.transitions += 1;
            if reclaimed_now {
                stats.reclaims += 1;
            }
            if let Some(description) = violation {
                let mut trace = vec![action.to_string()];
                let mut at = current;
                while let Some((parent, step)) = parents[at] {
                    trace.push(step.to_string());
                    at = parent;
                }
                trace.reverse();
                return EpochExploration {
                    stats,
                    violation: Some(EpochViolation { description, trace }),
                };
            }
            if index.contains_key(&next) {
                continue;
            }
            if stats.states >= MAX_STATES {
                stats.truncated = true;
                return EpochExploration {
                    stats,
                    violation: None,
                };
            }
            let id = states.len();
            index.insert(next.clone(), id);
            states.push(next);
            parents.push(Some((current, action)));
            let depth = depths[current] + 1;
            depths.push(depth);
            stats.depth = stats.depth.max(depth);
            stats.states += 1;
            queue.push_back(id);
        }
    }

    EpochExploration {
        stats,
        violation: None,
    }
}

// ---------------------------------------------------------------------------
// Invalidation/apply floor model
// ---------------------------------------------------------------------------

/// Scenario parameters for the invalidation floor model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloorModelConfig {
    /// Scenario name for reports.
    pub name: &'static str,
    /// Versions the installer tries to cache, in order.
    pub installs: [u64; 2],
    /// Floor the invalidator raises the slot to.
    pub floor: u64,
    /// Run each logical operation (floor-check + install; raise + unlink)
    /// as one atomic transition — the per-stripe write lock. When `false`
    /// every sub-step interleaves freely.
    pub locked: bool,
}

impl FloorModelConfig {
    /// The implementation: writers serialized per stripe. Must hold.
    pub fn locked() -> Self {
        FloorModelConfig {
            name: "floor_locked",
            installs: [1, 3],
            floor: 2,
            locked: true,
        }
    }

    /// The stripe lock removed: the floor check and the entry install
    /// interleave with the invalidator, and an invalidation can be lost.
    pub fn unlocked() -> Self {
        FloorModelConfig {
            name: "floor_unlocked",
            locked: false,
            ..Self::locked()
        }
    }
}

/// One interleaving state of the floor model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FloorState {
    /// Cached version, if any.
    entry: Option<u64>,
    /// Admission floor of the slot.
    floor: u64,
    /// Index of the installer's next script entry.
    install_idx: u8,
    /// Pending split install: `Some((version, passed_checks))` between the
    /// installer's check and install steps.
    pending: Option<(u64, bool)>,
    /// Invalidator program counter: 0 = raise, 1 = unlink, 2 = done.
    invalidator_pc: u8,
}

/// One atomic step of the floor model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FloorAction {
    CheckFloor(u64),
    Install(u64),
    InstallAtomic(u64),
    RaiseFloor,
    UnlinkOlder,
    InvalidateAtomic,
    InvalidateDone,
}

impl fmt::Display for FloorAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FloorAction::CheckFloor(v) => write!(f, "installer: floor/newer check for v{v}"),
            FloorAction::Install(v) => write!(f, "installer: install v{v}"),
            FloorAction::InstallAtomic(v) => write!(f, "installer: check+install v{v} (locked)"),
            FloorAction::RaiseFloor => write!(f, "invalidator: raise floor"),
            FloorAction::UnlinkOlder => write!(f, "invalidator: unlink strictly older"),
            FloorAction::InvalidateAtomic => write!(f, "invalidator: raise+unlink (locked)"),
            FloorAction::InvalidateDone => write!(f, "invalidator: done"),
        }
    }
}

/// The floor check and newer-cached veto as `CacheStorage::insert`
/// performs them.
fn install_allowed(state: &FloorState, version: u64) -> bool {
    version >= state.floor && state.entry.is_none_or(|cached| version >= cached)
}

fn floor_successors(
    state: &FloorState,
    config: &FloorModelConfig,
) -> Vec<(FloorAction, FloorState)> {
    let mut out = Vec::new();

    if let Some((version, ok)) = state.pending {
        let mut next = state.clone();
        if ok {
            next.entry = Some(version);
        }
        next.pending = None;
        next.install_idx += 1;
        out.push((FloorAction::Install(version), next));
    } else if (state.install_idx as usize) < config.installs.len() {
        let version = config.installs[state.install_idx as usize];
        if config.locked {
            let mut next = state.clone();
            if install_allowed(state, version) {
                next.entry = Some(version);
            }
            next.install_idx += 1;
            out.push((FloorAction::InstallAtomic(version), next));
        } else {
            let mut next = state.clone();
            next.pending = Some((version, install_allowed(state, version)));
            out.push((FloorAction::CheckFloor(version), next));
        }
    }

    match (state.invalidator_pc, config.locked) {
        (0, true) => {
            let mut next = state.clone();
            next.floor = next.floor.max(config.floor);
            if next.entry.is_some_and(|cached| cached < config.floor) {
                next.entry = None;
            }
            next.invalidator_pc = 2;
            out.push((FloorAction::InvalidateAtomic, next));
        }
        (0, false) => {
            let mut next = state.clone();
            next.floor = next.floor.max(config.floor);
            next.invalidator_pc = 1;
            out.push((FloorAction::RaiseFloor, next));
        }
        (1, _) => {
            let mut next = state.clone();
            if next.entry.is_some_and(|cached| cached < config.floor) {
                next.entry = None;
            }
            next.invalidator_pc = 2;
            out.push((FloorAction::UnlinkOlder, next));
        }
        (2, _) => {
            let mut next = state.clone();
            next.invalidator_pc = 3;
            out.push((FloorAction::InvalidateDone, next));
        }
        _ => {}
    }

    out
}

/// Exhaustive BFS over the invalidation/apply race, checking that once the
/// invalidation has completed the slot never holds a version below its
/// floor (no invalidation lost).
pub fn explore_floor(config: &FloorModelConfig) -> EpochExploration {
    let initial = FloorState {
        entry: None,
        floor: 0,
        install_idx: 0,
        pending: None,
        invalidator_pc: 0,
    };
    let mut states = vec![initial.clone()];
    let mut index: HashMap<FloorState, usize> = HashMap::from([(initial, 0)]);
    let mut parents: Vec<Option<(usize, FloorAction)>> = vec![None];
    let mut depths = vec![0usize];
    let mut queue = VecDeque::from([0usize]);
    let mut stats = EpochStats {
        states: 1,
        ..EpochStats::default()
    };

    while let Some(current) = queue.pop_front() {
        let state = states[current].clone();
        for (action, next) in floor_successors(&state, config) {
            stats.transitions += 1;
            let lost = next.invalidator_pc >= 3
                && next.entry.is_some_and(|cached| cached < config.floor);
            if lost {
                let cached = next.entry.expect("violation requires a cached entry");
                let description = format!(
                    "invalidation to floor {} lost: slot still caches v{} after completion",
                    config.floor, cached
                );
                let mut trace = vec![action.to_string()];
                let mut at = current;
                while let Some((parent, step)) = parents[at] {
                    trace.push(step.to_string());
                    at = parent;
                }
                trace.reverse();
                return EpochExploration {
                    stats,
                    violation: Some(EpochViolation { description, trace }),
                };
            }
            if index.contains_key(&next) {
                continue;
            }
            let id = states.len();
            index.insert(next.clone(), id);
            states.push(next);
            parents.push(Some((current, action)));
            let depth = depths[current] + 1;
            depths.push(depth);
            stats.depth = stats.depth.max(depth);
            stats.states += 1;
            queue.push_back(id);
        }
    }

    EpochExploration {
        stats,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_protocol_is_safe_and_exercises_reclamation() {
        let result = explore_epoch(&EpochModelConfig::faithful());
        assert!(
            result.violation.is_none(),
            "faithful protocol violated: {:?}",
            result.violation
        );
        assert!(!result.stats.truncated, "exploration must be exhaustive");
        assert!(
            result.stats.reclaims > 0,
            "the invariant must be exercised, not vacuous"
        );
    }

    #[test]
    fn ungated_advance_is_caught() {
        let result = explore_epoch(&EpochModelConfig::ungated_advance());
        let violation = result.violation.expect("ungated advance must violate");
        assert!(
            violation.description.contains("reclaimed node"),
            "unexpected violation: {violation}"
        );
        assert!(!violation.trace.is_empty());
    }

    #[test]
    fn short_grace_is_caught() {
        let result = explore_epoch(&EpochModelConfig::short_grace());
        assert!(
            result.violation.is_some(),
            "grace 1 must allow a use-after-reclaim"
        );
    }

    #[test]
    fn locked_floor_never_loses_an_invalidation() {
        let result = explore_floor(&FloorModelConfig::locked());
        assert!(
            result.violation.is_none(),
            "locked floor violated: {:?}",
            result.violation
        );
        assert!(!result.stats.truncated);
    }

    #[test]
    fn unlocked_floor_loses_the_race() {
        let result = explore_floor(&FloorModelConfig::unlocked());
        let violation = result.violation.expect("split check/install must lose");
        assert!(violation.description.contains("lost"));
    }
}
