//! Hand-rolled breadth-first explorer with hashed state dedup, bounded
//! depth, deterministic action ordering, counterexample reconstruction and
//! greedy trace minimization.
//!
//! BFS order means the first counterexample found is depth-minimal; greedy
//! omission then prunes actions that the violation does not actually need.
//! Omission-based delta debugging is sound here because the model is
//! deterministic: a candidate trace either fails to replay (some action is
//! no longer enabled — the candidate is discarded) or replays to exactly
//! one execution whose invariants are re-checked from scratch.
//!
//! Invariants 1–3 are edge properties, so they are evaluated on **every**
//! generated transition — including transitions into already-visited
//! states — which covers every finish-edge of the reachable graph exactly
//! once. Invariant 4 is a state property, evaluated when a state is first
//! discovered.

use crate::config::ModelConfig;
use crate::invariant::{InvariantChecker, InvariantViolation};
use crate::oracle::SerializabilityOracle;
use crate::state::ModelState;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use tcache_types::{ProtocolAction, ProtocolTrace};

/// Exploration bounds. `None` means unbounded (exhaustive).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreOptions {
    /// Maximum trace depth to explore.
    pub max_depth: Option<usize>,
    /// Maximum number of distinct states to discover.
    pub max_states: Option<usize>,
    /// Evaluate the recovery-safety predicate even under
    /// `ModelRecovery::None` (see
    /// [`InvariantChecker::with_forced_recovery_check`]).
    pub force_recovery_check: bool,
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Distinct reachable states discovered.
    pub states: usize,
    /// Transitions generated (edges, including duplicates into visited
    /// states).
    pub transitions: u64,
    /// Deepest distance from the initial state reached.
    pub depth: usize,
    /// Finish-edge invariant evaluations (transactions completing).
    pub finished_txn_checks: u64,
    /// `true` when a bound cut the exploration short.
    pub truncated: bool,
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Statistics (complete when `violation` is `None` and `truncated` is
    /// `false`).
    pub stats: ExploreStats,
    /// The first violation found, with the depth-minimal trace reaching
    /// it.
    pub violation: Option<(InvariantViolation, ProtocolTrace)>,
}

/// Explores every state of `config` reachable within `options`' bounds,
/// checking all four invariants. Stops at the first violation.
pub fn explore(
    config: &ModelConfig,
    oracle: &dyn SerializabilityOracle,
    options: ExploreOptions,
) -> Exploration {
    let mut checker = InvariantChecker::new(config, oracle);
    if options.force_recovery_check {
        checker = checker.with_forced_recovery_check();
    }
    let mut stats = ExploreStats::default();

    let initial = Arc::new(ModelState::initial(config));
    let mut states: Vec<Arc<ModelState>> = vec![Arc::clone(&initial)];
    let mut index: HashMap<Arc<ModelState>, usize> = HashMap::new();
    index.insert(Arc::clone(&initial), 0);
    // (parent index, action) per state; the initial state has none.
    let mut parents: Vec<Option<(usize, ProtocolAction)>> = vec![None];
    let mut depths: Vec<usize> = vec![0];
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    stats.states = 1;

    if let Some(violation) = checker.check_state(&initial) {
        stats.finished_txn_checks = checker.finish_checks;
        return Exploration {
            stats,
            violation: Some((violation, Vec::new())),
        };
    }

    while let Some(current) = queue.pop_front() {
        let depth = depths[current];
        if options.max_depth.is_some_and(|limit| depth >= limit) {
            stats.truncated = true;
            continue;
        }
        let state = Arc::clone(&states[current]);
        for action in state.enabled(config) {
            let next = state.apply(config, action).expect("enabled action applies");
            stats.transitions += 1;

            // Edge properties: checked on every generated transition.
            if let Some(violation) = checker.check_edge(&state, &next) {
                stats.finished_txn_checks = checker.finish_checks;
                let mut trace = trace_to(&parents, current);
                trace.push(action);
                return Exploration {
                    stats,
                    violation: Some((violation, trace)),
                };
            }

            if index.contains_key(&next) {
                continue;
            }
            // State property: checked once, on first discovery.
            if let Some(violation) = checker.check_state(&next) {
                stats.finished_txn_checks = checker.finish_checks;
                let mut trace = trace_to(&parents, current);
                trace.push(action);
                return Exploration {
                    stats,
                    violation: Some((violation, trace)),
                };
            }
            if options.max_states.is_some_and(|limit| stats.states >= limit) {
                stats.truncated = true;
                continue;
            }
            let next = Arc::new(next);
            let id = states.len();
            states.push(Arc::clone(&next));
            index.insert(next, id);
            parents.push(Some((current, action)));
            depths.push(depth + 1);
            stats.depth = stats.depth.max(depth + 1);
            stats.states += 1;
            queue.push_back(id);
        }
    }

    stats.finished_txn_checks = checker.finish_checks;
    Exploration {
        stats,
        violation: None,
    }
}

fn trace_to(parents: &[Option<(usize, ProtocolAction)>], mut state: usize) -> ProtocolTrace {
    let mut trace = Vec::new();
    while let Some((parent, action)) = parents[state] {
        trace.push(action);
        state = parent;
    }
    trace.reverse();
    trace
}

/// The outcome of deterministically replaying a trace against the model.
#[derive(Debug, Clone)]
pub enum Replay {
    /// Every action was enabled and no invariant broke.
    Clean(ModelState),
    /// Some action was not enabled at its position.
    Invalid {
        /// Index of the rejected action.
        step: usize,
    },
    /// An invariant broke.
    Violation {
        /// The violation found.
        violation: InvariantViolation,
        /// Index of the action whose transition (or resulting state)
        /// violated; the prefix `trace[..=step]` reproduces it.
        step: usize,
    },
}

/// Replays `trace` from the initial state of `config`, re-running all
/// invariant checks along the way.
pub fn replay(
    config: &ModelConfig,
    oracle: &dyn SerializabilityOracle,
    trace: &[ProtocolAction],
    force_recovery_check: bool,
) -> Replay {
    let mut checker = InvariantChecker::new(config, oracle);
    if force_recovery_check {
        checker = checker.with_forced_recovery_check();
    }
    let mut state = ModelState::initial(config);
    if let Some(violation) = checker.check_state(&state) {
        return Replay::Violation { violation, step: 0 };
    }
    for (step, &action) in trace.iter().enumerate() {
        let Some(next) = state.apply(config, action) else {
            return Replay::Invalid { step };
        };
        if let Some(violation) = checker.check_edge(&state, &next) {
            return Replay::Violation { violation, step };
        }
        if let Some(violation) = checker.check_state(&next) {
            return Replay::Violation { violation, step };
        }
        state = next;
    }
    Replay::Clean(state)
}

/// Greedily minimizes a violating trace by omission: repeatedly tries to
/// drop single actions while the replay still produces a violation of the
/// same [`InvariantKind`](crate::invariant::InvariantKind). Returns the
/// minimized trace (truncated at the violating step).
pub fn minimize(
    config: &ModelConfig,
    oracle: &dyn SerializabilityOracle,
    trace: &[ProtocolAction],
    force_recovery_check: bool,
) -> ProtocolTrace {
    let (kind, step) = match replay(config, oracle, trace, force_recovery_check) {
        Replay::Violation { violation, step } => (violation.kind, step),
        // Not a violating trace (or violates at the empty prefix): nothing
        // to minimize.
        _ => return trace.to_vec(),
    };
    if trace.is_empty() {
        return Vec::new();
    }
    let mut best: ProtocolTrace = trace[..=step].to_vec();
    let mut improved = true;
    while improved {
        improved = false;
        for omit in 0..best.len() {
            let mut candidate = best.clone();
            candidate.remove(omit);
            if let Replay::Violation { violation, step } =
                replay(config, oracle, &candidate, force_recovery_check)
            {
                if violation.kind == kind {
                    candidate.truncate(step + 1);
                    best = candidate;
                    improved = true;
                    break;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::invariant::InvariantKind;
    use crate::oracle::{IntervalOnlyOracle, TwoTierOracle};

    #[test]
    fn exhaustive_quick_core_satisfies_all_invariants() {
        let result = explore(
            &ModelConfig::quick_core(),
            &TwoTierOracle,
            ExploreOptions::default(),
        );
        assert!(
            result.violation.is_none(),
            "unexpected violation: {:?}",
            result.violation
        );
        assert!(!result.stats.truncated, "exploration must be exhaustive");
        assert!(result.stats.states > 1000, "state space suspiciously small");
        assert!(result.stats.finished_txn_checks > 0);
    }

    #[test]
    fn broken_oracle_yields_minimized_soundness_counterexample() {
        let config = ModelConfig::independent_updates();
        let result = explore(&config, &IntervalOnlyOracle, ExploreOptions::default());
        let (violation, trace) = result.violation.expect("broken oracle must be caught");
        assert_eq!(violation.kind, InvariantKind::MonitorSoundness);

        let minimized = minimize(&config, &IntervalOnlyOracle, &trace, false);
        assert!(minimized.len() <= trace.len());
        // The minimal soundness counterexample: both updates commit, the
        // read observes one old and one new version — 4 actions (2 commits
        // + 2 read steps); nothing shorter flags.
        assert_eq!(minimized.len(), 4, "minimized trace: {minimized:?}");
        match replay(&config, &IntervalOnlyOracle, &minimized, false) {
            Replay::Violation { violation, step } => {
                assert_eq!(violation.kind, InvariantKind::MonitorSoundness);
                assert_eq!(step + 1, minimized.len(), "trace truncated at violation");
            }
            other => panic!("minimized trace must still violate, got {other:?}"),
        }
        // The production two-tier oracle accepts the same execution.
        assert!(matches!(
            replay(&config, &TwoTierOracle, &minimized, false),
            Replay::Clean(_)
        ));
    }

    #[test]
    fn no_recovery_config_violates_recovery_safety_when_forced() {
        let config = ModelConfig::no_recovery();
        let options = ExploreOptions {
            force_recovery_check: true,
            ..ExploreOptions::default()
        };
        let result = explore(&config, &TwoTierOracle, options);
        let (violation, trace) = result.violation.expect("staleness must be reachable");
        assert_eq!(violation.kind, InvariantKind::RecoverySafety);
        let minimized = minimize(&config, &TwoTierOracle, &trace, true);
        assert!(!minimized.is_empty());
        assert!(minimized.len() <= trace.len());
        // And the same configuration *with* GapResync never violates.
        let fixed = explore(
            &ModelConfig::quick_core(),
            &TwoTierOracle,
            ExploreOptions::default(),
        );
        assert!(fixed.violation.is_none());
    }

    #[test]
    fn depth_bound_truncates() {
        let result = explore(
            &ModelConfig::quick_core(),
            &TwoTierOracle,
            ExploreOptions {
                max_depth: Some(2),
                ..ExploreOptions::default()
            },
        );
        assert!(result.stats.truncated);
        assert!(result.violation.is_none());
    }
}
