//! Explicit-state model checking for the T-Cache protocol core.
//!
//! This crate holds a small, exact model of the protocol the repo
//! implements — backend database with sequenced invalidation log, N edge
//! caches (plain or T-Cache policies, crash/partition lifecycle,
//! gap-triggered resync) and K scripted transactions — together with a
//! hand-rolled BFS explorer that enumerates *every* reachable interleaving
//! of a [`config::ModelConfig`] and checks four invariants on the way:
//!
//! 1. Theorem-1 serializability of committed T-Cache read-only
//!    transactions,
//! 2. monitor soundness (no serializable read set flagged),
//! 3. monitor completeness (no non-serializable read set accepted),
//! 4. recovery safety (a healthy cache under `GapResync` never caches a
//!    version older than its acknowledged stream position announces).
//!
//! Ground truth for 1–3 is computed by brute-force subset enumeration
//! ([`oracle::ground_truth_serializable`]), independent of the monitor
//! code it judges. On a violation the explorer reconstructs the
//! depth-minimal trace and [`explore::minimize`] prunes it further; the
//! differential bridge in `tcache-sim` then replays the minimized
//! [`tcache_types::ProtocolTrace`] action-by-action against the real
//! `Database`/`EdgeCache`/`ConsistencyMonitor` stack and demands exact
//! agreement on every observable (versions read, abort objects, stream
//! positions, lifecycle states and counters).
//!
//! The transition function in [`state`] mirrors the implementation line by
//! line; see the "checked core" section of `docs/ARCHITECTURE.md` for the
//! abstraction map and `docs/REPRODUCING.md` for the `model_check`
//! scenarios and their expected state counts.
//!
//! No external dependencies beyond the workspace (the explorer, hashing
//! and minimization are hand-rolled), matching the offline-shim policy of
//! `crates/support/`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod epoch;
pub mod explore;
pub mod invariant;
pub mod oracle;
pub mod state;

pub use config::{CachePolicyKind, FaultBudget, ModelConfig, ModelRecovery, ReadScript};
pub use epoch::{
    explore_epoch, explore_floor, EpochExploration, EpochModelConfig, EpochStats, EpochViolation,
    FloorModelConfig,
};
pub use explore::{explore, minimize, replay, Exploration, ExploreOptions, ExploreStats, Replay};
pub use invariant::{InvariantChecker, InvariantKind, InvariantViolation};
pub use oracle::{
    ground_truth_serializable, history_of, read_txn_id, update_txn_id, IntervalOnlyOracle,
    OracleUpdate, SerializabilityOracle, TwoTierOracle,
};
pub use state::{
    CacheState, CacheStatus, DbState, ModelDeps, ModelInvalidation, ModelReplay, ModelState,
    StoreEntry, TxnMode, TxnOutcome, TxnState,
};
