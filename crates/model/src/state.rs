//! The explicit model state and its transition function.
//!
//! [`ModelState`] is a canonical, hashable snapshot of the whole closed
//! system: backend store (versions, dependency lists, invalidation log),
//! every cache (lifecycle, stream position, store, in-flight queue,
//! lifecycle counters) and every scripted transaction's record. The
//! transition function [`ModelState::apply`] mirrors the implementation
//! *line by line* — `Database::execute_update`,
//! `EdgeCache::apply_invalidation` / `resync`, the lifecycle entry points
//! and the `TxnRecord` incremental consistency check — so that the
//! differential bridge can replay any model trace against the real stack
//! and demand exact agreement on every observable.
//!
//! Versions are plain `u64`s: the backend's version clock assigns
//! `max(clock, observed) + 1` and the model commits updates one at a time,
//! so versions are simply `1, 2, 3, …` in commit order, matching the real
//! `VersionClock` deterministically.

use crate::config::ModelConfig;
use std::collections::{BTreeMap, VecDeque};
use tcache_types::ProtocolAction;

/// An ordered dependency list mirroring `tcache_types::DependencyList`
/// (most-recent-first entries, dedup by object keeping the max version).
///
/// Order matters: the implementation reports the *worst-gap* violating
/// object, breaking ties by iteration order, so a set-shaped model would
/// diverge from the real cache on which object a violation names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelDeps {
    entries: Vec<(u64, u64)>,
}

impl ModelDeps {
    /// The empty list.
    pub fn new() -> Self {
        ModelDeps::default()
    }

    /// Entries, most recent first.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, u64)> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mirrors `DependencyList::record`: dedup by object keeping the max
    /// version, move to the most-recent position.
    pub fn record(&mut self, object: u64, version: u64) {
        let merged = match self.entries.iter().position(|&(o, _)| o == object) {
            Some(idx) => {
                let (_, existing) = self.entries.remove(idx);
                existing.max(version)
            }
            None => version,
        };
        self.entries.insert(0, (object, merged));
    }

    /// Mirrors `DependencyList::merge`: record the other list's entries
    /// from least- to most-recent.
    pub fn merge(&mut self, other: &ModelDeps) {
        for &(object, version) in other.entries.iter().rev() {
            self.record(object, version);
        }
    }

    /// Mirrors `AggregatedDependencies::list_for` under an unbounded
    /// bound: the list without `key` itself.
    pub fn without(&self, key: u64) -> ModelDeps {
        ModelDeps {
            entries: self
                .entries
                .iter()
                .filter(|&&(o, _)| o != key)
                .copied()
                .collect(),
        }
    }

    /// Mirrors re-bounding on cache install (`DependencyList::rebounded`):
    /// keep the `limit` most recent entries.
    pub fn rebounded(&self, limit: usize) -> ModelDeps {
        ModelDeps {
            entries: self.entries.iter().take(limit).copied().collect(),
        }
    }
}

/// One sequenced invalidation as it appears in the backend log and in
/// cache in-flight queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelInvalidation {
    /// Stream position (1-based; the model never emits unsequenced
    /// invalidations).
    pub seq: u64,
    /// The invalidated object.
    pub object: u64,
    /// The version installed by the committing update.
    pub version: u64,
    /// Index of the committing update in the configuration.
    pub update: usize,
}

/// Mirror of `InvalidationReplay` for the model's backend log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelReplay {
    /// The suffix after the requested position, fully retained.
    Replayed(Vec<ModelInvalidation>),
    /// The suffix is no longer retained; only the latest position is known.
    Truncated {
        /// The newest sequence number ever issued.
        latest: u64,
    },
}

/// The backend database's state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DbState {
    /// Current version per object (index = object id).
    pub versions: Vec<u64>,
    /// Dependency list stored per object.
    pub deps: Vec<ModelDeps>,
    /// The version clock (last version assigned).
    pub clock: u64,
    /// Retained suffix of the invalidation log (oldest first).
    pub log: VecDeque<ModelInvalidation>,
    /// Newest sequence number ever issued (0 = none).
    pub latest_seq: u64,
}

impl DbState {
    fn initial(objects: u64) -> Self {
        DbState {
            versions: vec![0; objects as usize],
            deps: vec![ModelDeps::new(); objects as usize],
            clock: 0,
            log: VecDeque::new(),
            latest_seq: 0,
        }
    }

    /// Mirrors `InvalidationLog::replay_after`.
    pub fn replay_after(&self, after_seq: u64) -> ModelReplay {
        if after_seq >= self.latest_seq {
            return ModelReplay::Replayed(Vec::new());
        }
        match self.log.front() {
            Some(oldest) if oldest.seq <= after_seq + 1 => ModelReplay::Replayed(
                self.log
                    .iter()
                    .filter(|inv| inv.seq > after_seq)
                    .copied()
                    .collect(),
            ),
            _ => ModelReplay::Truncated {
                latest: self.latest_seq,
            },
        }
    }
}

/// Mirror of `LifecycleState` with time in logical ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheStatus {
    /// Connected and serving.
    Healthy,
    /// Link severed (partition or crash); `since` is the clock tick the
    /// disconnect happened at.
    Disconnected {
        /// Clock value when the link was severed.
        since: u64,
        /// Whether the disconnect was a crash (store lost).
        crashed: bool,
    },
    /// Staleness budget exhausted: serving pass-through reads.
    Degraded {
        /// Whether the underlying disconnect was a crash.
        crashed: bool,
    },
}

impl CacheStatus {
    /// The same tag `LifecycleState::name` reports (compared by the
    /// bridge).
    pub fn name(&self) -> &'static str {
        match self {
            CacheStatus::Healthy => "healthy",
            CacheStatus::Disconnected { crashed: true, .. } => "crashed",
            CacheStatus::Disconnected { crashed: false, .. } => "disconnected",
            CacheStatus::Degraded { .. } => "degraded",
        }
    }

    /// `true` for crash-originated disconnects.
    pub fn is_crashed(&self) -> bool {
        matches!(
            self,
            CacheStatus::Disconnected { crashed: true, .. } | CacheStatus::Degraded { crashed: true }
        )
    }
}

/// One cache entry: the cached version and its (re-bounded) dependency
/// list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreEntry {
    /// The cached version.
    pub version: u64,
    /// The dependency list installed with it.
    pub deps: ModelDeps,
}

/// One edge cache's state, including the lifecycle counters the bridge
/// compares against `LifecycleStatsSnapshot`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheState {
    /// Lifecycle status.
    pub status: CacheStatus,
    /// Highest invalidation sequence number applied (`last_applied_seq`).
    pub last_seq: u64,
    /// The local store: object → entry.
    pub store: BTreeMap<u64, StoreEntry>,
    /// Invalidations published to this cache but not yet delivered
    /// (oldest first). Severing the link clears the queue.
    pub pending: VecDeque<ModelInvalidation>,
    /// Mirror of `LifecycleStats::gaps_detected`.
    pub gaps_detected: u64,
    /// Mirror of `LifecycleStats::invalidations_missed`.
    pub invalidations_missed: u64,
    /// Mirror of `LifecycleStats::log_replays`.
    pub log_replays: u64,
    /// Mirror of `LifecycleStats::replayed_invalidations`.
    pub replayed_invalidations: u64,
    /// Mirror of `LifecycleStats::snapshot_resyncs`.
    pub snapshot_resyncs: u64,
    /// Mirror of `LifecycleStats::pass_through_txns`.
    pub pass_through_txns: u64,
    /// Mirror of `LifecycleStats::crashes`.
    pub crashes: u64,
    /// Mirror of `LifecycleStats::partitions`.
    pub partitions: u64,
    /// Mirror of `LifecycleStats::reconnects`.
    pub reconnects: u64,
}

impl CacheState {
    fn initial() -> Self {
        CacheState {
            status: CacheStatus::Healthy,
            last_seq: 0,
            store: BTreeMap::new(),
            pending: VecDeque::new(),
            gaps_detected: 0,
            invalidations_missed: 0,
            log_replays: 0,
            replayed_invalidations: 0,
            snapshot_resyncs: 0,
            pass_through_txns: 0,
            crashes: 0,
            partitions: 0,
            reconnects: 0,
        }
    }
}

/// The serving mode a read-only transaction latched at its first step,
/// mirroring `ReadMode` (decided once per transaction in
/// `EdgeCache::execute_read_only`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnMode {
    /// Served from the local store through the regular (checked) path.
    Cached,
    /// Served directly from the backend (degraded cache).
    PassThrough,
}

/// How a read-only transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnOutcome {
    /// All scripted reads completed.
    Committed,
    /// The consistency check aborted the transaction at `violating_object`.
    Aborted {
        /// The object the violation names (compared against the
        /// implementation's `InconsistencyAbort`).
        violating_object: u64,
    },
}

/// One scripted read-only transaction's record, mirroring `TxnRecord`'s
/// incremental indexes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TxnState {
    /// Next script position to execute.
    pub next_key: usize,
    /// Serving mode, latched at the first step.
    pub mode: Option<TxnMode>,
    /// Set when the transaction finished.
    pub outcome: Option<TxnOutcome>,
    /// `(object, version)` pairs returned to the client, in read order.
    pub observed: Vec<(u64, u64)>,
    /// Max version each object is expected at (`TxnRecord::expected`).
    pub expected: BTreeMap<u64, u64>,
    /// Min version observed per returned object
    /// (`TxnRecord::observed_floor`).
    pub floor: BTreeMap<u64, u64>,
}

impl TxnState {
    fn initial() -> Self {
        TxnState {
            next_key: 0,
            mode: None,
            outcome: None,
            observed: Vec::new(),
            expected: BTreeMap::new(),
            floor: BTreeMap::new(),
        }
    }

    /// `true` once the transaction committed or aborted.
    pub fn finished(&self) -> bool {
        self.outcome.is_some()
    }
}

/// The violation the model's consistency check reports (mirror of the
/// cache's `Violation`, reduced to what the ABORT strategy uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ModelViolation {
    violating_object: u64,
    observed_version: u64,
    expected_version: u64,
}

/// Mirrors `consistency::pick_worse`: keep the larger expected−observed
/// gap, ties to the incumbent.
fn pick_worse(current: Option<ModelViolation>, candidate: ModelViolation) -> Option<ModelViolation> {
    match current {
        None => Some(candidate),
        Some(existing) => {
            let existing_gap = existing.expected_version - existing.observed_version;
            let candidate_gap = candidate.expected_version - candidate.observed_version;
            if candidate_gap > existing_gap {
                Some(candidate)
            } else {
                Some(existing)
            }
        }
    }
}

/// The complete model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelState {
    /// Backend database.
    pub db: DbState,
    /// Edge caches, indexed like [`ModelConfig::caches`].
    pub caches: Vec<CacheState>,
    /// Scripted read-only transactions, indexed like
    /// [`ModelConfig::reads`].
    pub txns: Vec<TxnState>,
    /// `(update index, version)` for every committed update, in commit
    /// order. Together with the configuration this determines the full
    /// (untruncated) invalidation stream.
    pub committed: Vec<(usize, u64)>,
    /// The logical clock (number of [`ProtocolAction::Tick`]s applied).
    pub clock: u64,
    /// Crashes consumed from the fault budget.
    pub crashes_used: u32,
    /// Partitions consumed from the fault budget.
    pub partitions_used: u32,
    /// Drops consumed from the fault budget.
    pub drops_used: u32,
}

impl ModelState {
    /// The initial state of `config`: empty caches, cold log, version 0
    /// everywhere.
    pub fn initial(config: &ModelConfig) -> Self {
        ModelState {
            db: DbState::initial(config.objects),
            caches: config.caches.iter().map(|_| CacheState::initial()).collect(),
            txns: config.reads.iter().map(|_| TxnState::initial()).collect(),
            committed: Vec::new(),
            clock: 0,
            crashes_used: 0,
            partitions_used: 0,
            drops_used: 0,
        }
    }

    /// `true` when `update` has already committed.
    pub fn update_committed(&self, update: usize) -> bool {
        self.committed.iter().any(|&(u, _)| u == update)
    }

    /// Reconstructs the full (never truncated) invalidation stream from
    /// the committed-update history: sequence numbers are issued in commit
    /// order, one per written object in write-set order — exactly how
    /// `InvalidationLog::record` stamps them.
    pub fn full_stream(&self, config: &ModelConfig) -> Vec<ModelInvalidation> {
        let mut stream = Vec::new();
        let mut seq = 0;
        for &(update, version) in &self.committed {
            for &object in &config.updates[update] {
                seq += 1;
                stream.push(ModelInvalidation {
                    seq,
                    object,
                    version,
                    update,
                });
            }
        }
        stream
    }

    /// Whether `action` is applicable in this state. Single source of
    /// truth: [`ModelState::enabled`] enumerates candidates and filters
    /// through this, and [`ModelState::apply`] rejects actions it returns
    /// `false` for.
    pub fn is_enabled(&self, config: &ModelConfig, action: ProtocolAction) -> bool {
        match action {
            ProtocolAction::UpdateCommit { update } => {
                update < config.updates.len() && !self.update_committed(update)
            }
            ProtocolAction::Deliver { cache, index } => {
                cache < self.caches.len()
                    && self.caches[cache].status == CacheStatus::Healthy
                    && index < self.caches[cache].pending.len()
                    && index < config.faults.reorder_window
            }
            ProtocolAction::DropInvalidation { cache, index } => {
                self.drops_used < config.faults.drops
                    && cache < self.caches.len()
                    && self.caches[cache].status == CacheStatus::Healthy
                    && index < self.caches[cache].pending.len()
                    && index < config.faults.reorder_window
            }
            ProtocolAction::ReadStep { txn } => {
                txn < self.txns.len()
                    && !self.txns[txn].finished()
                    && !self.caches[config.reads[txn].cache].status.is_crashed()
            }
            ProtocolAction::Crash { cache } => {
                self.crashes_used < config.faults.crashes
                    && cache < self.caches.len()
                    && self.caches[cache].status == CacheStatus::Healthy
            }
            ProtocolAction::Restart { cache } => {
                cache < self.caches.len() && self.caches[cache].status.is_crashed()
            }
            ProtocolAction::Partition { cache } => {
                self.partitions_used < config.faults.partitions
                    && cache < self.caches.len()
                    && self.caches[cache].status == CacheStatus::Healthy
            }
            ProtocolAction::Reconnect { cache } => {
                cache < self.caches.len()
                    && matches!(
                        self.caches[cache].status,
                        CacheStatus::Disconnected { crashed: false, .. }
                            | CacheStatus::Degraded { crashed: false }
                    )
            }
            ProtocolAction::Tick => self.clock < u64::from(config.faults.ticks),
        }
    }

    /// Enumerates every enabled action in a fixed, deterministic order
    /// (updates, read steps, then per cache deliveries / drops / faults,
    /// then the clock tick).
    pub fn enabled(&self, config: &ModelConfig) -> Vec<ProtocolAction> {
        let mut actions = Vec::new();
        for update in 0..config.updates.len() {
            actions.push(ProtocolAction::UpdateCommit { update });
        }
        for txn in 0..config.reads.len() {
            actions.push(ProtocolAction::ReadStep { txn });
        }
        for cache in 0..self.caches.len() {
            for index in 0..config.faults.reorder_window {
                actions.push(ProtocolAction::Deliver { cache, index });
            }
            for index in 0..config.faults.reorder_window {
                actions.push(ProtocolAction::DropInvalidation { cache, index });
            }
            actions.push(ProtocolAction::Crash { cache });
            actions.push(ProtocolAction::Restart { cache });
            actions.push(ProtocolAction::Partition { cache });
            actions.push(ProtocolAction::Reconnect { cache });
        }
        actions.push(ProtocolAction::Tick);
        actions.retain(|&a| self.is_enabled(config, a));
        actions
    }

    /// Applies `action`, returning the successor state, or `None` when the
    /// action is not enabled (used by trace replay and minimization to
    /// reject invalid candidate traces).
    pub fn apply(&self, config: &ModelConfig, action: ProtocolAction) -> Option<ModelState> {
        if !self.is_enabled(config, action) {
            return None;
        }
        let mut next = self.clone();
        match action {
            ProtocolAction::UpdateCommit { update } => next.commit_update(config, update),
            ProtocolAction::Deliver { cache, index } => {
                let inv = next.caches[cache].pending.remove(index).expect("enabled");
                next.apply_invalidation(config, cache, inv);
            }
            ProtocolAction::DropInvalidation { cache, index } => {
                next.caches[cache].pending.remove(index).expect("enabled");
                next.drops_used += 1;
            }
            ProtocolAction::ReadStep { txn } => next.read_step(config, txn),
            ProtocolAction::Crash { cache } => {
                let c = &mut next.caches[cache];
                c.store.clear();
                c.pending.clear();
                c.crashes += 1;
                c.status = CacheStatus::Disconnected {
                    since: next.clock,
                    crashed: true,
                };
                next.crashes_used += 1;
            }
            ProtocolAction::Restart { cache } => {
                let latest = next.db.latest_seq;
                let c = &mut next.caches[cache];
                c.last_seq = latest;
                c.status = CacheStatus::Healthy;
            }
            ProtocolAction::Partition { cache } => {
                let c = &mut next.caches[cache];
                c.partitions += 1;
                c.pending.clear();
                c.status = CacheStatus::Disconnected {
                    since: next.clock,
                    crashed: false,
                };
                next.partitions_used += 1;
            }
            ProtocolAction::Reconnect { cache } => {
                next.caches[cache].reconnects += 1;
                if config.recovery.resyncs() {
                    next.resync(cache);
                }
                next.caches[cache].status = CacheStatus::Healthy;
            }
            ProtocolAction::Tick => next.clock += 1,
        }
        Some(next)
    }

    /// Mirrors `Database::execute_update_writes` for an update whose read
    /// and write sets are both the configured write set, followed by
    /// `InvalidationLog::record` and the publish fan-out (enqueue to every
    /// healthy cache).
    fn commit_update(&mut self, config: &ModelConfig, update: usize) {
        let writes = &config.updates[update];
        // Version clock: max(clock, observed) + 1; observed versions never
        // exceed the clock, so this is clock + 1.
        let version = self.db.clock + 1;
        self.db.clock = version;

        // Aggregate dependencies: inherited lists first (older info), the
        // access set last (newest), written objects at the new version.
        let mut full = ModelDeps::new();
        for &object in writes {
            full.merge(&self.db.deps[object as usize]);
        }
        for &object in writes {
            full.record(object, version);
        }
        for &object in writes {
            self.db.deps[object as usize] = full.without(object);
            self.db.versions[object as usize] = version;
        }

        // Sequenced invalidations: stamped from latest + 1 in write-set
        // order, recorded in the ring buffer, fanned out to every cache
        // whose link is up.
        for &object in writes {
            self.db.latest_seq += 1;
            let inv = ModelInvalidation {
                seq: self.db.latest_seq,
                object,
                version,
                update,
            };
            self.db.log.push_back(inv);
            while self.db.log.len() > config.log_capacity {
                self.db.log.pop_front();
            }
            for cache in &mut self.caches {
                if cache.status == CacheStatus::Healthy {
                    cache.pending.push_back(inv);
                }
            }
        }
        self.committed.push((update, version));
    }

    /// Mirrors `EdgeCache::apply_invalidation`.
    fn apply_invalidation(&mut self, config: &ModelConfig, cache: usize, inv: ModelInvalidation) {
        self.observe_stream_position(config, cache, inv.seq);
        self.invalidate_store(cache, inv.object, inv.version);
    }

    /// Mirrors `ShardedCacheStorage::invalidate`: evict iff the cached
    /// entry is older than the invalidated version.
    fn invalidate_store(&mut self, cache: usize, object: u64, version: u64) {
        let store = &mut self.caches[cache].store;
        if store.get(&object).is_some_and(|e| e.version < version) {
            store.remove(&object);
        }
    }

    /// Mirrors `EdgeCache::observe_stream_position`.
    fn observe_stream_position(&mut self, config: &ModelConfig, cache: usize, seq: u64) {
        let prev = self.caches[cache].last_seq;
        if seq <= prev {
            return;
        }
        if seq > prev + 1 {
            self.caches[cache].gaps_detected += 1;
            self.caches[cache].invalidations_missed += seq - prev - 1;
            if config.recovery.resyncs() && self.caches[cache].status == CacheStatus::Healthy {
                self.resync(cache);
                return;
            }
        }
        self.caches[cache].last_seq = seq;
    }

    /// Mirrors `EdgeCache::resync`.
    fn resync(&mut self, cache: usize) {
        let after = self.caches[cache].last_seq;
        match self.db.replay_after(after) {
            ModelReplay::Replayed(invalidations) => {
                if invalidations.is_empty() {
                    return;
                }
                self.caches[cache].log_replays += 1;
                self.caches[cache].replayed_invalidations += invalidations.len() as u64;
                let mut latest = after;
                for inv in &invalidations {
                    self.invalidate_store(cache, inv.object, inv.version);
                    latest = latest.max(inv.seq);
                }
                self.caches[cache].last_seq = latest;
            }
            ModelReplay::Truncated { latest } => {
                self.caches[cache].snapshot_resyncs += 1;
                self.caches[cache].store.clear();
                self.caches[cache].last_seq = latest;
            }
        }
    }

    /// Mirrors `EdgeCache::read_mode`, including the degrade transition it
    /// performs as a side effect.
    fn read_mode(&mut self, config: &ModelConfig, cache: usize) -> TxnMode {
        match self.caches[cache].status {
            CacheStatus::Healthy => TxnMode::Cached,
            CacheStatus::Degraded { .. } => TxnMode::PassThrough,
            CacheStatus::Disconnected { since, crashed } => {
                match config.recovery.staleness_budget() {
                    Some(budget) if self.clock > since + budget => {
                        self.caches[cache].status = CacheStatus::Degraded { crashed };
                        TxnMode::PassThrough
                    }
                    _ => TxnMode::Cached,
                }
            }
        }
    }

    /// One step of a scripted read-only transaction. Mirrors
    /// `EdgeCache::execute_read_only`: the mode is decided when the
    /// transaction starts; a pass-through transaction is one synchronous
    /// backend round, so its single step executes the whole script.
    fn read_step(&mut self, config: &ModelConfig, txn: usize) {
        let script = &config.reads[txn];
        let cache = script.cache;
        let mode = match self.txns[txn].mode {
            Some(mode) => mode,
            None => {
                let mode = self.read_mode(config, cache);
                self.txns[txn].mode = Some(mode);
                mode
            }
        };
        match mode {
            TxnMode::PassThrough => {
                // Pass-through: every scripted key read straight from the
                // backend. The model is sequential, so the implementation's
                // validation rounds are stable on the first pass.
                self.caches[cache].pass_through_txns += 1;
                let keys = script.keys.clone();
                for key in keys {
                    let version = self.db.versions[key as usize];
                    self.txns[txn].observed.push((key, version));
                }
                self.txns[txn].next_key = script.keys.len();
                self.txns[txn].outcome = Some(TxnOutcome::Committed);
            }
            TxnMode::Cached => {
                let key = script.keys[self.txns[txn].next_key];
                let last_op = self.txns[txn].next_key + 1 == script.keys.len();
                // fetch(): local hit, or backend read installed with the
                // dependency list re-bounded to the cache's policy.
                let entry = match self.caches[cache].store.get(&key) {
                    Some(entry) => entry.clone(),
                    None => {
                        let limit = config.caches[cache].dependency_limit();
                        let entry = StoreEntry {
                            version: self.db.versions[key as usize],
                            deps: self.db.deps[key as usize].rebounded(limit),
                        };
                        self.caches[cache].store.insert(key, entry.clone());
                        entry
                    }
                };
                if !config.caches[cache].transactional() {
                    let t = &mut self.txns[txn];
                    t.observed.push((key, entry.version));
                    t.next_key += 1;
                    if last_op {
                        t.outcome = Some(TxnOutcome::Committed);
                    }
                    return;
                }
                match self.check_read(txn, key, &entry) {
                    Some(violation) => {
                        // Strategy::Abort — the record is discarded; what
                        // was already returned stays observed.
                        self.txns[txn].outcome = Some(TxnOutcome::Aborted {
                            violating_object: violation.violating_object,
                        });
                    }
                    None => {
                        let t = &mut self.txns[txn];
                        raise(&mut t.expected, key, entry.version);
                        for &(object, version) in entry.deps.iter() {
                            raise(&mut t.expected, object, version);
                        }
                        lower(&mut t.floor, key, entry.version);
                        t.observed.push((key, entry.version));
                        t.next_key += 1;
                        if last_op {
                            t.outcome = Some(TxnOutcome::Committed);
                        }
                    }
                }
            }
        }
    }

    /// Mirrors `TxnRecord::check_read`: Equation 2 (current read stale)
    /// first, then the worst-gap Equation 1 candidate.
    fn check_read(&self, txn: usize, key: u64, entry: &StoreEntry) -> Option<ModelViolation> {
        let t = &self.txns[txn];
        if let Some(&required) = t.expected.get(&key) {
            if required > entry.version {
                return Some(ModelViolation {
                    violating_object: key,
                    observed_version: entry.version,
                    expected_version: required,
                });
            }
        }
        let mut worst: Option<ModelViolation> = None;
        if let Some(&floor) = t.floor.get(&key) {
            if entry.version > floor {
                worst = pick_worse(
                    worst,
                    ModelViolation {
                        violating_object: key,
                        observed_version: floor,
                        expected_version: entry.version,
                    },
                );
            }
        }
        for &(object, version) in entry.deps.iter() {
            if object == key {
                continue;
            }
            if let Some(&floor) = t.floor.get(&object) {
                if version > floor {
                    worst = pick_worse(
                        worst,
                        ModelViolation {
                            violating_object: object,
                            observed_version: floor,
                            expected_version: version,
                        },
                    );
                }
            }
        }
        worst
    }
}

fn raise(map: &mut BTreeMap<u64, u64>, object: u64, version: u64) {
    let slot = map.entry(object).or_insert(version);
    *slot = (*slot).max(version);
}

fn lower(map: &mut BTreeMap<u64, u64>, object: u64, version: u64) {
    let slot = map.entry(object).or_insert(version);
    *slot = (*slot).min(version);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CachePolicyKind, FaultBudget, ModelRecovery, ReadScript};

    fn tiny() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            objects: 2,
            caches: vec![CachePolicyKind::TCacheUnbounded],
            updates: vec![vec![0, 1]],
            reads: vec![ReadScript {
                cache: 0,
                keys: vec![0, 1],
            }],
            recovery: ModelRecovery::GapResync {
                staleness_budget: 1,
            },
            log_capacity: 4,
            faults: FaultBudget::none(),
        }
    }

    fn apply_all(config: &ModelConfig, trace: &[ProtocolAction]) -> ModelState {
        let mut state = ModelState::initial(config);
        for &action in trace {
            state = state.apply(config, action).expect("action enabled");
        }
        state
    }

    #[test]
    fn update_commit_installs_versions_deps_and_invalidations() {
        let config = tiny();
        let state = apply_all(&config, &[ProtocolAction::UpdateCommit { update: 0 }]);
        assert_eq!(state.db.versions, vec![1, 1]);
        assert_eq!(state.db.latest_seq, 2);
        assert_eq!(state.db.log.len(), 2);
        // Each written object's list contains the *other* written object.
        assert_eq!(state.db.deps[0].iter().collect::<Vec<_>>(), vec![&(1, 1)]);
        assert_eq!(state.db.deps[1].iter().collect::<Vec<_>>(), vec![&(0, 1)]);
        // Both invalidations are in flight to the (healthy) cache.
        assert_eq!(state.caches[0].pending.len(), 2);
        assert_eq!(state.committed, vec![(0, 1)]);
    }

    #[test]
    fn interleaved_joint_update_aborts_tcache_read() {
        // read o0@0 · update {o0,o1}@1 · read o1@1 → Eq1: o1's dependency
        // list expects o0@1, but the transaction returned o0@0.
        let config = tiny();
        let state = apply_all(
            &config,
            &[
                ProtocolAction::ReadStep { txn: 0 },
                ProtocolAction::UpdateCommit { update: 0 },
                ProtocolAction::ReadStep { txn: 0 },
            ],
        );
        assert_eq!(
            state.txns[0].outcome,
            Some(TxnOutcome::Aborted {
                violating_object: 0
            })
        );
        assert_eq!(state.txns[0].observed, vec![(0, 0)]);
    }

    #[test]
    fn clean_execution_commits_with_consistent_reads() {
        let config = tiny();
        let state = apply_all(
            &config,
            &[
                ProtocolAction::UpdateCommit { update: 0 },
                ProtocolAction::ReadStep { txn: 0 },
                ProtocolAction::ReadStep { txn: 0 },
            ],
        );
        assert_eq!(state.txns[0].outcome, Some(TxnOutcome::Committed));
        assert_eq!(state.txns[0].observed, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn gap_triggers_resync_and_catches_the_store_up() {
        // Warm the cache at version 0, commit, drop the first invalidation
        // and deliver the second: the gap resyncs from the log, so the
        // stale o0 entry is evicted and the position reaches the head.
        let mut config = tiny();
        config.faults.drops = 1;
        config.faults.reorder_window = 2;
        let state = apply_all(
            &config,
            &[
                ProtocolAction::ReadStep { txn: 0 },
                ProtocolAction::UpdateCommit { update: 0 },
                ProtocolAction::DropInvalidation { cache: 0, index: 0 },
                ProtocolAction::Deliver { cache: 0, index: 0 },
            ],
        );
        let cache = &state.caches[0];
        assert_eq!(cache.gaps_detected, 1);
        assert_eq!(cache.log_replays, 1);
        assert_eq!(cache.last_seq, 2);
        assert!(!cache.store.contains_key(&0), "stale entry must be gone");
    }

    #[test]
    fn truncated_log_forces_snapshot_resync() {
        let mut config = tiny();
        config.log_capacity = 1;
        config.faults.drops = 1;
        config.faults.reorder_window = 2;
        let state = apply_all(
            &config,
            &[
                ProtocolAction::ReadStep { txn: 0 },
                ProtocolAction::UpdateCommit { update: 0 },
                ProtocolAction::DropInvalidation { cache: 0, index: 0 },
                ProtocolAction::Deliver { cache: 0, index: 0 },
            ],
        );
        let cache = &state.caches[0];
        assert_eq!(cache.snapshot_resyncs, 1);
        assert!(cache.store.is_empty(), "snapshot resync drops the store");
        assert_eq!(cache.last_seq, 2);
    }

    #[test]
    fn partition_tick_degrade_pass_through() {
        let mut config = tiny();
        config.faults.partitions = 1;
        config.faults.ticks = 2;
        let state = apply_all(
            &config,
            &[
                ProtocolAction::Partition { cache: 0 },
                ProtocolAction::Tick,
                ProtocolAction::Tick,
                ProtocolAction::UpdateCommit { update: 0 },
                ProtocolAction::ReadStep { txn: 0 },
            ],
        );
        assert_eq!(state.caches[0].status, CacheStatus::Degraded { crashed: false });
        assert_eq!(state.caches[0].pass_through_txns, 1);
        // Pass-through reads observe the backend's current versions.
        assert_eq!(state.txns[0].observed, vec![(0, 1), (1, 1)]);
        assert_eq!(state.txns[0].outcome, Some(TxnOutcome::Committed));
    }

    #[test]
    fn crash_clears_store_and_restart_adopts_stream_head() {
        let mut config = tiny();
        config.faults.crashes = 1;
        let state = apply_all(
            &config,
            &[
                ProtocolAction::ReadStep { txn: 0 },
                ProtocolAction::Crash { cache: 0 },
                ProtocolAction::UpdateCommit { update: 0 },
                ProtocolAction::Restart { cache: 0 },
            ],
        );
        let cache = &state.caches[0];
        assert!(cache.store.is_empty());
        assert_eq!(cache.last_seq, 2);
        assert_eq!(cache.status, CacheStatus::Healthy);
        assert_eq!(cache.crashes, 1);
        // The commit while crashed never reached the in-flight queue.
        assert!(cache.pending.is_empty());
    }

    #[test]
    fn enabled_actions_are_deterministic_and_guarded() {
        let config = tiny();
        let state = ModelState::initial(&config);
        let enabled = state.enabled(&config);
        assert_eq!(
            enabled,
            vec![
                ProtocolAction::UpdateCommit { update: 0 },
                ProtocolAction::ReadStep { txn: 0 },
            ]
        );
        // Applying a disabled action is rejected.
        assert!(state
            .apply(&config, ProtocolAction::Deliver { cache: 0, index: 0 })
            .is_none());
    }
}
