//! Figure 5: perfectly clustered workload whose clusters shift by one object
//! every three minutes; the inconsistency ratio spikes after every shift and
//! converges back towards zero.

use tcache_bench::RunOptions;
use tcache_sim::figures;
use tcache_types::SimDuration;

fn main() {
    let options = RunOptions::from_env();
    let (total, shift_every) = if options.quick {
        (SimDuration::from_secs(60), SimDuration::from_secs(15))
    } else {
        (SimDuration::from_secs(800), SimDuration::from_secs(180))
    };
    println!("Figure 5 — drifting clusters (shift by one object every {shift_every})");
    println!("seed {}", options.seed);
    println!("{:>8} {:>18}", "time[s]", "inconsistency[%]");
    for p in figures::fig5(total, shift_every, options.seed) {
        let marker = if p.time_secs > 0.0
            && p.time_secs % shift_every.as_secs_f64() < 5.0
        {
            "  <- shift"
        } else {
            ""
        };
        println!("{:>8.0} {:>18.2}{marker}", p.time_secs, p.inconsistency_pct);
    }
}
