//! Extension experiment (not in the paper): sensitivity of the plain cache
//! and of T-Cache to the invalidation loss rate.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(30, 5);
    let losses = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8];
    println!("Extension — inconsistency vs invalidation loss (retail workload, k = 3, RETRY)");
    println!("simulated duration per point: {duration}, seed {}", options.seed);
    println!("{:>8} {:>16} {:>16}", "loss", "plain incons.", "tcache incons.");
    for row in figures::drop_sweep(duration, options.seed, &losses) {
        println!(
            "{:>8.2} {:>16} {:>16}",
            row.loss,
            pct(row.plain_inconsistency_pct),
            pct(row.tcache_inconsistency_pct)
        );
    }
}
