//! Figure 7d: the TTL-limited baseline on the realistic workloads as a
//! function of the cache-entry TTL: inconsistency ratio, hit ratio and
//! database load.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    // The paper's TTL axis spans 30 s .. 6400 s; TTLs beyond the run length
    // behave like an infinite TTL, which is exactly the flat left side of
    // the paper's plot. The quick mode uses a proportionally scaled axis.
    let (duration, ttls): (_, Vec<u64>) = if options.quick {
        (options.duration(0, 10), vec![100, 8, 4, 2, 1])
    } else {
        (
            options.duration(120, 0),
            tcache_sim::figures::FIG7D_TTLS.to_vec(),
        )
    };
    println!("Figure 7d — TTL-limited cache baseline on realistic workloads");
    println!("simulated duration per point: {duration}, seed {}", options.seed);
    println!(
        "{:>28} {:>8} {:>14} {:>10} {:>14}",
        "workload", "ttl[s]", "inconsistent", "hit", "db reads/s"
    );
    for row in figures::fig7d(duration, options.seed, &ttls) {
        println!(
            "{:>28} {:>8} {:>14} {:>10.3} {:>14.1}",
            row.workload.to_string(),
            row.ttl_secs.unwrap_or_default(),
            pct(row.inconsistency_pct),
            row.hit_ratio,
            row.db_reads_per_sec
        );
    }
}
