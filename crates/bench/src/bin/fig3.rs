//! Figure 3: ratio of detected inconsistencies as a function of the Pareto
//! α parameter of the synthetic clustered workload.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(60, 6);
    println!("Figure 3 — detected inconsistencies vs Pareto alpha (dep bound 5, ABORT)");
    println!("simulated duration per point: {duration}, seed {}", options.seed);
    println!("{:>10} {:>12} {:>16} {:>10}", "alpha", "detected", "inconsistent", "aborted");
    for row in figures::fig3(duration, options.seed) {
        println!(
            "{:>10.4} {:>12} {:>16} {:>10}",
            row.alpha,
            pct(row.detected_pct),
            pct(row.inconsistency_pct),
            pct(row.aborted_pct)
        );
    }
}
