//! The open-loop scenario engine experiment: the five-scenario catalog —
//! hot-key storm, flash crowd, diurnal curve, invalidation stampede,
//! cache churn — executed on the live lockstep plane, with modeled client
//! latency quantiles (p50/p99/p999) per scenario and per cache, plus the
//! star-vs-two-tier invalidation topology comparison.
//!
//! The whole figure is a deterministic function of `(duration, seed)`:
//! the bin runs it **twice** and asserts the two `ScenarioFigure`s are
//! bit-identical — verdicts, drop counts and histogram quantiles — so CI
//! fails loudly if replay determinism regresses. It also asserts the
//! two-tier tree cuts the database's publisher fan-out without changing
//! any leaf's verdicts.
//!
//! Results are merged into `BENCH_hotpath.json` as a `"scenarios"`
//! section (the rest of the file is left untouched) and appended to
//! `BENCH_history.jsonl` as a `"scenarios_quick"`-keyed row, with a delta
//! report against the previous scenarios row of the same regime.
//!
//! Flags: `--quick` (short run), `--seed <n>`, `--out <path>`,
//! `--history <path>`.

use tcache_bench::{git_short_sha, history_comparison, pct, RunOptions};
use tcache_sim::figures::{scenarios, ScenarioFigure, SCENARIO_CACHES};

/// Splices the scenarios section into the hotpath JSON: replaces a
/// previous `"scenarios"` section if one is present (it is always the
/// final section, appended by this bin), otherwise extends the object —
/// or starts a fresh file when `bench_hotpath` has not run yet.
fn merge_into_hotpath_json(existing: Option<&str>, section: &str) -> String {
    const MARKER: &str = "\n  \"scenarios\":";
    let Some(existing) = existing else {
        return format!("{{{MARKER} {section}\n}}\n");
    };
    let body = match existing.find(MARKER) {
        Some(at) => existing[..at].trim_end(),
        None => existing
            .trim_end()
            .strip_suffix('}')
            .unwrap_or(existing)
            .trim_end(),
    };
    let body = body.strip_suffix(',').unwrap_or(body);
    if body == "{" || body.is_empty() {
        format!("{{{MARKER} {section}\n}}\n")
    } else {
        format!("{body},{MARKER} {section}\n}}\n")
    }
}

fn render_section(figure: &ScenarioFigure, secs: f64) -> String {
    let rows: Vec<String> = figure
        .rows
        .iter()
        .map(|row| {
            format!(
                "      {{ \"scenario\": \"{}\", \"reads\": {}, \"updates\": {}, \
                 \"inconsistency_pct\": {:.3}, \"abort_pct\": {:.3}, \
                 \"degraded_pct\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"p999_us\": {}, \"dropped\": {} }}",
                row.scenario,
                row.reads,
                row.updates,
                row.inconsistency_pct,
                row.abort_pct,
                row.degraded_pct,
                row.p50_us,
                row.p99_us,
                row.p999_us,
                row.dropped
            )
        })
        .collect();
    format!(
        "{{\n    \"schedule_secs\": {secs},\n    \"caches\": {SCENARIO_CACHES},\n    \
         \"star_fanout\": {},\n    \"two_tier_fanout\": {},\n    \
         \"star_inconsistency_pct\": {:.3},\n    \
         \"two_tier_inconsistency_pct\": {:.3},\n    \
         \"two_tier_matches_star\": {},\n    \"rows\": [\n{}\n    ]\n  }}",
        figure.star_fanout,
        figure.two_tier_fanout,
        figure.star_inconsistency_pct,
        figure.two_tier_inconsistency_pct,
        figure.two_tier_matches_star,
        rows.join(",\n")
    )
}

fn main() {
    let options = RunOptions::from_env();
    let mut out = String::from("BENCH_hotpath.json");
    let mut history = String::from("BENCH_history.jsonl");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(path) = args.next() {
                    out = path;
                }
            }
            "--history" => {
                if let Some(path) = args.next() {
                    history = path;
                }
            }
            _ => {}
        }
    }
    let duration = options.duration(20, 3);

    println!(
        "scenario engine: 5-scenario catalog, {SCENARIO_CACHES} caches, live lockstep plane, \
         {}s schedule (seed {})",
        duration.as_secs_f64(),
        options.seed
    );
    let figure = scenarios(duration, options.seed);
    // Replay determinism is the tentpole promise: the identical call must
    // reproduce every verdict and every histogram quantile bit for bit.
    let replay = scenarios(duration, options.seed);
    assert_eq!(
        figure, replay,
        "the scenario engine must be bit-identical under replay (same seed, same figure)"
    );

    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "reads", "updates", "incons", "abort", "degraded", "p50us", "p99us",
        "p999us", "dropped"
    );
    for row in &figure.rows {
        println!(
            "{:>14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            row.scenario,
            row.reads,
            row.updates,
            pct(row.inconsistency_pct),
            pct(row.abort_pct),
            pct(row.degraded_pct),
            row.p50_us,
            row.p99_us,
            row.p999_us,
            row.dropped
        );
    }
    println!("\nper-cache latency tails:");
    println!(
        "{:>14} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "cache", "reads", "incons", "p50us", "p99us", "p999us"
    );
    for row in &figure.per_cache {
        println!(
            "{:>14} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
            row.scenario,
            row.cache,
            row.reads,
            pct(row.inconsistency_pct),
            row.p50_us,
            row.p99_us,
            row.p999_us
        );
    }
    println!(
        "\ninvalidation topology: star publishes to {} caches, two-tier to {} roots \
         (inconsistency {} vs {}, leaf verdicts identical: {})",
        figure.star_fanout,
        figure.two_tier_fanout,
        pct(figure.star_inconsistency_pct),
        pct(figure.two_tier_inconsistency_pct),
        figure.two_tier_matches_star
    );

    // Sanity guards so CI fails loudly (the bin runs with --quick on
    // every push).
    for row in &figure.rows {
        assert!(row.reads > 0, "{}: scenarios must generate traffic", row.scenario);
        assert!(
            row.p50_us <= row.p99_us && row.p99_us <= row.p999_us,
            "{}: latency quantiles must be ordered",
            row.scenario
        );
        assert!(row.p999_us > 0, "{}: the latency histograms must be populated", row.scenario);
    }
    assert!(
        figure.two_tier_fanout < figure.star_fanout,
        "the two-tier tree must cut the database's publisher fan-out \
         ({} vs {})",
        figure.two_tier_fanout,
        figure.star_fanout
    );
    assert!(
        figure.two_tier_matches_star,
        "lossless regional parents must leave every leaf's verdicts and drops unchanged"
    );

    let existing = std::fs::read_to_string(&out).ok();
    let merged = merge_into_hotpath_json(existing.as_deref(), &render_section(&figure, duration.as_secs_f64()));
    std::fs::write(&out, merged).expect("write BENCH_hotpath.json");
    println!("\nmerged scenarios section into {out}");

    // The tracked trajectory: one git-SHA-stamped row per run. The marker
    // key is `scenarios_quick` (not `quick`) so `bench_hotpath`'s own
    // history scan never mistakes a scenarios row for a hotpath row, and
    // vice versa; each bin compares like with like against the most
    // recent previous row of its own kind and regime.
    let regime = u64::from(options.quick) as f64;
    let mut current: Vec<(String, f64)> = vec![("scenarios_quick".to_string(), regime)];
    for row in &figure.rows {
        current.push((format!("{}_reads", row.scenario), row.reads as f64));
        current.push((
            format!("{}_inconsistency_pct", row.scenario),
            row.inconsistency_pct,
        ));
        current.push((format!("{}_p99_us", row.scenario), row.p99_us as f64));
        current.push((format!("{}_p999_us", row.scenario), row.p999_us as f64));
    }
    current.push(("two_tier_fanout".to_string(), figure.two_tier_fanout as f64));
    current.push((
        "two_tier_matches_star".to_string(),
        f64::from(figure.two_tier_matches_star),
    ));
    let current_refs: Vec<(&str, f64)> = current
        .iter()
        .map(|(key, value)| (key.as_str(), *value))
        .collect();
    let previous = std::fs::read_to_string(&history).ok().and_then(|contents| {
        contents
            .lines()
            .rev()
            .find(|line| {
                tcache_bench::parse_flat_numbers(line)
                    .iter()
                    .any(|(key, value)| key == "scenarios_quick" && *value == regime)
            })
            .map(String::from)
    });
    let sha = git_short_sha();
    let row = format!(
        "{{\"sha\": \"{sha}\", {}}}\n",
        current_refs
            .iter()
            // Three decimals: the inconsistency percentages live in the
            // single digits, where one-decimal rounding would show phantom
            // deltas between identical runs.
            .map(|(key, value)| format!("\"{key}\": {value:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    use std::io::Write;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .and_then(|mut file| file.write_all(row.as_bytes()))
        .expect("append bench history row");
    println!("appended {history} row for {sha}");
    match previous.as_deref().and_then(|prev| history_comparison(prev, &current_refs)) {
        Some(report) => println!("{report}"),
        None => println!(
            "(no previous {} scenarios row to compare against)",
            if options.quick { "quick" } else { "full-run" }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::merge_into_hotpath_json;

    #[test]
    fn merge_starts_a_fresh_file_and_is_idempotent() {
        let first = merge_into_hotpath_json(None, "{ \"x\": 1 }");
        assert_eq!(first, "{\n  \"scenarios\": { \"x\": 1 }\n}\n");
        // Re-merging replaces the section instead of duplicating it.
        let second = merge_into_hotpath_json(Some(&first), "{ \"x\": 2 }");
        assert_eq!(second, "{\n  \"scenarios\": { \"x\": 2 }\n}\n");
    }

    #[test]
    fn merge_extends_an_existing_hotpath_file_and_replaces_on_rerun() {
        let hotpath = "{\n  \"bench\": \"hotpath\",\n  \"speedup\": 2.5\n}\n";
        let merged = merge_into_hotpath_json(Some(hotpath), "{ \"x\": 1 }");
        assert_eq!(
            merged,
            "{\n  \"bench\": \"hotpath\",\n  \"speedup\": 2.5,\n  \"scenarios\": { \"x\": 1 }\n}\n"
        );
        let again = merge_into_hotpath_json(Some(&merged), "{ \"x\": 2 }");
        assert_eq!(
            again,
            "{\n  \"bench\": \"hotpath\",\n  \"speedup\": 2.5,\n  \"scenarios\": { \"x\": 2 }\n}\n"
        );
    }
}
