//! Figure 4: convergence of T-Cache when uniformly random accesses suddenly
//! become perfectly clustered at t = 58 s.

use tcache_bench::RunOptions;
use tcache_sim::figures;
use tcache_types::{SimDuration, SimTime};

fn main() {
    let options = RunOptions::from_env();
    let (total, switch) = if options.quick {
        (SimDuration::from_secs(20), SimTime::from_secs(8))
    } else {
        (SimDuration::from_secs(160), SimTime::from_secs(58))
    };
    println!("Figure 4 — convergence after cluster formation at t = {switch}");
    println!("rates in transactions per second, seed {}", options.seed);
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "time[s]", "consistent", "inconsistent", "aborted"
    );
    for p in figures::fig4(total, switch, options.seed) {
        println!(
            "{:>8.0} {:>12.1} {:>14.1} {:>10.1}",
            p.time_secs, p.consistent_rate, p.inconsistent_rate, p.aborted_rate
        );
    }
}
