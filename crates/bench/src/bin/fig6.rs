//! Figure 6: efficacy of the ABORT / EVICT / RETRY strategies on the
//! approximately clustered synthetic workload (α = 1.0, dep bound 5).

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(60, 6);
    println!("Figure 6 — strategy comparison on the synthetic workload (alpha = 1.0)");
    println!("simulated duration per bar: {duration}, seed {}", options.seed);
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "strategy", "consistent", "inconsistent", "aborted"
    );
    for row in figures::fig6(duration, options.seed) {
        println!(
            "{:>8} {:>12} {:>14} {:>10}",
            row.strategy.to_string(),
            pct(row.consistent_pct),
            pct(row.inconsistent_pct),
            pct(row.aborted_pct)
        );
    }
}
