//! Figure 7c: T-Cache on the retail-affinity (Amazon-like) and
//! social-network (Orkut-like) workloads as a function of the
//! dependency-list bound: inconsistency ratio, hit ratio and database load.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(60, 6);
    println!("Figure 7c — transactional cache on realistic workloads (ABORT strategy)");
    println!("simulated duration per point: {duration}, seed {}", options.seed);
    println!(
        "{:>28} {:>6} {:>14} {:>10} {:>14}",
        "workload", "k", "inconsistent", "hit", "db reads/s"
    );
    for row in figures::fig7c(duration, options.seed) {
        println!(
            "{:>28} {:>6} {:>14} {:>10.3} {:>14.1}",
            row.workload.to_string(),
            row.dependency_bound.unwrap_or_default(),
            pct(row.inconsistency_pct),
            row.hit_ratio,
            row.db_reads_per_sec
        );
    }
}
