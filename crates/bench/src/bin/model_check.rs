//! Exhaustive model checking of the protocol core, with counterexample
//! replay against the real stack.
//!
//! Explores every reachable interleaving of each scenario in the
//! `tcache-model` suite (backend + N caches + scripted transactions under
//! crashes, partitions, drops and reordering), checking the four
//! invariants — Theorem-1 serializability, monitor soundness, monitor
//! completeness and recovery safety — on the way, then demonstrates the
//! counterexample pipeline end to end:
//!
//! * an intentionally-broken monitor variant (interval test without the
//!   SGT fallback) must be caught as a monitor-soundness violation, the
//!   trace minimized, and the minimized trace replayed through the
//!   differential bridge onto the real `Database`/`EdgeCache`/monitor
//!   stack with every observable agreeing — including the defect itself;
//! * the no-recovery configuration must violate recovery safety
//!   (demonstrating the `GapResync` guarantee is load-bearing), with the
//!   stale cache entry reproduced on a live `EdgeCache`.
//!
//! Flags: `--quick` (exhaustive on the core scenario only; the CI gate).
//! Exit status is non-zero on any unexpected result.

use tcache_model::{
    explore, explore_epoch, explore_floor, minimize, CacheStatus, EpochExploration,
    EpochModelConfig, ExploreOptions, Exploration, FloorModelConfig, IntervalOnlyOracle,
    InvariantKind, ModelConfig, TwoTierOracle,
};
use tcache_sim::DifferentialBridge;
use tcache_types::{format_trace, ObjectId, SimTime, Version};

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let scenarios = if quick {
        ModelConfig::quick_suite()
    } else {
        ModelConfig::full_suite()
    };

    println!(
        "model_check: exhaustive BFS over {} scenario(s) ({} mode)",
        scenarios.len(),
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:>20} {:>10} {:>12} {:>7} {:>14}  invariants",
        "scenario", "states", "transitions", "depth", "finish-checks"
    );

    let mut failed = false;
    for config in &scenarios {
        let result = explore(config, &TwoTierOracle, ExploreOptions::default());
        report_scenario(config, &result, &mut failed);
    }

    epoch_reclamation_section(&mut failed);

    broken_oracle_demo(&mut failed);
    if !quick {
        no_recovery_demo(&mut failed);
    }

    if failed {
        println!("model_check: FAILED");
        std::process::exit(1);
    }
    println!("model_check: all invariants hold, counterexample pipeline verified");
}

fn report_scenario(config: &ModelConfig, result: &Exploration, failed: &mut bool) {
    let status = match (&result.violation, result.stats.truncated) {
        (Some((violation, _)), _) => {
            *failed = true;
            format!("VIOLATED ({violation})")
        }
        (None, true) => {
            *failed = true;
            "TRUNCATED (bounds hit — not exhaustive)".to_string()
        }
        (None, false) => "all hold (exhaustive)".to_string(),
    };
    println!(
        "{:>20} {:>10} {:>12} {:>7} {:>14}  {}",
        config.name,
        result.stats.states,
        result.stats.transitions,
        result.stats.depth,
        result.stats.finished_txn_checks,
        status
    );
    if let Some((violation, trace)) = &result.violation {
        println!("  counterexample:\n{}", format_trace(trace));
        println!("  violation: {violation}");
    }
}

/// Exhaustively checks the epoch-reclamation read path at sub-operation
/// granularity: the faithful protocol (validated pins, gated advance,
/// grace 3) and the locked invalidation/apply path must hold, while the
/// deliberately broken variants — ungated advance, grace 1, and the
/// stripe lock removed — must each produce a depth-minimal
/// counterexample, proving the model can see the races it guards.
fn epoch_reclamation_section(failed: &mut bool) {
    println!("\nepoch reclamation model: pin/retire/advance interleavings");
    let healthy: [(&str, EpochExploration); 2] = [
        ("epoch_faithful", explore_epoch(&EpochModelConfig::faithful())),
        ("floor_locked", explore_floor(&FloorModelConfig::locked())),
    ];
    for (name, result) in &healthy {
        let status = match (&result.violation, result.stats.truncated) {
            (Some(violation), _) => {
                *failed = true;
                format!("VIOLATED ({violation})")
            }
            (None, true) => {
                *failed = true;
                "TRUNCATED (bounds hit — not exhaustive)".to_string()
            }
            (None, false) => "holds (exhaustive)".to_string(),
        };
        println!(
            "{:>20} {:>10} {:>12} {:>7} {:>14}  {}",
            name,
            result.stats.states,
            result.stats.transitions,
            result.stats.depth,
            result.stats.reclaims,
            status
        );
        if let Some(violation) = &result.violation {
            println!("  counterexample:");
            for step in &violation.trace {
                println!("    {step}");
            }
        }
    }
    if healthy[0].1.stats.reclaims == 0 {
        println!("  FAILED: faithful exploration never reclaimed (vacuous invariant)");
        *failed = true;
    }

    let broken: [(&str, EpochExploration, &str); 3] = [
        (
            "epoch_ungated_advance",
            explore_epoch(&EpochModelConfig::ungated_advance()),
            "reclaimed node",
        ),
        (
            "epoch_short_grace",
            explore_epoch(&EpochModelConfig::short_grace()),
            "reclaimed node",
        ),
        (
            "floor_unlocked",
            explore_floor(&FloorModelConfig::unlocked()),
            "lost",
        ),
    ];
    for (name, result, needle) in &broken {
        let Some(violation) = &result.violation else {
            println!("{name:>20}  FAILED: the broken variant was not caught");
            *failed = true;
            continue;
        };
        if !violation.description.contains(needle) {
            println!("{name:>20}  FAILED: unexpected violation ({violation})");
            *failed = true;
            continue;
        }
        println!(
            "{:>20}  caught after {} states, {}-step counterexample: {}",
            name,
            result.stats.states,
            violation.trace.len(),
            violation
        );
    }
}

/// Checks that the checker *detects* monitor bugs: the interval-only
/// oracle must produce a minimized monitor-soundness counterexample whose
/// bridge replay reproduces the divergence on the real monitor.
fn broken_oracle_demo(failed: &mut bool) {
    println!("\nbroken-oracle demo: interval-only monitor (SGT fallback removed)");
    let config = ModelConfig::independent_updates();
    let result = explore(&config, &IntervalOnlyOracle, ExploreOptions::default());
    let Some((violation, trace)) = result.violation else {
        println!("  FAILED: the broken oracle was not caught");
        *failed = true;
        return;
    };
    if violation.kind != InvariantKind::MonitorSoundness {
        println!("  FAILED: expected monitor-soundness, got {violation}");
        *failed = true;
        return;
    }
    let minimized = minimize(&config, &IntervalOnlyOracle, &trace, false);
    println!(
        "  caught after {} states; counterexample minimized {} → {} actions:",
        result.stats.states,
        trace.len(),
        minimized.len()
    );
    println!("{}", format_trace(&minimized));

    let mut bridge = DifferentialBridge::new(&config);
    for &action in &minimized {
        if let Err(divergence) = bridge.step(action) {
            println!("  FAILED: {divergence}");
            *failed = true;
            return;
        }
    }
    let report = bridge.report();
    let Some(txn) = report.finished.last() else {
        println!("  FAILED: no transaction finished in the replay");
        *failed = true;
        return;
    };
    let typed: Vec<(ObjectId, Version)> = txn
        .observed
        .iter()
        .map(|&(o, v)| (ObjectId(o), Version(v)))
        .collect();
    let interval = bridge.monitor().interval_consistent(&typed);
    let two_tier = txn.monitor_serializable;
    println!(
        "  replay on real stack: {} comparisons, all agree; reads {:?}",
        report.comparisons, txn.observed
    );
    println!(
        "  real monitor: interval-only {} / two-tier {} / ground truth {}",
        verdict(interval),
        verdict(two_tier),
        verdict(txn.ground_truth)
    );
    if interval || !two_tier || !txn.ground_truth {
        println!("  FAILED: the real monitor does not reproduce the model's divergence");
        *failed = true;
    }
}

/// Checks that recovery safety is load-bearing: without `GapResync` a
/// dropped invalidation leaves a healthy cache serving a stale version,
/// on the model and on a live `EdgeCache` alike.
fn no_recovery_demo(failed: &mut bool) {
    println!("\nno-recovery demo: RecoveryPolicy::None under a dropped invalidation");
    let config = ModelConfig::no_recovery();
    let options = ExploreOptions {
        force_recovery_check: true,
        ..ExploreOptions::default()
    };
    let result = explore(&config, &TwoTierOracle, options);
    let Some((violation, trace)) = result.violation else {
        println!("  FAILED: staleness was not reachable");
        *failed = true;
        return;
    };
    if violation.kind != InvariantKind::RecoverySafety {
        println!("  FAILED: expected recovery-safety, got {violation}");
        *failed = true;
        return;
    }
    let minimized = minimize(&config, &TwoTierOracle, &trace, true);
    println!(
        "  caught after {} states; counterexample minimized {} → {} actions:",
        result.stats.states,
        trace.len(),
        minimized.len()
    );
    println!("{}", format_trace(&minimized));

    let mut bridge = DifferentialBridge::new(&config);
    for &action in &minimized {
        if let Err(divergence) = bridge.step(action) {
            println!("  FAILED: {divergence}");
            *failed = true;
            return;
        }
    }
    // Find the stale entry the model ends with and probe the live cache:
    // it must serve the same stale version the model predicts, while the
    // backend is already newer.
    let model = bridge.model();
    let stream = model.full_stream(&config);
    let mut demonstrated = false;
    for (c, cache) in model.caches.iter().enumerate() {
        if cache.status != CacheStatus::Healthy {
            continue;
        }
        for (&object, entry) in &cache.store {
            let announced = stream
                .iter()
                .filter(|inv| inv.seq <= cache.last_seq && inv.object == object)
                .map(|inv| inv.version)
                .max()
                .unwrap_or(0);
            if entry.version >= announced {
                continue;
            }
            let stale = entry.version;
            let served = bridge
                .cache(c)
                .read(SimTime::from_secs(model.clock), tcache_model::read_txn_id(99), ObjectId(object), true)
                .expect("probe read");
            let backend = bridge
                .database()
                .peek_entry(ObjectId(object))
                .expect("backend entry")
                .version;
            println!(
                "  live cache {c} serves o{object}@{} (stale, stream announced @{announced}, backend @{}) — matches model @{stale}",
                served.version.0, backend.0
            );
            if served.version.0 != stale || backend.0 < announced {
                println!("  FAILED: live stack does not reproduce the staleness");
                *failed = true;
            }
            demonstrated = true;
        }
    }
    if !demonstrated {
        println!("  FAILED: no stale entry to demonstrate");
        *failed = true;
    }
}

fn verdict(serializable: bool) -> &'static str {
    if serializable {
        "serializable"
    } else {
        "flagged"
    }
}
