//! Extension experiment (beyond the paper's single-column setup): four edge
//! caches over one database, each with its own independently seeded
//! invalidation channel at a heterogeneous loss rate. Prints the per-cache
//! inconsistency-vs-loss trend for the plain cache and T-Cache, plus the
//! deployment-wide aggregates.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(30, 5);
    println!("Multi-cache deployment — per-cache inconsistency vs link loss (k = 5, ABORT)");
    println!("simulated duration: {duration}, seed {}", options.seed);
    println!(
        "{:>8} {:>8} {:>16} {:>16} {:>14} {:>10}",
        "cache", "loss", "plain incons.", "tcache incons.", "tcache abort", "hit ratio"
    );
    let figure = figures::multi_cache(duration, options.seed, &figures::MULTI_CACHE_LOSSES);
    for row in &figure.rows {
        println!(
            "{:>8} {:>8.2} {:>16} {:>16} {:>14} {:>10.3}",
            row.cache,
            row.loss,
            pct(row.plain_inconsistency_pct),
            pct(row.tcache_inconsistency_pct),
            pct(row.tcache_aborted_pct),
            row.tcache_hit_ratio,
        );
    }
    println!(
        "aggregate over all caches: plain {} → tcache {}",
        pct(figure.plain_aggregate_inconsistency_pct),
        pct(figure.tcache_aggregate_inconsistency_pct),
    );
}
