//! The fault-tolerance experiment: post-heal inconsistency as a function of
//! partition length, with and without gap-triggered recovery.
//!
//! A plain cache on a reliable zero-delay link is partitioned from the
//! backend for a window of each swept length (next to an unfaulted control
//! cache). Without recovery the cache comes back silently stale and keeps
//! committing inconsistent transactions after the heal; with
//! sequence-numbered invalidation streams and gap-triggered resync the
//! cache replays the database's invalidation log on reconnect (or performs
//! a snapshot resync once the log has been truncated) and post-heal
//! inconsistency returns to the healthy baseline. Partitions outlasting
//! the staleness budget degrade the cache to pass-through reads, which are
//! never inconsistent.
//!
//! Flags: `--quick` (short run, fewer partition lengths), `--seed <n>`.

use tcache_bench::RunOptions;
use tcache_sim::figures::fault_tolerance;
use tcache_types::SimDuration;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(30, 8);
    let partitions_ms: &[u64] = if options.quick {
        &[500, 4000]
    } else {
        &[500, 1000, 2000, 4000, 8000]
    };
    let budget = SimDuration::from_millis(100);

    println!(
        "fault tolerance: plain cache, zero loss/delay, partition at t=1s, \
         staleness budget {budget}, {}s run (seed {})",
        duration.as_secs_f64(),
        options.seed
    );
    println!(
        "{:>8} {:>30} {:>8} {:>10} {:>9} {:>6} {:>8} {:>8} {:>9}",
        "part", "recovery", "incons", "post-heal", "degraded", "gaps", "missed", "replays", "snapshots"
    );
    let rows = fault_tolerance(duration, options.seed, partitions_ms, budget);
    for row in &rows {
        println!(
            "{:>6}ms {:>30} {:>8} {:>10} {:>9} {:>6} {:>8} {:>8} {:>9}",
            row.partition_ms,
            row.recovery,
            row.inconsistent,
            row.post_heal_inconsistent,
            row.degraded_txns,
            row.gaps_detected,
            row.invalidations_missed,
            row.log_replays,
            row.snapshot_resyncs
        );
    }

    // Sanity guards so CI fails loudly if the recovery plumbing breaks
    // (the bin is run with --quick on every push).
    let none_rows: Vec<_> = rows.iter().filter(|r| r.recovery == "no-recovery").collect();
    let resync_rows: Vec<_> = rows.iter().filter(|r| r.recovery != "no-recovery").collect();
    assert!(
        none_rows.iter().all(|r| r.post_heal_inconsistent > 0),
        "without recovery the healed cache must keep serving stale data"
    );
    assert!(
        none_rows.last().unwrap().inconsistent > none_rows.first().unwrap().inconsistent,
        "inconsistency must grow with the partition length"
    );
    assert!(
        resync_rows.iter().all(|r| r.post_heal_inconsistent == 0),
        "gap-triggered resync must restore the healthy baseline after the heal"
    );
    assert!(
        resync_rows.last().unwrap().snapshot_resyncs > 0,
        "the longest partition must outlive the invalidation log and force a snapshot resync"
    );
    assert!(
        rows.iter().all(|r| r.degraded_inconsistent == 0),
        "degraded-window reads come from the backend and are never violations"
    );
}
