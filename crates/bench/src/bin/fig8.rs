//! Figure 8: efficacy of ABORT / EVICT / RETRY on the realistic workloads
//! with dependency lists bounded at 3.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(60, 6);
    println!("Figure 8 — strategy comparison on realistic workloads (dep bound 3)");
    println!("simulated duration per bar: {duration}, seed {}", options.seed);
    println!(
        "{:>28} {:>8} {:>12} {:>14} {:>10}",
        "workload", "strategy", "consistent", "inconsistent", "aborted"
    );
    for row in figures::fig8(duration, options.seed) {
        println!(
            "{:>28} {:>8} {:>12} {:>14} {:>10}",
            row.workload.map(|w| w.to_string()).unwrap_or_default(),
            row.strategy.to_string(),
            pct(row.consistent_pct),
            pct(row.inconsistent_pct),
            pct(row.aborted_pct)
        );
    }
}
