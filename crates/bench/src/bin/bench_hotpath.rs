//! Hot-path throughput measurement with a machine-readable trail.
//!
//! Runs the hit-heavy read workload of the `concurrent_reads` criterion
//! bench standalone, measures single-thread latency and 1/2/4/8-thread
//! aggregate throughput plus multi-cache scaling (1/2/4 caches over one
//! shared database, one thread per cache), prints the tables, and writes
//! `BENCH_hotpath.json` into the current directory so future changes have a
//! perf trajectory to compare against.
//!
//! Flags:
//! * `--quick` — one short round (CI smoke; still writes the JSON);
//! * `--out <path>` — where to write the JSON (default `BENCH_hotpath.json`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig};
use tcache_types::{AccessSet, CacheId, ObjectId, SimTime, Strategy, TxnId, Value};

const OBJECTS: u64 = 1024;
const READS_PER_TXN: u64 = 3;

fn warmed_db() -> Arc<Database> {
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
    db.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    for i in 0..200u64 {
        let base = (i * 5) % (OBJECTS - 2);
        let access: AccessSet = vec![base, base + 1, base + 2].into();
        db.execute_update(TxnId(i + 1), &access).unwrap();
    }
    db
}

fn warmed_caches(db: &Arc<Database>, count: u32) -> Vec<Arc<EdgeCache>> {
    (0..count)
        .map(|c| {
            let cache = Arc::new(EdgeCache::tcache(
                CacheId(c),
                Arc::clone(db),
                3,
                Strategy::Abort,
            ));
            for i in 0..OBJECTS {
                cache
                    .read(SimTime::ZERO, TxnId(1_000_000 + i), ObjectId(i), true)
                    .unwrap();
            }
            cache
        })
        .collect()
}

fn warmed_cache() -> Arc<EdgeCache> {
    warmed_caches(&warmed_db(), 1).pop().expect("one cache")
}

/// Runs `txns_per_thread` hit transactions on each of `threads` threads, all
/// hammering the same cache; returns aggregate transactions per second.
fn measure(cache: &Arc<EdgeCache>, threads: u64, txns_per_thread: u64, seed: &AtomicU64) -> f64 {
    let shared: Vec<Arc<EdgeCache>> =
        (0..threads).map(|_| Arc::clone(cache)).collect();
    measure_threads(&shared, txns_per_thread, seed)
}

/// Runs `txns_per_thread` hit transactions on one thread per entry of
/// `caches` (the same cache repeated measures thread scaling, distinct
/// caches over one database measure cache scaling); returns aggregate
/// transactions per second.
fn measure_threads(caches: &[Arc<EdgeCache>], txns_per_thread: u64, seed: &AtomicU64) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = caches
        .iter()
        .enumerate()
        .map(|(t, cache)| {
            let cache = Arc::clone(cache);
            let base_txn = seed.fetch_add(txns_per_thread + 1, Ordering::Relaxed);
            std::thread::spawn(move || {
                for i in 0..txns_per_thread {
                    let txn = TxnId(base_txn + i);
                    let base = (t as u64 * 131 + i * 3) % (OBJECTS - 2);
                    let keys = [ObjectId(base), ObjectId(base + 1), ObjectId(base + 2)];
                    let outcome = cache
                        .execute_transaction(SimTime::ZERO, txn, &keys)
                        .expect("backend reachable");
                    std::hint::black_box(outcome);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    (caches.len() as u64 * txns_per_thread) as f64 / elapsed
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_hotpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                if let Some(path) = args.next() {
                    out = path;
                }
            }
            _ => {}
        }
    }

    let txns_per_thread: u64 = if quick { 2_000 } else { 50_000 };
    let rounds = if quick { 1 } else { 3 };
    let cache = warmed_cache();
    let seed = AtomicU64::new(10_000_000);

    println!(
        "hot path: {READS_PER_TXN}-read hit transactions over {OBJECTS} cached objects \
         ({txns_per_thread} txns/thread, best of {rounds})"
    );
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!("{:>8} {:>16} {:>14} {:>10}", "threads", "txn/s", "ns/read", "speedup");

    let mut results: Vec<(u64, f64)> = Vec::new();
    for &threads in &[1u64, 2, 4, 8] {
        let best = (0..rounds)
            .map(|_| measure(&cache, threads, txns_per_thread, &seed))
            .fold(0.0f64, f64::max);
        results.push((threads, best));
        let single = results[0].1;
        println!(
            "{threads:>8} {best:>16.0} {:>14.1} {:>9.2}x",
            1e9 / (best * READS_PER_TXN as f64),
            best / single
        );
    }

    // Multi-cache scaling: N independent edge caches over one shared
    // database, one client thread per cache. Each cache has its own striped
    // storage and transaction table, so this measures how much of the hot
    // path is genuinely cache-local versus shared-backend.
    println!("\ncache scaling: one thread per cache, {txns_per_thread} txns/thread");
    println!("{:>8} {:>16} {:>10}", "caches", "txn/s", "speedup");
    let db = warmed_db();
    let mut cache_scaling: Vec<(u32, f64)> = Vec::new();
    for &cache_count in &[1u32, 2, 4] {
        let caches = warmed_caches(&db, cache_count);
        let best = (0..rounds)
            .map(|_| measure_threads(&caches, txns_per_thread, &seed))
            .fold(0.0f64, f64::max);
        cache_scaling.push((cache_count, best));
        let single_cache = cache_scaling[0].1;
        println!("{cache_count:>8} {best:>16.0} {:>9.2}x", best / single_cache);
    }

    let single = results[0].1;
    let fields: Vec<String> = results
        .iter()
        .map(|(t, tps)| format!("    \"threads_{t}_txn_per_sec\": {tps:.1}"))
        .collect();
    let cache_fields: Vec<String> = cache_scaling
        .iter()
        .map(|(c, tps)| format!("    \"caches_{c}_txn_per_sec\": {tps:.1}"))
        .collect();
    let single_cache = cache_scaling[0].1;
    let json = format!(
        "{{\n  \"bench\": \"hotpath_concurrent_reads\",\n  \"objects\": {OBJECTS},\n  \
         \"reads_per_txn\": {READS_PER_TXN},\n  \"txns_per_thread\": {txns_per_thread},\n  \
         \"host_threads\": {},\n  \"results\": {{\n{}\n  }},\n  \
         \"cache_scaling\": {{\n{}\n  }},\n  \
         \"single_thread_ns_per_read\": {:.1},\n  \"speedup_4_threads\": {:.3},\n  \
         \"speedup_4_caches\": {:.3}\n}}\n",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
        fields.join(",\n"),
        cache_fields.join(",\n"),
        1e9 / (single * READS_PER_TXN as f64),
        results.iter().find(|(t, _)| *t == 4).map_or(0.0, |(_, tps)| tps / single),
        cache_scaling
            .iter()
            .find(|(c, _)| *c == 4)
            .map_or(0.0, |(_, tps)| tps / single_cache),
    );
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    println!("wrote {out}");
}
