//! Hot-path throughput measurement with a machine-readable trail.
//!
//! Runs the hit-heavy read workload of the `concurrent_reads` criterion
//! bench standalone, measures single-thread latency and 1/2/4/8-thread
//! aggregate throughput plus multi-cache scaling (1/2/4 caches over one
//! shared database, one thread per cache), compares the two invalidation
//! planes (thread-per-cache vs one reactor thread multiplexing every
//! cache's pipe), records the inconsistency-vs-pipe-capacity sweep, prints
//! the tables, and writes `BENCH_hotpath.json` into the current directory
//! so future changes have a perf trajectory to compare against.
//!
//! Every throughput row is the **minimum of `rounds` repetitions** (the
//! most conservative round — a history row can only improve when the code
//! actually gets faster), printed alongside the spread
//! `(max - min) / min` so noisy rows are visible at a glance. The
//! `read txn fast path` table exercises the allocation-free
//! single-shot read path ([`EdgeCache::execute_read_only`]) and reports
//! allocations per transaction (counted by this binary's own global
//! allocator), ns per read and the table-promotion rate.
//!
//! Also runs the cross-plane comparison (the `figures::live_plane`
//! experiment: the inconsistency-vs-loss trend on the live reactor stack
//! versus the discrete-event simulator, plus the live stack's wall-clock
//! read throughput) and appends a git-SHA-stamped summary row to
//! `BENCH_history.jsonl`, printing the delta against the previous row —
//! the commit-over-commit perf trajectory.
//!
//! Flags:
//! * `--quick` — one short round (CI smoke; still writes the JSON);
//! * `--out <path>` — where to write the JSON (default `BENCH_hotpath.json`);
//! * `--history <path>` — where to append the history row (default
//!   `BENCH_history.jsonl`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tcache_cache::{CacheReadPath, EdgeCache};
use tcache_db::{Database, DatabaseConfig, Invalidation, ReadPath};
use tcache_net::delivery::DEFAULT_BATCH_BUDGET;
use tcache_net::pipe::{bounded_pipe, OverflowPolicy, UNBOUNDED};
use tcache_net::reactor::Reactor;
use tcache_bench::{git_short_sha, history_comparison};
use tcache_sim::figures::{backpressure, live_plane, LIVE_PLANE_LOSSES};
use tcache_types::{
    AccessSet, CacheId, CachePolicyConfig, ObjectId, RecoveryPolicy, SimDuration, SimTime,
    Strategy, TxnId, Value, Version,
};

const OBJECTS: u64 = 1024;
const READS_PER_TXN: u64 = 3;

/// Forwards to the system allocator, counting allocations per thread so the
/// `read txn fast path` row can report allocations per transaction without
/// other threads' activity bleeding into the count.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|count| count.set(count.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Min/max over repeated measurement rounds. The minimum is the reported
/// value; the spread quantifies run-to-run noise next to every row.
struct Measured {
    min: f64,
    max: f64,
}

impl Measured {
    fn spread_pct(&self) -> f64 {
        if self.min > 0.0 {
            (self.max - self.min) / self.min * 100.0
        } else {
            0.0
        }
    }
}

/// Runs `measure` `rounds` times and folds the samples into a [`Measured`].
fn repeat(rounds: u64, mut measure: impl FnMut() -> f64) -> Measured {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..rounds {
        let sample = measure();
        min = min.min(sample);
        max = max.max(sample);
    }
    Measured { min, max }
}

fn warmed_db_with(read_path: ReadPath) -> Arc<Database> {
    let db = Arc::new(Database::new(
        DatabaseConfig::with_bound(3).read_path(read_path),
    ));
    db.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    for i in 0..200u64 {
        let base = (i * 5) % (OBJECTS - 2);
        let access: AccessSet = vec![base, base + 1, base + 2].into();
        db.execute_update(TxnId(i + 1), &access).unwrap();
    }
    db
}

fn warmed_db() -> Arc<Database> {
    warmed_db_with(ReadPath::default())
}

fn warmed_caches(db: &Arc<Database>, count: u32) -> Vec<Arc<EdgeCache>> {
    (0..count)
        .map(|c| {
            let cache = Arc::new(EdgeCache::tcache(
                CacheId(c),
                Arc::clone(db),
                3,
                Strategy::Abort,
            ));
            for i in 0..OBJECTS {
                cache
                    .read(SimTime::ZERO, TxnId(1_000_000 + i), ObjectId(i), true)
                    .unwrap();
            }
            cache
        })
        .collect()
}

fn warmed_cache() -> Arc<EdgeCache> {
    warmed_caches(&warmed_db(), 1).pop().expect("one cache")
}

/// Like [`warmed_caches`], but with an explicit storage read path
/// (per-stripe-mutex baseline vs epoch-reclaimed lock-free hit path).
fn warmed_caches_with_path(
    db: &Arc<Database>,
    count: u32,
    read_path: CacheReadPath,
) -> Vec<Arc<EdgeCache>> {
    (0..count)
        .map(|c| {
            let cache = Arc::new(EdgeCache::with_read_path(
                CacheId(c),
                Arc::clone(db),
                CachePolicyConfig::tcache(3, Strategy::Abort),
                read_path,
            ));
            for i in 0..OBJECTS {
                cache
                    .read(SimTime::ZERO, TxnId(1_000_000 + i), ObjectId(i), true)
                    .unwrap();
            }
            cache
        })
        .collect()
}

/// Runs `txns_per_thread` hit transactions on each of `threads` threads, all
/// hammering the same cache; returns aggregate transactions per second.
fn measure(cache: &Arc<EdgeCache>, threads: u64, txns_per_thread: u64, seed: &AtomicU64) -> f64 {
    let shared: Vec<Arc<EdgeCache>> =
        (0..threads).map(|_| Arc::clone(cache)).collect();
    measure_threads(&shared, txns_per_thread, seed)
}

/// Runs `txns_per_thread` hit transactions on one thread per entry of
/// `caches` (the same cache repeated measures thread scaling, distinct
/// caches over one database measure cache scaling); returns aggregate
/// transactions per second.
fn measure_threads(caches: &[Arc<EdgeCache>], txns_per_thread: u64, seed: &AtomicU64) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = caches
        .iter()
        .enumerate()
        .map(|(t, cache)| {
            let cache = Arc::clone(cache);
            let base_txn = seed.fetch_add(txns_per_thread + 1, Ordering::Relaxed);
            std::thread::spawn(move || {
                for i in 0..txns_per_thread {
                    let txn = TxnId(base_txn + i);
                    let base = (t as u64 * 131 + i * 3) % (OBJECTS - 2);
                    let keys = [ObjectId(base), ObjectId(base + 1), ObjectId(base + 2)];
                    let outcome = cache
                        .execute_transaction(SimTime::ZERO, txn, &keys)
                        .expect("backend reachable");
                    std::hint::black_box(outcome);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    (caches.len() as u64 * txns_per_thread) as f64 / elapsed
}

/// Like [`measure`], but every transaction reads the *same* three hot
/// objects, so all threads collide on the same storage stripes. This is
/// the regime the epoch read path exists for: the locked path serializes
/// every hit on the hot stripe's mutex, the epoch path only contends on
/// the (skippable) LRU promotion.
fn measure_hot(cache: &Arc<EdgeCache>, threads: u64, txns_per_thread: u64, seed: &AtomicU64) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let cache = Arc::clone(cache);
            let base_txn = seed.fetch_add(txns_per_thread + 1, Ordering::Relaxed);
            std::thread::spawn(move || {
                let keys = [ObjectId(0), ObjectId(1), ObjectId(2)];
                for i in 0..txns_per_thread {
                    let txn = TxnId(base_txn + i);
                    let outcome = cache
                        .execute_transaction(SimTime::ZERO, txn, &keys)
                        .expect("backend reachable");
                    std::hint::black_box(outcome);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    (threads * txns_per_thread) as f64 / elapsed
}

/// One row of the database read-path sweep: aggregate reads/s and the
/// optimistic classification observed while measuring.
struct DbReadPathRow {
    miss_pct: f64,
    threads: u64,
    rwlock_reads_per_sec: f64,
    seqlock_reads_per_sec: f64,
    seqlock_hit_ratio: f64,
}

/// Measures the database read path under a controlled miss mix: each of
/// `threads` reader threads performs `reads_per_thread` single-object
/// reads, of which a `miss_permille`/1000 fraction are cache misses served
/// by [`Database::read_entry`] (the store read path under test) and the
/// rest are warmed edge-cache hits (no invalidations are delivered, so a
/// hit never touches the store). One background writer thread commits
/// update transactions the whole time, so miss reads race installs — the
/// scenario where the lock-per-read baseline blocks and the seqlock path
/// retries instead. The `miss_permille = 0` rows are therefore a *control*:
/// readers never reach the store and the rwlock/seqlock columns bound the
/// sweep's noise floor. Returns `(aggregate reads/s, optimistic hit
/// ratio)`; the ratio is computed over every store snapshot taken during
/// the window, which includes (and at miss 0 consists solely of) the
/// writer's own reads.
fn measure_db_read_path(
    read_path: ReadPath,
    threads: u64,
    miss_permille: u64,
    reads_per_thread: u64,
    seed: &AtomicU64,
) -> (f64, f64) {
    let db = warmed_db_with(read_path);
    let cache = warmed_caches(&db, 1).pop().expect("one cache");
    let before_reads = db.stats().read_path;

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let base_txn = seed.fetch_add(1_000_000_000, Ordering::Relaxed);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let base = (i * 13) % (OBJECTS - 2);
                let access: AccessSet = vec![base, base + 1, base + 2].into();
                let _ = db.execute_update(TxnId(base_txn + i), &access);
                i += 1;
            }
        })
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            let cache = Arc::clone(&cache);
            let base_txn = seed.fetch_add(reads_per_thread + 1, Ordering::Relaxed);
            std::thread::spawn(move || {
                for i in 0..reads_per_thread {
                    // splitmix-style mix keeps the key and the hit/miss
                    // draw deterministic but uncorrelated.
                    let mut z = (t << 32 | i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    z ^= z >> 29;
                    let key = ObjectId((z >> 24) % OBJECTS);
                    if z % 1000 < miss_permille {
                        std::hint::black_box(db.read_entry(key).expect("populated"));
                    } else {
                        let v = cache
                            .read(SimTime::ZERO, TxnId(base_txn + i), key, true)
                            .expect("warmed");
                        std::hint::black_box(v);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();

    let mut rp = db.stats().read_path;
    rp.optimistic_hits -= before_reads.optimistic_hits;
    rp.lock_fallbacks -= before_reads.lock_fallbacks;
    rp.locked_reads -= before_reads.locked_reads;
    let snapshots = rp.optimistic_hits + rp.lock_fallbacks + rp.locked_reads;
    let hit_ratio = if snapshots == 0 {
        1.0
    } else {
        rp.optimistic_hits as f64 / snapshots as f64
    };
    ((threads * reads_per_thread) as f64 / elapsed, hit_ratio)
}

/// Monotone version source shared by every invalidation-plane measurement,
/// so each plane and each round applies strictly fresh versions — the
/// caches' version guards never degrade a later measurement into ignored
/// no-ops.
static NEXT_INV_VERSION: AtomicU64 = AtomicU64::new(1_000_000);

/// One invalidation per message over a freshly reserved version range, so
/// every apply does real work (miss-floor bookkeeping, eviction of the
/// entry) regardless of what previous measurements applied.
fn invalidation_stream(count: u64) -> impl Iterator<Item = Invalidation> {
    let base = NEXT_INV_VERSION.fetch_add(count, Ordering::Relaxed);
    (0..count).map(move |i| {
        Invalidation::new(
            ObjectId(i % OBJECTS),
            Version(base + i),
            TxnId(base + i),
        )
    })
}

/// Thread-per-cache invalidation plane — the historical design this PR's
/// reactor replaces: each cache gets its own unbounded `crossbeam-channel`
/// queue and its own dedicated apply thread; the main thread publishes
/// `msgs_per_cache` invalidations to every queue. Returns aggregate applied
/// invalidations per second.
fn measure_threaded_plane(caches: &[Arc<EdgeCache>], msgs_per_cache: u64) -> f64 {
    let start = Instant::now();
    let mut senders = Vec::new();
    let handles: Vec<_> = caches
        .iter()
        .map(|cache| {
            let (tx, rx) = crossbeam_channel::unbounded::<Invalidation>();
            senders.push(tx);
            let cache = Arc::clone(cache);
            std::thread::spawn(move || {
                while let Ok(inv) = rx.recv() {
                    cache.apply_invalidation(inv);
                }
            })
        })
        .collect();
    for tx in &senders {
        for inv in invalidation_stream(msgs_per_cache) {
            let _ = tx.send(inv);
        }
    }
    drop(senders);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    (caches.len() as u64 * msgs_per_cache) as f64 / elapsed
}

/// Reactor invalidation plane: the same pipes, but every cache's apply loop
/// is an async task and one reactor thread multiplexes all of them, each
/// draining up to `batch_budget` invalidations per wakeup
/// ([`tcache_net::pipe::PipeReceiver::recv_batch_async`]). Returns
/// aggregate applied invalidations per second.
fn measure_reactor_plane(
    caches: &[Arc<EdgeCache>],
    msgs_per_cache: u64,
    batch_budget: usize,
) -> f64 {
    let start = Instant::now();
    let mut reactor = Reactor::new();
    let mut senders = Vec::new();
    for cache in caches {
        let (tx, rx) = bounded_pipe::<Invalidation>(UNBOUNDED, OverflowPolicy::Block);
        senders.push(tx);
        let cache = Arc::clone(cache);
        reactor.spawn(async move {
            let mut batch = Vec::with_capacity(batch_budget);
            loop {
                let drained = rx.recv_batch_async(&mut batch, batch_budget).await;
                if drained == 0 {
                    break;
                }
                for inv in batch.drain(..) {
                    cache.apply_invalidation(inv);
                }
            }
        });
    }
    let thread = std::thread::spawn(move || reactor.run());
    // Producer mirrors the consumer's batching: invalidations stream from
    // the backend in sequenced runs, so they are enqueued in windows of
    // `batch_budget` (one pipe lock + at most one wakeup per window).
    let mut chunk = Vec::with_capacity(batch_budget);
    for tx in &senders {
        for inv in invalidation_stream(msgs_per_cache) {
            chunk.push(inv);
            if chunk.len() == batch_budget {
                let _ = tx.send_batch(chunk.drain(..));
            }
        }
        let _ = tx.send_batch(chunk.drain(..));
    }
    drop(senders);
    thread.join().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    (caches.len() as u64 * msgs_per_cache) as f64 / elapsed
}

/// Healthy-path cost of the recovery plane: applies `count` consecutively
/// sequenced invalidations to a freshly warmed cache under the given
/// recovery policy and returns invalidations per second. The stream has no
/// gaps, so the gap-resync policy never actually resyncs — what this
/// measures is the steady-state bookkeeping every sequenced apply pays
/// (one relaxed load/store pair on the sequence tracker).
fn measure_recovery_overhead(policy: RecoveryPolicy, count: u64) -> f64 {
    let cache = warmed_cache();
    cache.set_recovery_policy(policy);
    let base = NEXT_INV_VERSION.fetch_add(count, Ordering::Relaxed);
    let start = Instant::now();
    for i in 0..count {
        cache.apply_invalidation(Invalidation::with_seq(
            ObjectId(i % OBJECTS),
            Version(base + i),
            TxnId(base + i),
            i + 1,
        ));
    }
    count as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_hotpath.json");
    let mut history = String::from("BENCH_history.jsonl");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                if let Some(path) = args.next() {
                    out = path;
                }
            }
            "--history" => {
                if let Some(path) = args.next() {
                    history = path;
                }
            }
            _ => {}
        }
    }

    let txns_per_thread: u64 = if quick { 2_000 } else { 50_000 };
    let rounds = if quick { 1 } else { 3 };
    let cache = warmed_cache();
    let seed = AtomicU64::new(10_000_000);

    println!(
        "hot path: {READS_PER_TXN}-read hit transactions over {OBJECTS} cached objects \
         ({txns_per_thread} txns/thread, min of {rounds})"
    );
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!(
        "{:>8} {:>16} {:>14} {:>10} {:>9}",
        "threads", "txn/s", "ns/read", "speedup", "spread"
    );

    let mut results: Vec<(u64, f64)> = Vec::new();
    for &threads in &[1u64, 2, 4, 8] {
        let sample = repeat(rounds, || measure(&cache, threads, txns_per_thread, &seed));
        results.push((threads, sample.min));
        let single = results[0].1;
        println!(
            "{threads:>8} {:>16.0} {:>14.1} {:>9.2}x {:>8.1}%",
            sample.min,
            1e9 / (sample.min * READS_PER_TXN as f64),
            sample.min / single,
            sample.spread_pct()
        );
    }

    // Multi-cache scaling: N independent edge caches over one shared
    // database, one client thread per cache. Each cache has its own striped
    // storage and transaction table, so this measures how much of the hot
    // path is genuinely cache-local versus shared-backend.
    println!("\ncache scaling: one thread per cache, {txns_per_thread} txns/thread");
    println!("{:>8} {:>16} {:>10} {:>9}", "caches", "txn/s", "speedup", "spread");
    let db = warmed_db();
    let mut cache_scaling: Vec<(u32, f64)> = Vec::new();
    for &cache_count in &[1u32, 2, 4] {
        let caches = warmed_caches(&db, cache_count);
        let sample = repeat(rounds, || measure_threads(&caches, txns_per_thread, &seed));
        cache_scaling.push((cache_count, sample.min));
        let single_cache = cache_scaling[0].1;
        println!(
            "{cache_count:>8} {:>16.0} {:>9.2}x {:>8.1}%",
            sample.min,
            sample.min / single_cache,
            sample.spread_pct()
        );
    }

    // Database read-path sweep (ROADMAP: "does epoch/seqlock pay off at
    // high miss rates?"): reads with a controlled miss ratio race one
    // background writer; the lock-per-read baseline (ReadPath::Locked) is
    // measured against the seqlock path (ReadPath::Optimistic).
    let db_reads_per_thread: u64 = if quick { 20_000 } else { 200_000 };
    println!(
        "\ndb read path: {db_reads_per_thread} reads/thread vs one writer \
         (rwlock = locked baseline, seqlock = optimistic)"
    );
    println!(
        "{:>9} {:>8} {:>16} {:>16} {:>9} {:>9} {:>9}",
        "miss", "threads", "rwlock r/s", "seqlock r/s", "speedup", "opt-hit%", "spread"
    );
    let mut db_rows: Vec<DbReadPathRow> = Vec::new();
    for &miss_permille in &[0u64, 500, 1000] {
        for &threads in &[1u64, 4, 8] {
            let rwlock = repeat(rounds, || {
                measure_db_read_path(
                    ReadPath::Locked,
                    threads,
                    miss_permille,
                    db_reads_per_thread,
                    &seed,
                )
                .0
            })
            .min;
            let (mut seqlock, mut seqlock_max, mut hit_ratio) =
                (f64::INFINITY, 0.0f64, 1.0f64);
            for _ in 0..rounds {
                let (rps, hits) = measure_db_read_path(
                    ReadPath::Optimistic,
                    threads,
                    miss_permille,
                    db_reads_per_thread,
                    &seed,
                );
                seqlock_max = seqlock_max.max(rps);
                if rps < seqlock {
                    (seqlock, hit_ratio) = (rps, hits);
                }
            }
            let spread = Measured { min: seqlock, max: seqlock_max }.spread_pct();
            println!(
                "{:>8.0}% {threads:>8} {rwlock:>16.0} {seqlock:>16.0} {:>8.2}x {:>8.2}% {:>8.1}%",
                miss_permille as f64 / 10.0,
                seqlock / rwlock,
                hit_ratio * 100.0,
                spread
            );
            db_rows.push(DbReadPathRow {
                miss_pct: miss_permille as f64 / 10.0,
                threads,
                rwlock_reads_per_sec: rwlock,
                seqlock_reads_per_sec: seqlock,
                seqlock_hit_ratio: hit_ratio,
            });
        }
    }

    // Invalidation-plane comparison: 4 caches fed msgs_per_cache
    // invalidations each, applied by 4 dedicated threads (threaded plane)
    // versus 4 async tasks multiplexed on one reactor thread.
    let plane_caches = warmed_caches(&warmed_db(), 4);
    let msgs_per_cache: u64 = if quick { 20_000 } else { 200_000 };
    let threaded_plane = repeat(rounds, || measure_threaded_plane(&plane_caches, msgs_per_cache));
    let reactor_plane = repeat(rounds, || {
        measure_reactor_plane(&plane_caches, msgs_per_cache, DEFAULT_BATCH_BUDGET)
    });
    println!(
        "\ninvalidation plane: 4 caches x {msgs_per_cache} invalidations \
         (reactor batch budget {DEFAULT_BATCH_BUDGET}, min of {rounds})\n\
         {:>12} {:>16} {:>9}\n{:>12} {:>16.0} {:>8.1}%\n{:>12} {:>16.0} {:>8.1}%\n\
         {:>12} {:>15.2}x",
        "plane",
        "inv/s",
        "spread",
        "threaded",
        threaded_plane.min,
        threaded_plane.spread_pct(),
        "reactor",
        reactor_plane.min,
        reactor_plane.spread_pct(),
        "ratio",
        reactor_plane.min / threaded_plane.min
    );

    // Reactor batch sweep: budget x cache count. Budget 1 is the old
    // one-message-per-wakeup loop; the sweep shows how much of the
    // reactor/threaded gap batch dequeue closes and where it saturates.
    let sweep_msgs: u64 = if quick { 10_000 } else { 100_000 };
    println!(
        "\nreactor batch sweep: {sweep_msgs} invalidations/cache (min of {rounds})"
    );
    println!("{:>8} {:>8} {:>16} {:>9}", "budget", "caches", "inv/s", "spread");
    let mut reactor_batch_rows: Vec<(usize, u32, f64)> = Vec::new();
    for &budget in &[1usize, 16, 64] {
        for &cache_count in &[2u32, 4, 8] {
            let sweep_caches = warmed_caches(&warmed_db(), cache_count);
            let sample =
                repeat(rounds, || measure_reactor_plane(&sweep_caches, sweep_msgs, budget));
            println!(
                "{budget:>8} {cache_count:>8} {:>16.0} {:>8.1}%",
                sample.min,
                sample.spread_pct()
            );
            reactor_batch_rows.push((budget, cache_count, sample.min));
        }
    }

    // Cache read-path row: the same hit-heavy transaction workload as the
    // headline table, on 4 threads, against the per-stripe-mutex storage
    // (Locked) and the epoch-reclaimed lock-free read path (Epoch).
    let db_locked = warmed_db();
    let locked_cache = warmed_caches_with_path(&db_locked, 1, CacheReadPath::Locked)
        .pop()
        .expect("one cache");
    let db_epoch = warmed_db();
    let epoch_cache = warmed_caches_with_path(&db_epoch, 1, CacheReadPath::Epoch)
        .pop()
        .expect("one cache");
    let locked_hits_sample = repeat(rounds, || measure(&locked_cache, 4, txns_per_thread, &seed));
    let epoch_hits_sample = repeat(rounds, || measure(&epoch_cache, 4, txns_per_thread, &seed));
    let locked_hot_sample =
        repeat(rounds, || measure_hot(&locked_cache, 8, txns_per_thread, &seed));
    let epoch_hot_sample = repeat(rounds, || measure_hot(&epoch_cache, 8, txns_per_thread, &seed));
    let (locked_hits, epoch_hits) = (locked_hits_sample.min, epoch_hits_sample.min);
    let (locked_hot, epoch_hot) = (locked_hot_sample.min, epoch_hot_sample.min);
    println!(
        "\ncache read path: hit transactions, one cache \
         (uniform = 4 threads spread keys, hot = 8 threads on 3 keys; min of {rounds})\n\
         {:>12} {:>16} {:>9} {:>16} {:>9}\n\
         {:>12} {:>16.0} {:>8.1}% {:>16.0} {:>8.1}%\n\
         {:>12} {:>16.0} {:>8.1}% {:>16.0} {:>8.1}%\n\
         {:>12} {:>15.2}x {:>26.2}x",
        "path",
        "uniform txn/s",
        "spread",
        "hot txn/s",
        "spread",
        "locked",
        locked_hits,
        locked_hits_sample.spread_pct(),
        locked_hot,
        locked_hot_sample.spread_pct(),
        "epoch",
        epoch_hits,
        epoch_hits_sample.spread_pct(),
        epoch_hot,
        epoch_hot_sample.spread_pct(),
        "epoch speedup",
        epoch_hits / locked_hits,
        epoch_hot / locked_hot
    );

    // Read-transaction fast path: the allocation-free single-shot path
    // through `execute_read_only` on one thread — the tentpole regime
    // (<= 8 reads, all hits, no open multi-call transaction). Allocations
    // per transaction are counted by this binary's global allocator on the
    // measuring thread; the promotion rate is the fraction of transactions
    // that had to be promoted into the sharded table (0 here: every txn is
    // single-shot).
    let fp_txns: u64 = if quick { 20_000 } else { 500_000 };
    let fp_db = warmed_db();
    let fp_cache = warmed_caches(&fp_db, 1).pop().expect("one cache");
    let fp_stats_before = fp_cache.stats();
    let mut fp = Measured { min: f64::INFINITY, max: 0.0 };
    let mut fp_allocs_per_txn = 0.0f64;
    for _ in 0..rounds {
        let base_txn = seed.fetch_add(fp_txns + 2, Ordering::Relaxed);
        // One throwaway transaction warms the thread-local scratch.
        let warm = fp_cache
            .execute_read_only(
                SimTime::ZERO,
                TxnId(base_txn),
                &[ObjectId(0), ObjectId(1), ObjectId(2)],
            )
            .expect("warm txn");
        std::hint::black_box(warm);
        let allocs_before = allocations_on_this_thread();
        let start = Instant::now();
        for i in 0..fp_txns {
            let base = (i * 3) % (OBJECTS - 2);
            let keys = [ObjectId(base), ObjectId(base + 1), ObjectId(base + 2)];
            let log = fp_cache
                .execute_read_only(SimTime::ZERO, TxnId(base_txn + 1 + i), &keys)
                .expect("hit transaction");
            std::hint::black_box(log);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let allocs = allocations_on_this_thread() - allocs_before;
        let sample = fp_txns as f64 / elapsed;
        if sample < fp.min {
            fp_allocs_per_txn = allocs as f64 / fp_txns as f64;
        }
        fp.min = fp.min.min(sample);
        fp.max = fp.max.max(sample);
    }
    let fp_stats = fp_cache.stats();
    let fp_fast = fp_stats.fastpath_txns - fp_stats_before.fastpath_txns;
    let fp_promoted = fp_stats.promoted_txns - fp_stats_before.promoted_txns;
    let fp_promotion_rate = if fp_fast + fp_promoted == 0 {
        0.0
    } else {
        fp_promoted as f64 / (fp_fast + fp_promoted) as f64
    };
    println!(
        "\nread txn fast path: single thread, {fp_txns} x {READS_PER_TXN}-read hit \
         txns via execute_read_only (min of {rounds})\n\
         {:>16} {:>12} {:>12} {:>12} {:>9}\n\
         {:>16.0} {:>12.1} {:>12.4} {:>11.2}% {:>8.1}%",
        "txn/s",
        "ns/read",
        "allocs/txn",
        "promoted",
        "spread",
        fp.min,
        1e9 / (fp.min * READS_PER_TXN as f64),
        fp_allocs_per_txn,
        fp_promotion_rate * 100.0,
        fp.spread_pct()
    );

    // Recovery-plane overhead on the healthy path: a single thread applies
    // a gapless sequenced invalidation stream with the recovery plane off
    // (RecoveryPolicy::None) and on (GapResync) — the delta is the
    // steady-state cost the fault-tolerance machinery charges every apply.
    let recovery_msgs = msgs_per_cache * 4;
    let apply_none_sample =
        repeat(rounds, || measure_recovery_overhead(RecoveryPolicy::None, recovery_msgs));
    let apply_resync_sample = repeat(rounds, || {
        measure_recovery_overhead(
            RecoveryPolicy::GapResync {
                staleness_budget: SimDuration::from_millis(100),
            },
            recovery_msgs,
        )
    });
    let (apply_none, apply_resync) = (apply_none_sample.min, apply_resync_sample.min);
    println!(
        "\nrecovery overhead: {recovery_msgs} gapless sequenced invalidations, one thread \
         (min of {rounds})\n\
         {:>12} {:>16} {:>9}\n{:>12} {:>16.0} {:>8.1}%\n{:>12} {:>16.0} {:>8.1}%\n\
         {:>12} {:>15.1}%",
        "policy",
        "inv/s",
        "spread",
        "none",
        apply_none,
        apply_none_sample.spread_pct(),
        "gap-resync",
        apply_resync,
        apply_resync_sample.spread_pct(),
        "overhead",
        (apply_none / apply_resync - 1.0) * 100.0
    );

    // Inconsistency vs pipe capacity (DropOldest), from the sim harness's
    // backpressure figure with small parameters.
    let bp_secs = if quick { 2 } else { 10 };
    let bp_rows = backpressure(
        SimDuration::from_secs(bp_secs),
        42,
        &[4, 256],
        &[tcache_net::pipe::OverflowPolicy::DropOldest],
    );
    println!("\nbackpressure (drop-oldest, {bp_secs}s sim): capacity -> inconsistency");
    for row in &bp_rows {
        let capacity = row
            .capacity
            .map_or_else(|| "unbounded".to_string(), |c| c.to_string());
        println!("{capacity:>12} {:>7.2}%", row.inconsistency_pct);
    }

    // Cross-plane comparison: the same seeded schedule on the live reactor
    // stack versus the discrete-event simulator (plus the live stack's
    // free-running wall-clock read throughput).
    let lp_secs = if quick { 2 } else { 8 };
    let lp = live_plane(SimDuration::from_secs(lp_secs), 42, &LIVE_PLANE_LOSSES);
    println!(
        "\nlive plane ({lp_secs}s schedule): loss -> plain inconsistency (live / sim)"
    );
    for row in &lp.rows {
        println!(
            "{:>12} {:>7.2}% {:>7.2}%",
            row.loss, row.live_plain_inconsistency_pct, row.sim_plain_inconsistency_pct
        );
    }
    println!(
        "{:>12} {:>16.0} txn/s wall-clock (concurrent clients)",
        "live reads", lp.live_read_txns_per_wall_sec
    );

    let single = results[0].1;
    let fields: Vec<String> = results
        .iter()
        .map(|(t, tps)| format!("    \"threads_{t}_txn_per_sec\": {tps:.1}"))
        .collect();
    let cache_fields: Vec<String> = cache_scaling
        .iter()
        .map(|(c, tps)| format!("    \"caches_{c}_txn_per_sec\": {tps:.1}"))
        .collect();
    let single_cache = cache_scaling[0].1;
    let db_read_path_rows: Vec<String> = db_rows
        .iter()
        .map(|r| {
            format!(
                "      {{ \"miss_pct\": {:.1}, \"threads\": {}, \
                 \"rwlock_reads_per_sec\": {:.1}, \"seqlock_reads_per_sec\": {:.1}, \
                 \"seqlock_speedup\": {:.3}, \"seqlock_hit_ratio\": {:.4} }}",
                r.miss_pct,
                r.threads,
                r.rwlock_reads_per_sec,
                r.seqlock_reads_per_sec,
                r.seqlock_reads_per_sec / r.rwlock_reads_per_sec,
                r.seqlock_hit_ratio
            )
        })
        .collect();
    let backpressure_fields: Vec<String> = bp_rows
        .iter()
        .map(|row| {
            let capacity = row
                .capacity
                .map_or_else(|| "unbounded".to_string(), |c| c.to_string());
            format!(
                "    \"cap_{capacity}_inconsistency_pct\": {:.3}",
                row.inconsistency_pct
            )
        })
        .collect();
    let reactor_batch_fields: Vec<String> = reactor_batch_rows
        .iter()
        .map(|&(budget, caches, inv_per_sec)| {
            format!(
                "      {{ \"batch_budget\": {budget}, \"caches\": {caches}, \
                 \"inv_per_sec\": {inv_per_sec:.1} }}"
            )
        })
        .collect();
    let live_plane_rows: Vec<String> = lp
        .rows
        .iter()
        .map(|row| {
            format!(
                "      {{ \"loss\": {}, \"live_plain_inconsistency_pct\": {:.3}, \
                 \"sim_plain_inconsistency_pct\": {:.3}, \"live_dropped\": {}, \
                 \"sim_dropped\": {} }}",
                row.loss,
                row.live_plain_inconsistency_pct,
                row.sim_plain_inconsistency_pct,
                row.live_dropped,
                row.sim_dropped
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hotpath_concurrent_reads\",\n  \"objects\": {OBJECTS},\n  \
         \"reads_per_txn\": {READS_PER_TXN},\n  \"txns_per_thread\": {txns_per_thread},\n  \
         \"host_threads\": {},\n  \"results\": {{\n{}\n  }},\n  \
         \"cache_scaling\": {{\n{}\n  }},\n  \
         \"db_read_path\": {{\n    \"reads_per_thread\": {db_reads_per_thread},\n    \
         \"writer_threads\": 1,\n    \"rows\": [\n{}\n    ]\n  }},\n  \
         \"invalidation_plane\": {{\n    \"caches\": 4,\n    \
         \"msgs_per_cache\": {msgs_per_cache},\n    \
         \"batch_budget\": {DEFAULT_BATCH_BUDGET},\n    \
         \"threaded_inv_per_sec\": {:.1},\n    \
         \"reactor_inv_per_sec\": {:.1}\n  }},\n  \
         \"reactor_batch\": {{\n    \"msgs_per_cache\": {sweep_msgs},\n    \
         \"rows\": [\n{}\n    ]\n  }},\n  \
         \"cache_read_path\": {{\n    \"uniform_threads\": 4,\n    \
         \"hot_threads\": 8,\n    \
         \"locked_txn_per_sec\": {locked_hits:.1},\n    \
         \"epoch_txn_per_sec\": {epoch_hits:.1},\n    \
         \"locked_hot_txn_per_sec\": {locked_hot:.1},\n    \
         \"epoch_hot_txn_per_sec\": {epoch_hot:.1},\n    \
         \"epoch_speedup\": {:.3},\n    \
         \"epoch_hot_speedup\": {:.3}\n  }},\n  \
         \"read_txn_fastpath\": {{\n    \"txns\": {fp_txns},\n    \
         \"txn_per_sec\": {:.1},\n    \
         \"ns_per_read\": {:.1},\n    \
         \"allocs_per_txn\": {fp_allocs_per_txn:.4},\n    \
         \"promotion_rate\": {fp_promotion_rate:.4}\n  }},\n  \
         \"recovery_overhead\": {{\n    \"msgs\": {recovery_msgs},\n    \
         \"apply_none_inv_per_sec\": {apply_none:.1},\n    \
         \"apply_gap_resync_inv_per_sec\": {apply_resync:.1}\n  }},\n  \
         \"backpressure_drop_oldest\": {{\n{}\n  }},\n  \
         \"live_plane\": {{\n    \"schedule_secs\": {lp_secs},\n    \
         \"live_read_txns_per_wall_sec\": {:.1},\n    \
         \"live_aggregate_plain_pct\": {:.3},\n    \
         \"sim_aggregate_plain_pct\": {:.3},\n    \"rows\": [\n{}\n    ]\n  }},\n  \
         \"single_thread_ns_per_read\": {:.1},\n  \"speedup_4_threads\": {:.3},\n  \
         \"speedup_4_caches\": {:.3}\n}}\n",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
        fields.join(",\n"),
        cache_fields.join(",\n"),
        db_read_path_rows.join(",\n"),
        threaded_plane.min,
        reactor_plane.min,
        reactor_batch_fields.join(",\n"),
        epoch_hits / locked_hits,
        epoch_hot / locked_hot,
        fp.min,
        1e9 / (fp.min * READS_PER_TXN as f64),
        backpressure_fields.join(",\n"),
        lp.live_read_txns_per_wall_sec,
        lp.live_aggregate_plain_pct,
        lp.sim_aggregate_plain_pct,
        live_plane_rows.join(",\n"),
        1e9 / (single * READS_PER_TXN as f64),
        results.iter().find(|(t, _)| *t == 4).map_or(0.0, |(_, tps)| tps / single),
        cache_scaling
            .iter()
            .find(|(c, _)| *c == 4)
            .map_or(0.0, |(_, tps)| tps / single_cache),
    );
    std::fs::write(&out, json).expect("write BENCH_hotpath.json");
    println!("wrote {out}");

    // The tracked trajectory: one git-SHA-stamped summary row per run,
    // appended to the history file, with a delta report against the
    // previous row. Quick (CI smoke) runs use shorter measurements, so the
    // row records which regime produced it; compare like with like.
    let current: Vec<(&str, f64)> = vec![
        ("quick", u64::from(quick) as f64),
        ("threads_1_txn_per_sec", results[0].1),
        (
            "threads_4_txn_per_sec",
            results.iter().find(|(t, _)| *t == 4).map_or(0.0, |&(_, tps)| tps),
        ),
        (
            "caches_4_txn_per_sec",
            cache_scaling.iter().find(|(c, _)| *c == 4).map_or(0.0, |&(_, tps)| tps),
        ),
        ("threaded_inv_per_sec", threaded_plane.min),
        ("reactor_inv_per_sec", reactor_plane.min),
        ("locked_hit_txn_per_sec", locked_hits),
        ("epoch_hit_txn_per_sec", epoch_hits),
        ("locked_hot_txn_per_sec", locked_hot),
        ("epoch_hot_txn_per_sec", epoch_hot),
        ("live_read_txns_per_wall_sec", lp.live_read_txns_per_wall_sec),
        ("fastpath_txn_per_sec", fp.min),
        ("fastpath_allocs_per_txn", fp_allocs_per_txn),
    ];
    // Compare like with like: --quick rows measure far fewer iterations
    // than full runs, so the baseline is the most recent previous row of
    // the *same* regime, not merely the last row.
    let regime = u64::from(quick) as f64;
    let previous = std::fs::read_to_string(&history).ok().and_then(|contents| {
        contents
            .lines()
            .rev()
            .find(|line| {
                tcache_bench::parse_flat_numbers(line)
                    .iter()
                    .any(|(key, value)| key == "quick" && *value == regime)
            })
            .map(String::from)
    });
    let sha = git_short_sha();
    let row = format!(
        "{{\"sha\": \"{sha}\", {}}}\n",
        current
            .iter()
            .map(|(key, value)| format!("\"{key}\": {value:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    use std::io::Write;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .and_then(|mut file| file.write_all(row.as_bytes()))
        .expect("append bench history row");
    println!("\nappended {history} row for {sha}");
    match previous.as_deref().and_then(|prev| history_comparison(prev, &current)) {
        Some(report) => println!("{report}"),
        None => println!(
            "(no previous {} history row to compare against)",
            if quick { "quick" } else { "full-run" }
        ),
    }
}
