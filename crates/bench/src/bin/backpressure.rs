//! The slow-cache backpressure experiment: inconsistency as a function of
//! the invalidation-pipe capacity, per overflow policy.
//!
//! A single consistency-unaware cache sits behind a congested invalidation
//! pipe (200 ms delivery delay, no loss — roughly a hundred messages in
//! flight at the paper's update rate). Sweeping the pipe capacity shows the
//! trade-off the live reactor plane exposes: undersized pipes with a drop
//! policy shed invalidations and the served inconsistency rises; `Block`
//! pipes lose nothing but stall the publisher (commit-path backpressure).
//!
//! Flags: `--quick` (short run, fewer capacities), `--seed <n>`.

use tcache_bench::{pct, RunOptions};
use tcache_net::pipe::OverflowPolicy;
use tcache_sim::figures::{
    backpressure, BACKPRESSURE_CAPACITIES, BACKPRESSURE_POLICIES,
};

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(30, 4);
    let (capacities, policies): (&[usize], &[OverflowPolicy]) = if options.quick {
        (&[4, 256], &BACKPRESSURE_POLICIES)
    } else {
        (&BACKPRESSURE_CAPACITIES, &BACKPRESSURE_POLICIES)
    };

    println!(
        "backpressure: plain cache, 200 ms delivery delay, no loss, {}s run (seed {})",
        duration.as_secs_f64(),
        options.seed
    );
    println!(
        "{:>12} {:>10} {:>15} {:>12} {:>10} {:>10}",
        "policy", "capacity", "inconsistency", "overflowed", "stalled", "delivered"
    );
    let rows = backpressure(duration, options.seed, capacities, policies);
    for row in &rows {
        let capacity = row
            .capacity
            .map_or_else(|| "unbounded".to_string(), |c| c.to_string());
        println!(
            "{:>12} {:>10} {:>15} {:>12} {:>10} {:>10}",
            row.policy,
            capacity,
            pct(row.inconsistency_pct),
            row.overflowed,
            row.stalled,
            row.delivered
        );
    }

    // Sanity guards so CI fails loudly if the backpressure plumbing breaks
    // (the bin is run with --quick on every push).
    let tightest_drop = rows
        .iter()
        .filter(|r| r.policy != "block" && r.capacity.is_some())
        .min_by_key(|r| r.capacity)
        .expect("at least one bounded drop row");
    assert!(
        tightest_drop.overflowed > 0,
        "the tightest drop-policy pipe must overflow"
    );
    let block_rows: Vec<_> = rows.iter().filter(|r| r.policy == "block").collect();
    assert!(
        block_rows.iter().all(|r| r.overflowed == 0),
        "block pipes must not lose messages"
    );
    assert!(
        block_rows
            .iter()
            .any(|r| r.capacity.is_some() && r.stalled > 0),
        "bounded block pipes must stall the publisher"
    );
}
