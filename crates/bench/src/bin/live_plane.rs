//! The live execution plane experiment: the inconsistency-vs-loss trend
//! reproduced on the real reactor stack, validated against the
//! discrete-event simulator row by row.
//!
//! Four edge caches with loss rates from reliable to badly lossy run the
//! same seeded schedule twice: once on the live plane (real `TCacheSystem`,
//! reactor transport, loss applied by the per-cache delivery tasks) and
//! once on the discrete-event plane. At zero delivery delay the lockstep
//! live rows must match the simulated rows *exactly* — same seeded loss
//! streams, same schedule — which is asserted below so CI fails loudly if
//! the planes drift apart. A final free-running concurrent run reports the
//! wall-clock read throughput of the live stack.
//!
//! Flags: `--quick` (short run), `--seed <n>`.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures::{live_plane, LIVE_PLANE_LOSSES};

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(20, 3);

    println!(
        "live plane: 4 caches, plain + t-cache, zero delivery delay, {}s schedule (seed {})",
        duration.as_secs_f64(),
        options.seed
    );
    let figure = live_plane(duration, options.seed, &LIVE_PLANE_LOSSES);

    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "cache", "loss", "live plain", "sim plain", "live t-cache", "live drops", "sim drops"
    );
    for row in &figure.rows {
        println!(
            "{:>6} {:>6} {:>14} {:>14} {:>14} {:>12} {:>12}",
            row.cache,
            row.loss,
            pct(row.live_plain_inconsistency_pct),
            pct(row.sim_plain_inconsistency_pct),
            pct(row.live_tcache_inconsistency_pct),
            row.live_dropped,
            row.sim_dropped
        );
    }
    println!(
        "aggregate plain inconsistency: live {} / sim {}",
        pct(figure.live_aggregate_plain_pct),
        pct(figure.sim_aggregate_plain_pct)
    );
    println!(
        "concurrent live read throughput: {:.0} txn/s wall-clock",
        figure.live_read_txns_per_wall_sec
    );

    // Sanity guards so CI fails loudly if the live plane regresses (the
    // bin runs with --quick on every push).
    let reliable = &figure.rows[0];
    let lossiest = figure.rows.last().expect("at least one cache");
    assert!(
        lossiest.live_plain_inconsistency_pct > reliable.live_plain_inconsistency_pct,
        "live plain-cache inconsistency must rise with loss"
    );
    for row in &figure.rows {
        assert_eq!(
            row.live_plain_inconsistency_pct, row.sim_plain_inconsistency_pct,
            "cache {}: the live and discrete-event planes must agree exactly at zero delay",
            row.cache
        );
        assert_eq!(
            row.live_dropped, row.sim_dropped,
            "cache {}: both planes must drop the same seeded messages",
            row.cache
        );
    }
    assert!(figure.live_read_txns_per_wall_sec > 0.0);
}
