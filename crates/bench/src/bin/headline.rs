//! The headline claim of the abstract: with dependency lists of length 3,
//! T-Cache detects 43–70 % of inconsistencies and increases the rate of
//! consistent transactions by 33–58 % on the realistic workloads.

use tcache_bench::{pct, RunOptions};
use tcache_sim::figures;

fn main() {
    let options = RunOptions::from_env();
    let duration = options.duration(60, 6);
    println!("Headline — T-Cache (k = 3, RETRY) vs the consistency-unaware cache");
    println!("simulated duration per run: {duration}, seed {}", options.seed);
    println!(
        "{:>28} {:>16} {:>16} {:>12} {:>18}",
        "workload", "plain incons.", "tcache incons.", "detected", "consistent rate +"
    );
    for row in figures::headline(duration, options.seed) {
        println!(
            "{:>28} {:>16} {:>16} {:>12} {:>18}",
            row.workload.to_string(),
            pct(row.baseline_inconsistency_pct),
            pct(row.tcache_inconsistency_pct),
            pct(row.detected_pct),
            pct(row.consistent_rate_increase_pct)
        );
    }
}
