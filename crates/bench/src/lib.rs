//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts two optional flags:
//!
//! * `--quick` — run a much shorter simulation (useful for smoke tests and
//!   CI); the qualitative shape of the result is preserved but individual
//!   numbers are noisier.
//! * `--seed <n>` — change the random seed (default 42).
//!
//! Each binary prints the table / series that the corresponding figure of
//! the paper plots; `EXPERIMENTS.md` records a reference run next to the
//! paper's numbers.

#![deny(missing_docs)]

use tcache_types::SimDuration;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Run a shortened simulation.
    pub quick: bool,
    /// Random seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            quick: false,
            seed: 42,
        }
    }
}

impl RunOptions {
    /// Parses the options from an iterator of command-line arguments
    /// (excluding the program name). Unknown flags are ignored so binaries
    /// stay forgiving.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut options = RunOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--seed" => {
                    if let Some(value) = iter.next() {
                        if let Ok(seed) = value.parse() {
                            options.seed = seed;
                        }
                    }
                }
                _ => {}
            }
        }
        options
    }

    /// Parses the options from the process arguments.
    pub fn from_env() -> Self {
        RunOptions::parse(std::env::args().skip(1))
    }

    /// Picks the experiment duration: `full` normally, `quick` with
    /// `--quick`.
    pub fn duration(&self, full_secs: u64, quick_secs: u64) -> SimDuration {
        if self.quick {
            SimDuration::from_secs(quick_secs)
        } else {
            SimDuration::from_secs(full_secs)
        }
    }
}

/// Formats a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{value:5.1}%")
}

/// The short git SHA of the working tree — suffixed `-dirty` when there
/// are uncommitted changes, so a bench-history row measured on a modified
/// tree is never attributed to its parent commit — or `"unknown"` outside
/// a repository (or without a git binary).
pub fn git_short_sha() -> String {
    let Some(sha) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
    else {
        return "unknown".to_string();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .is_some_and(|out| !out.stdout.is_empty());
    if dirty {
        format!("{sha}-dirty")
    } else {
        sha
    }
}

/// Extracts every `"key": <number>` pair from a flat JSON object line.
/// Quoted string values (like the `sha` stamp) are skipped. This is all
/// the parsing the bench-history comparison needs, so the offline
/// `serde_json` shim is not involved.
pub fn parse_flat_numbers(json: &str) -> Vec<(String, f64)> {
    let parts: Vec<&str> = json.split('"').collect();
    let mut out = Vec::new();
    for i in 1..parts.len().saturating_sub(1) {
        // A quoted token is a key iff the next raw segment opens with ':'.
        let Some(rest) = parts[i + 1].trim_start().strip_prefix(':') else {
            continue;
        };
        let literal: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(value) = literal.parse::<f64>() {
            out.push((parts[i].to_string(), value));
        }
    }
    out
}

/// Renders the commit-over-commit comparison between the previous
/// bench-history row and the current one: one line per shared metric with
/// the percentage delta. Returns `None` when `previous` has no numeric
/// fields to compare against.
pub fn history_comparison(previous: &str, current: &[(&str, f64)]) -> Option<String> {
    let before = parse_flat_numbers(previous);
    if before.is_empty() {
        return None;
    }
    let prev_sha = previous
        .split("\"sha\": \"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("?");
    let mut lines = vec![format!(
        "{:>28} {:>16} {:>16} {:>8}   (vs {prev_sha})",
        "metric", "previous", "current", "delta"
    )];
    let mut compared = 0;
    for &(key, now) in current {
        let Some(&(_, was)) = before.iter().find(|(k, _)| k == key) else {
            continue;
        };
        compared += 1;
        let delta = if was.abs() > f64::EPSILON {
            format!("{:+.1}%", (now / was - 1.0) * 100.0)
        } else {
            "n/a".to_string()
        };
        lines.push(format!("{key:>28} {was:>16.1} {now:>16.1} {delta:>8}"));
    }
    (compared > 0).then(|| lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let o = RunOptions::parse(["--quick".to_string(), "--seed".to_string(), "7".to_string()]);
        assert!(o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.duration(60, 5), SimDuration::from_secs(5));

        let d = RunOptions::parse(Vec::new());
        assert!(!d.quick);
        assert_eq!(d.seed, 42);
        assert_eq!(d.duration(60, 5), SimDuration::from_secs(60));

        // Unknown flags and malformed seeds are ignored.
        let o = RunOptions::parse(["--wat".to_string(), "--seed".to_string(), "x".to_string()]);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(12.34), " 12.3%");
    }

    #[test]
    fn flat_number_parsing_skips_string_values() {
        let line = r#"{"sha": "abc123", "quick": 1, "txn_per_sec": 1234.5, "neg": -2e3}"#;
        let parsed = parse_flat_numbers(line);
        assert_eq!(
            parsed,
            vec![
                ("quick".to_string(), 1.0),
                ("txn_per_sec".to_string(), 1234.5),
                ("neg".to_string(), -2000.0),
            ]
        );
        assert!(parse_flat_numbers("not json at all").is_empty());
    }

    #[test]
    fn history_comparison_reports_deltas_for_shared_keys() {
        let previous = r#"{"sha": "abc123", "txn_per_sec": 1000.0, "inv_per_sec": 500.0}"#;
        let report =
            history_comparison(previous, &[("txn_per_sec", 1100.0), ("unrelated", 1.0)])
                .expect("one shared metric");
        assert!(report.contains("abc123"));
        assert!(report.contains("txn_per_sec"));
        assert!(report.contains("+10.0%"));
        assert!(!report.contains("unrelated"));
        assert!(history_comparison("", &[("x", 1.0)]).is_none());
        assert!(history_comparison(previous, &[("unshared", 1.0)]).is_none());
    }

    #[test]
    fn git_sha_is_nonempty() {
        assert!(!git_short_sha().is_empty());
    }
}
