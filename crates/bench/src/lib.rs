//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts two optional flags:
//!
//! * `--quick` — run a much shorter simulation (useful for smoke tests and
//!   CI); the qualitative shape of the result is preserved but individual
//!   numbers are noisier.
//! * `--seed <n>` — change the random seed (default 42).
//!
//! Each binary prints the table / series that the corresponding figure of
//! the paper plots; `EXPERIMENTS.md` records a reference run next to the
//! paper's numbers.

#![deny(missing_docs)]

use tcache_types::SimDuration;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Run a shortened simulation.
    pub quick: bool,
    /// Random seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            quick: false,
            seed: 42,
        }
    }
}

impl RunOptions {
    /// Parses the options from an iterator of command-line arguments
    /// (excluding the program name). Unknown flags are ignored so binaries
    /// stay forgiving.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut options = RunOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--seed" => {
                    if let Some(value) = iter.next() {
                        if let Ok(seed) = value.parse() {
                            options.seed = seed;
                        }
                    }
                }
                _ => {}
            }
        }
        options
    }

    /// Parses the options from the process arguments.
    pub fn from_env() -> Self {
        RunOptions::parse(std::env::args().skip(1))
    }

    /// Picks the experiment duration: `full` normally, `quick` with
    /// `--quick`.
    pub fn duration(&self, full_secs: u64, quick_secs: u64) -> SimDuration {
        if self.quick {
            SimDuration::from_secs(quick_secs)
        } else {
            SimDuration::from_secs(full_secs)
        }
    }
}

/// Formats a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{value:5.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let o = RunOptions::parse(["--quick".to_string(), "--seed".to_string(), "7".to_string()]);
        assert!(o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.duration(60, 5), SimDuration::from_secs(5));

        let d = RunOptions::parse(Vec::new());
        assert!(!d.quick);
        assert_eq!(d.seed, 42);
        assert_eq!(d.duration(60, 5), SimDuration::from_secs(60));

        // Unknown flags and malformed seeds are ignored.
        let o = RunOptions::parse(["--wat".to_string(), "--seed".to_string(), "x".to_string()]);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(12.34), " 12.3%");
    }
}
