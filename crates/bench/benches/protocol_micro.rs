//! Criterion micro-benchmarks of the protocol hot paths.
//!
//! The paper argues (§V-B2) that dependency-list maintenance is cheap:
//! updates and checks are O(1) in the number of objects and O(k²) in the
//! dependency-list bound. These benchmarks measure exactly those paths:
//! commit-time aggregation, the per-read violation check, the cache read
//! hot path and the database commit path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tcache_cache::consistency::check_read;
use tcache_cache::EdgeCache;
use tcache_db::dependency_update::{AccessedObject, AggregatedDependencies};
use tcache_db::{Database, DatabaseConfig};
use tcache_types::{
    AccessSet, CacheId, DependencyList, ObjectId, ReadRecord, ReadSet, SimTime, Strategy, TxnId,
    Value, Version,
};
use tcache_workload::{ParetoClusters, RandomWalkWorkload, WorkloadGenerator};
use tcache_workload::graph::GraphKind;

fn dependency_list(bound: usize, entries: usize) -> DependencyList {
    let mut list = DependencyList::bounded(bound);
    for i in 0..entries {
        list.record(ObjectId(i as u64), Version(i as u64 + 1));
    }
    list
}

fn bench_dependency_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_aggregation");
    for &bound in &[1usize, 3, 5, 16] {
        let accessed: Vec<AccessedObject> = (0..5)
            .map(|i| AccessedObject {
                key: ObjectId(i),
                observed_version: Version(i),
                dependencies: dependency_list(bound, bound).into(),
                written: true,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                let agg = AggregatedDependencies::aggregate(&accessed, Version(100), bound);
                std::hint::black_box(agg.list_for(ObjectId(0)))
            })
        });
    }
    group.finish();
}

fn bench_violation_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation_check");
    for &k in &[1usize, 3, 5, 16] {
        let mut previous = ReadSet::new();
        for i in 0..5u64 {
            previous.push(ReadRecord::new(
                ObjectId(i),
                Version(10 + i),
                dependency_list(k, k),
            ));
        }
        let current_deps = dependency_list(k, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                std::hint::black_box(check_read(
                    &previous,
                    ObjectId(99),
                    Version(50),
                    &current_deps,
                ))
            })
        });
    }
    group.finish();
}

fn bench_cache_read_hot_path(c: &mut Criterion) {
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
    db.populate((0..1000u64).map(|i| (ObjectId(i), Value::new(0))));
    let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), 3, Strategy::Abort);
    // Warm the cache and create some dependency structure.
    for i in 0..200u64 {
        let access: AccessSet = vec![i * 5 % 1000, (i * 5 + 1) % 1000, (i * 5 + 2) % 1000].into();
        db.execute_update(TxnId(i + 1), &access).unwrap();
    }
    let mut txn = 10_000u64;
    c.bench_function("cache_read_hit_transaction", |b| {
        b.iter(|| {
            txn += 1;
            let base = (txn * 5) % 995;
            let keys = [ObjectId(base), ObjectId(base + 1), ObjectId(base + 2)];
            std::hint::black_box(
                cache
                    .execute_transaction(SimTime::ZERO, TxnId(txn), &keys)
                    .unwrap(),
            )
        })
    });
}

fn bench_db_commit(c: &mut Criterion) {
    let db = Database::new(DatabaseConfig::with_bound(3));
    db.populate((0..1000u64).map(|i| (ObjectId(i), Value::new(0))));
    let mut txn = 0u64;
    c.bench_function("db_update_commit_5_objects", |b| {
        b.iter(|| {
            txn += 1;
            let base = (txn * 7) % 995;
            let access: AccessSet = (base..base + 5).collect::<Vec<_>>().into();
            std::hint::black_box(db.execute_update(TxnId(txn), &access).unwrap())
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    let mut rng = StdRng::seed_from_u64(1);
    let mut pareto = ParetoClusters::new(2000, 5, 5, 1.0);
    group.bench_function("pareto_clusters", |b| {
        b.iter(|| std::hint::black_box(pareto.generate(SimTime::ZERO, &mut rng)))
    });
    let mut walk = RandomWalkWorkload::paper_workload(GraphKind::RetailAffinity, 2000, 500, 3);
    group.bench_function("graph_random_walk", |b| {
        b.iter(|| std::hint::black_box(walk.generate(SimTime::ZERO, &mut rng)))
    });
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets =
        bench_dependency_aggregation,
        bench_violation_check,
        bench_cache_read_hot_path,
        bench_db_commit,
        bench_workload_generation
}
criterion_main!(benches);
