//! Ablation benchmarks: end-to-end simulator runs comparing the design
//! choices called out in `DESIGN.md` — the dependency-list bound, the
//! inconsistency-handling strategy and the TTL baseline — in terms of the
//! wall-clock cost of simulating one second of the paper's traffic
//! (100 update + 500 read-only transactions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcache_sim::experiment::{CacheKind, ExperimentConfig, WorkloadKind};
use tcache_types::{SimDuration, Strategy};

fn config(cache: CacheKind) -> ExperimentConfig {
    ExperimentConfig {
        duration: SimDuration::from_secs(1),
        workload: WorkloadKind::PerfectClusters {
            objects: 1000,
            cluster_size: 5,
        },
        cache,
        seed: 11,
        ..ExperimentConfig::default()
    }
}

fn bench_dependency_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dependency_bound");
    for &bound in &[0usize, 1, 3, 5, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                config(CacheKind::TCache {
                    dependency_bound: bound,
                    strategy: Strategy::Abort,
                })
                .run()
            })
        });
    }
    group.finish();
}

fn bench_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_strategy");
    for &strategy in &Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    config(CacheKind::TCache {
                        dependency_bound: 5,
                        strategy,
                    })
                    .run()
                })
            },
        );
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_baselines");
    group.bench_function("plain", |b| b.iter(|| config(CacheKind::Plain).run()));
    group.bench_function("ttl_1s", |b| {
        b.iter(|| {
            config(CacheKind::Ttl {
                ttl: SimDuration::from_secs(1),
            })
            .run()
        })
    });
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_dependency_bound, bench_strategy, bench_baselines
}
criterion_main!(benches);
