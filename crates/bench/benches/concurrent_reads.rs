//! Criterion benchmark for the concurrent read hot path.
//!
//! Measures hit-heavy read-only transaction throughput on a shared
//! [`EdgeCache`] at 1, 2, 4 and 8 client threads. Each iteration runs a
//! fixed batch of three-object transactions per thread over a pre-warmed
//! cache, so the measured work is the striped-lock hot path: storage-stripe
//! lookups (refcount-bump copies), the O(deps) consistency check and the
//! transaction-stripe record keeping.
//!
//! On a multi-core host the per-batch time should stay near-flat as threads
//! are added (throughput scaling near-linearly); on a single hardware
//! thread it degrades gracefully to time-slicing. The `bench_hotpath` bin
//! reports the same workload as machine-readable JSON for the perf
//! trajectory (`BENCH_hotpath.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig};
use tcache_types::{AccessSet, CacheId, ObjectId, SimTime, Strategy, TxnId};

const OBJECTS: u64 = 1024;
const READS_PER_THREAD: u64 = 1_000;

fn warmed_cache() -> Arc<EdgeCache> {
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
    db.populate((0..OBJECTS).map(|i| (ObjectId(i), tcache_types::Value::new(0))));
    // Create dependency structure, then warm every object into the cache.
    for i in 0..200u64 {
        let base = (i * 5) % (OBJECTS - 2);
        let access: AccessSet = vec![base, base + 1, base + 2].into();
        db.execute_update(TxnId(i + 1), &access).unwrap();
    }
    let cache = Arc::new(EdgeCache::tcache(CacheId(0), db, 3, Strategy::Abort));
    for i in 0..OBJECTS {
        cache
            .read(SimTime::ZERO, TxnId(1_000_000 + i), ObjectId(i), true)
            .unwrap();
    }
    cache
}

fn run_batch(cache: &Arc<EdgeCache>, threads: u64, txn_seed: &AtomicU64) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(cache);
            let base_txn = txn_seed.fetch_add(READS_PER_THREAD + 1, Ordering::Relaxed);
            std::thread::spawn(move || {
                for i in 0..READS_PER_THREAD {
                    let txn = TxnId(base_txn + i);
                    let base = (t * 131 + i * 3) % (OBJECTS - 2);
                    let keys = [ObjectId(base), ObjectId(base + 1), ObjectId(base + 2)];
                    let outcome = cache
                        .execute_transaction(SimTime::ZERO, txn, &keys)
                        .expect("backend reachable");
                    std::hint::black_box(outcome);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_concurrent_reads(c: &mut Criterion) {
    let cache = warmed_cache();
    let txn_seed = AtomicU64::new(10_000_000);
    let mut group = c.benchmark_group("concurrent_reads");
    for &threads in &[1u64, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| run_batch(&cache, threads, &txn_seed)),
        );
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_concurrent_reads
}
criterion_main!(benches);
