//! Composable scenario primitives for the open-loop scenario engine.
//!
//! A [`ScenarioSpec`] describes production-shaped traffic from a large
//! logical client population — millions of clients multiplexed over the
//! bounded worker threads of the live execution plane — as a composition
//! of small primitives:
//!
//! * **Zipfian skew** — keys are drawn from a [`crate::zipf::ZipfSampler`]
//!   with the spec's `skew` exponent;
//! * **[`LoadCurve`]s** — diurnal curves and flash-crowd bursts multiply
//!   the offered read rate over time (curves compose by multiplication);
//! * **[`HotKeyStorm`]s** — during a window, a fraction of reads is
//!   redirected onto a tiny hot set;
//! * **[`CrowdShift`]s** — a cache's client-population weight changes at
//!   an instant (the per-cache side of a flash crowd);
//! * **[`Stampede`]** — a fraction of reads chases recently-updated keys,
//!   modeling a cache stampede on invalidation;
//! * **[`ChurnEvent`]s** — caches are paused/resumed or crashed/restarted
//!   mid-run.
//!
//! Every probabilistic decision a scenario makes is a *pure function of
//! `(run seed, draw index)`* through the tagged streams of
//! [`tcache_types::scenario_seed`] and [`tcache_types::zipf_seed`], so a
//! scenario replays bit-identically regardless of worker-thread count or
//! interleaving. The same discipline makes the **modeled client latency**
//! ([`ScenarioSpec::modeled_latency_micros`]) deterministic: rather than
//! measuring wall-clock time (which no two runs share), the engine models
//! what a client would observe — a fast cache hit or a slow degraded
//! pass-through, inflated by the instantaneous load multiplier and a
//! heavy-tailed jitter draw — and records it into per-cache
//! [`crate::histogram::LatencyHistogram`]s.

use tcache_types::{derive_stream_seed, ObjectId, SimDuration, SimTime};

/// Decision-stream indices claimed under [`tcache_types::scenario_seed`].
/// Each decision family owns one stream so adding a primitive never shifts
/// the draws of another.
pub mod streams {
    /// Storm redirection coin and hot-key choice.
    pub const STORM: u64 = 0;
    /// Per-read cache assignment draw.
    pub const ASSIGN: u64 = 1;
    /// Modeled-latency jitter.
    pub const LATENCY: u64 = 2;
    /// Stampede redirection coin and recent-update choice.
    pub const STAMPEDE: u64 = 3;
    /// Logical-client identity of a read.
    pub const CLIENT: u64 = 4;
}

/// A uniform `f64` in `[0, 1)` depending only on `(stream_seed, draw)` —
/// the primitive underneath every per-draw scenario decision.
pub fn unit_draw(stream_seed: u64, draw: u64) -> f64 {
    (derive_stream_seed(stream_seed, draw) >> 11) as f64 / (1u64 << 53) as f64
}

/// A time-varying multiplier on the offered read rate. Curves compose by
/// multiplication: a diurnal baseline with a flash-crowd burst on top is
/// simply both curves in the spec's list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadCurve {
    /// A smooth day/night curve: multiplier
    /// `1 + amplitude · sin(2π · t / period)`, floored at 0.05 so the
    /// arrival process never stalls completely.
    Diurnal {
        /// Length of one full day/night cycle.
        period: SimDuration,
        /// Peak deviation from the baseline rate (0.6 → 40 %–160 %).
        amplitude: f64,
    },
    /// A flash-crowd burst: the rate is multiplied by `factor` during
    /// `[at, at + len)` and unchanged outside it.
    Burst {
        /// When the burst begins.
        at: SimTime,
        /// How long it lasts.
        len: SimDuration,
        /// The rate multiplier while it lasts.
        factor: f64,
    },
}

impl LoadCurve {
    /// The multiplier this curve contributes at `now`.
    pub fn multiplier(&self, now: SimTime) -> f64 {
        match *self {
            LoadCurve::Diurnal { period, amplitude } => {
                let phase = (now.as_micros() % period.as_micros().max(1)) as f64
                    / period.as_micros().max(1) as f64;
                (1.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin()).max(0.05)
            }
            LoadCurve::Burst { at, len, factor } => {
                if now >= at && now < at + len {
                    factor
                } else {
                    1.0
                }
            }
        }
    }
}

/// During `[from, until)`, each read is redirected with probability
/// `fraction` onto one of the `hot_keys` hottest objects (ranks 0..hot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotKeyStorm {
    /// When the storm starts.
    pub from: SimTime,
    /// When it subsides.
    pub until: SimTime,
    /// Size of the hot set the redirected reads collapse onto.
    pub hot_keys: u64,
    /// Probability that a read is redirected while the storm lasts.
    pub fraction: f64,
}

/// From `at` onward, the client-population weight of cache index `cache`
/// becomes `weight` (weights are renormalized against the other caches'
/// baseline shares).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdShift {
    /// When the crowd moves.
    pub at: SimTime,
    /// Index of the cache whose population changes.
    pub cache: u32,
    /// Its new (unnormalized) weight.
    pub weight: f64,
}

/// A fraction of reads chases keys updated within the trailing `window` —
/// the cache-stampede-on-invalidation pattern, where an invalidation makes
/// every interested client refetch at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stampede {
    /// Probability that a read chases a recently-updated key.
    pub fraction: f64,
    /// How far back "recently updated" reaches.
    pub window: SimDuration,
}

/// What a churn event does to its cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// Hold the cache's invalidation pipe (messages queue, none are lost).
    /// Live-plane only: the discrete plane has no pausable pipe.
    Pause,
    /// Release a held pipe.
    Resume,
    /// Crash the cache (cold store, severed link) — maps to the fault
    /// plan's crash event and runs on both planes.
    Crash,
    /// Restart a crashed cache.
    Restart,
}

/// One churn event: at `at`, `action` happens to cache index `cache`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the event fires (virtual time).
    pub at: SimTime,
    /// Index of the cache it hits.
    pub cache: u32,
    /// What happens.
    pub action: ChurnAction,
}

/// A named, composable, deterministically replayable traffic scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    name: String,
    objects: u64,
    per_txn: usize,
    skew: f64,
    population: u64,
    load: Vec<LoadCurve>,
    storms: Vec<HotKeyStorm>,
    crowd_shifts: Vec<CrowdShift>,
    stampede: Option<Stampede>,
    churn: Vec<ChurnEvent>,
}

impl ScenarioSpec {
    /// A plain skewed baseline: `objects` keys under Zipf exponent `skew`,
    /// `per_txn` accesses per transaction, drawn on behalf of `population`
    /// logical clients. Primitives are layered on with the `with_*`
    /// builders.
    pub fn new(name: &str, objects: u64, per_txn: usize, skew: f64, population: u64) -> Self {
        assert!(objects > 0 && per_txn > 0 && population > 0);
        ScenarioSpec {
            name: name.to_string(),
            objects,
            per_txn,
            skew,
            population,
            load: Vec::new(),
            storms: Vec::new(),
            crowd_shifts: Vec::new(),
            stampede: None,
            churn: Vec::new(),
        }
    }

    /// Adds a load curve (curves compose by multiplication).
    #[must_use]
    pub fn with_load(mut self, curve: LoadCurve) -> Self {
        self.load.push(curve);
        self
    }

    /// Adds a hot-key storm window.
    #[must_use]
    pub fn with_storm(mut self, storm: HotKeyStorm) -> Self {
        assert!(storm.from < storm.until && storm.hot_keys > 0);
        self.storms.push(storm);
        self
    }

    /// Adds a per-cache crowd shift.
    #[must_use]
    pub fn with_crowd_shift(mut self, shift: CrowdShift) -> Self {
        self.crowd_shifts.push(shift);
        self
    }

    /// Sets the stampede behaviour.
    #[must_use]
    pub fn with_stampede(mut self, stampede: Stampede) -> Self {
        self.stampede = Some(stampede);
        self
    }

    /// Adds a churn event, keeping the list sorted by time.
    #[must_use]
    pub fn with_churn(mut self, event: ChurnEvent) -> Self {
        let pos = self.churn.partition_point(|e| e.at <= event.at);
        self.churn.insert(pos, event);
        self
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct objects the scenario touches.
    pub fn object_count(&self) -> u64 {
        self.objects
    }

    /// Accesses per transaction.
    pub fn accesses_per_transaction(&self) -> usize {
        self.per_txn
    }

    /// The Zipf skew exponent.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Size of the logical client population.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// The stampede primitive, if configured.
    pub fn stampede(&self) -> Option<Stampede> {
        self.stampede
    }

    /// The churn events, sorted by time.
    pub fn churn_events(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// Whether any churn event needs a pausable pipe (live-plane only).
    pub fn has_pause_churn(&self) -> bool {
        self.churn
            .iter()
            .any(|e| matches!(e.action, ChurnAction::Pause | ChurnAction::Resume))
    }

    /// The product of every load curve's multiplier at `now`, floored at
    /// 0.01 so the arrival process always makes progress.
    pub fn rate_multiplier(&self, now: SimTime) -> f64 {
        self.load
            .iter()
            .map(|c| c.multiplier(now))
            .product::<f64>()
            .max(0.01)
    }

    /// Applies any active hot-key storm to the key of access draw `draw`:
    /// with the storm's probability the key collapses onto the hot set.
    /// `storm_seed` is `scenario_seed(run_seed, streams::STORM)`.
    pub fn apply_storm(&self, storm_seed: u64, now: SimTime, draw: u64, key: ObjectId) -> ObjectId {
        for storm in &self.storms {
            if now >= storm.from && now < storm.until {
                let coin = unit_draw(storm_seed, draw * 2);
                if coin < storm.fraction {
                    let pick = unit_draw(storm_seed, draw * 2 + 1);
                    let hot = (pick * storm.hot_keys as f64) as u64;
                    return ObjectId(hot.min(self.objects - 1));
                }
            }
        }
        key
    }

    /// Whether read draw `draw` chases a recently-updated key.
    /// `stampede_seed` is `scenario_seed(run_seed, streams::STAMPEDE)`.
    pub fn stampede_redirect(&self, stampede_seed: u64, draw: u64) -> bool {
        match self.stampede {
            Some(s) => unit_draw(stampede_seed, draw) < s.fraction,
            None => false,
        }
    }

    /// The per-cache population weights in force at `now`: `base` shares
    /// with every crowd shift at or before `now` applied on top. Weights
    /// are unnormalized; assignment normalizes over the returned vector.
    pub fn cache_weights(&self, now: SimTime, base: &[f64]) -> Vec<f64> {
        let mut weights = base.to_vec();
        for shift in &self.crowd_shifts {
            if shift.at <= now {
                if let Some(w) = weights.get_mut(shift.cache as usize) {
                    *w = shift.weight;
                }
            }
        }
        weights
    }

    /// Assigns read draw `draw` to a cache index by a categorical draw
    /// over `weights` (all-zero weights fall back to cache 0).
    /// `assign_seed` is `scenario_seed(run_seed, streams::ASSIGN)`.
    pub fn assign_cache(&self, assign_seed: u64, draw: u64, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut u = unit_draw(assign_seed, draw) * total;
        for (index, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if u < w {
                    return index;
                }
                u -= w;
            }
        }
        weights.len() - 1
    }

    /// The logical client issuing read draw `draw`, out of the scenario's
    /// population. `client_seed` is
    /// `scenario_seed(run_seed, streams::CLIENT)`.
    pub fn client_for_draw(&self, client_seed: u64, draw: u64) -> u64 {
        derive_stream_seed(client_seed, draw) % self.population
    }

    /// The **modeled** latency (µs) a client observes for read draw `draw`
    /// completing at `now`: a cache hit costs ~800 µs and a degraded
    /// pass-through costs the backend round trip, both inflated by the
    /// instantaneous load multiplier (queueing) and a heavy-tailed jitter
    /// draw (cubed uniform, so p999 ≫ p50). Deterministic in
    /// `(latency_seed, now, draw, degraded)` — the reason two runs of the
    /// same scenario produce bit-identical histograms.
    /// `latency_seed` is `scenario_seed(run_seed, streams::LATENCY)`.
    pub fn modeled_latency_micros(
        &self,
        latency_seed: u64,
        now: SimTime,
        draw: u64,
        degraded: bool,
        backend_rtt_micros: u64,
    ) -> u64 {
        let base = if degraded {
            800.0 + backend_rtt_micros as f64
        } else {
            800.0
        };
        let load = self.rate_multiplier(now);
        let queue = 1.0 + 1.5 * (load - 1.0).max(0.0);
        let u = unit_draw(latency_seed, draw);
        (base * queue * (1.0 + 3.0 * u * u * u)) as u64
    }
}

/// Builds a round-robin churn rotation over `caches` caches: starting at
/// `start`, every `period` the next cache in turn goes down (crashing if
/// `crash`, pausing otherwise) and comes back `down_for` later.
pub fn churn_rotation(
    caches: u32,
    start: SimTime,
    period: SimDuration,
    down_for: SimDuration,
    crash: bool,
) -> Vec<ChurnEvent> {
    assert!(down_for < period, "a cache must recover before the next falls");
    let (down, up) = if crash {
        (ChurnAction::Crash, ChurnAction::Restart)
    } else {
        (ChurnAction::Pause, ChurnAction::Resume)
    };
    (0..caches)
        .flat_map(|i| {
            let at = start + SimDuration::from_micros(period.as_micros() * u64::from(i));
            [
                ChurnEvent {
                    at,
                    cache: i,
                    action: down,
                },
                ChurnEvent {
                    at: at + down_for,
                    cache: i,
                    action: up,
                },
            ]
        })
        .collect()
}

/// The canonical five-scenario catalog the `scenarios` figure and bench
/// bin run: one scenario per primitive family, each exercising the same
/// Zipfian baseline (2000 objects, skew 0.9, five accesses per
/// transaction, two million logical clients) over `caches` caches for
/// `duration`.
pub fn catalog(duration: SimDuration, caches: u32) -> Vec<ScenarioSpec> {
    let third = SimDuration::from_micros(duration.as_micros() / 3);
    let base = |name: &str| ScenarioSpec::new(name, 2000, 5, 0.9, 2_000_000);
    let mut specs = vec![
        base("hot_key_storm").with_storm(HotKeyStorm {
            from: SimTime::ZERO + third,
            until: SimTime::ZERO + third + third,
            hot_keys: 5,
            fraction: 0.8,
        }),
        base("flash_crowd")
            .with_load(LoadCurve::Burst {
                at: SimTime::ZERO + third,
                len: third,
                factor: 3.0,
            })
            .with_crowd_shift(CrowdShift {
                at: SimTime::ZERO + third,
                cache: 0,
                weight: 8.0,
            }),
        base("diurnal").with_load(LoadCurve::Diurnal {
            period: duration,
            amplitude: 0.6,
        }),
        base("stampede").with_stampede(Stampede {
            fraction: 0.6,
            window: SimDuration::from_secs(2),
        }),
    ];
    let mut churny = base("cache_churn");
    for event in churn_rotation(
        caches.min(2),
        SimTime::ZERO + third,
        third,
        SimDuration::from_micros(third.as_micros() / 2),
        true,
    ) {
        churny = churny.with_churn(event);
    }
    // The last cache is additionally paused (pipe held, backlog queued)
    // for a window, exercising the live plane's pausable pipes alongside
    // the crash rotation — which is why the catalog's churn scenario needs
    // the live plane.
    if caches > 2 {
        let quarter = SimDuration::from_micros(third.as_micros() / 4);
        churny = churny
            .with_churn(ChurnEvent {
                at: SimTime::ZERO + third + third,
                cache: caches - 1,
                action: ChurnAction::Pause,
            })
            .with_churn(ChurnEvent {
                at: SimTime::ZERO + third + third + quarter,
                cache: caches - 1,
                action: ChurnAction::Resume,
            });
    }
    specs.push(churny);
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::scenario_seed;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn load_curves_compose_by_multiplication() {
        let spec = ScenarioSpec::new("t", 100, 5, 1.0, 1000)
            .with_load(LoadCurve::Burst {
                at: secs(2),
                len: SimDuration::from_secs(2),
                factor: 3.0,
            })
            .with_load(LoadCurve::Burst {
                at: secs(3),
                len: SimDuration::from_secs(2),
                factor: 2.0,
            });
        assert!((spec.rate_multiplier(secs(1)) - 1.0).abs() < 1e-12);
        assert!((spec.rate_multiplier(secs(2)) - 3.0).abs() < 1e-12);
        assert!((spec.rate_multiplier(secs(3)) - 6.0).abs() < 1e-12);
        assert!((spec.rate_multiplier(secs(4)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_curve_oscillates_around_one() {
        let curve = LoadCurve::Diurnal {
            period: SimDuration::from_secs(40),
            amplitude: 0.6,
        };
        assert!((curve.multiplier(secs(0)) - 1.0).abs() < 1e-9);
        assert!(curve.multiplier(secs(10)) > 1.5, "peak above baseline");
        assert!(curve.multiplier(secs(30)) < 0.5, "trough below baseline");
        assert!(curve.multiplier(secs(30)) >= 0.05, "floored");
    }

    #[test]
    fn storms_redirect_only_inside_their_window() {
        let spec = ScenarioSpec::new("t", 1000, 5, 1.0, 1000).with_storm(HotKeyStorm {
            from: secs(5),
            until: secs(10),
            hot_keys: 3,
            fraction: 1.0,
        });
        let seed = scenario_seed(42, streams::STORM);
        for draw in 0..200u64 {
            let cold = ObjectId(999);
            assert_eq!(spec.apply_storm(seed, secs(1), draw, cold), cold);
            let hot = spec.apply_storm(seed, secs(7), draw, cold);
            assert!(hot.as_u64() < 3, "fraction 1.0 always redirects");
            assert_eq!(spec.apply_storm(seed, secs(10), draw, cold), cold);
        }
    }

    #[test]
    fn crowd_shifts_rewrite_weights_from_their_instant() {
        let spec = ScenarioSpec::new("t", 100, 5, 1.0, 1000).with_crowd_shift(CrowdShift {
            at: secs(3),
            cache: 1,
            weight: 9.0,
        });
        let base = [1.0, 1.0, 1.0];
        assert_eq!(spec.cache_weights(secs(2), &base), vec![1.0, 1.0, 1.0]);
        assert_eq!(spec.cache_weights(secs(3), &base), vec![1.0, 9.0, 1.0]);
    }

    #[test]
    fn cache_assignment_follows_the_weights() {
        let spec = ScenarioSpec::new("t", 100, 5, 1.0, 1000);
        let seed = scenario_seed(7, streams::ASSIGN);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for draw in 0..4000u64 {
            counts[spec.assign_cache(seed, draw, &weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight cache receives nothing");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.0..4.0).contains(&ratio), "≈3:1 split, got {ratio}");
        assert_eq!(spec.assign_cache(seed, 0, &[0.0, 0.0]), 0, "fallback");
    }

    #[test]
    fn per_draw_decisions_are_deterministic() {
        let spec = ScenarioSpec::new("t", 500, 5, 1.0, 2_000_000)
            .with_stampede(Stampede {
                fraction: 0.5,
                window: SimDuration::from_secs(1),
            });
        let stamp = scenario_seed(42, streams::STAMPEDE);
        let client = scenario_seed(42, streams::CLIENT);
        let lat = scenario_seed(42, streams::LATENCY);
        for draw in [0u64, 1, 17, 1_000_003] {
            assert_eq!(
                spec.stampede_redirect(stamp, draw),
                spec.stampede_redirect(stamp, draw)
            );
            assert_eq!(
                spec.client_for_draw(client, draw),
                spec.client_for_draw(client, draw)
            );
            assert!(spec.client_for_draw(client, draw) < 2_000_000);
            assert_eq!(
                spec.modeled_latency_micros(lat, secs(1), draw, false, 10_000),
                spec.modeled_latency_micros(lat, secs(1), draw, false, 10_000)
            );
        }
    }

    #[test]
    fn modeled_latency_separates_hits_from_degraded_reads() {
        let spec = ScenarioSpec::new("t", 100, 5, 1.0, 1000).with_load(LoadCurve::Burst {
            at: secs(2),
            len: SimDuration::from_secs(1),
            factor: 4.0,
        });
        let lat = scenario_seed(1, streams::LATENCY);
        let hit = spec.modeled_latency_micros(lat, secs(0), 3, false, 100_000);
        let degraded = spec.modeled_latency_micros(lat, secs(0), 3, true, 100_000);
        assert!(degraded > hit + 50_000, "pass-through pays the backend RTT");
        let loaded = spec.modeled_latency_micros(lat, secs(2), 3, false, 100_000);
        assert!(loaded > hit, "queueing under the burst inflates latency");
    }

    #[test]
    fn churn_rotation_alternates_down_and_up() {
        let events = churn_rotation(
            3,
            secs(10),
            SimDuration::from_secs(4),
            SimDuration::from_secs(1),
            true,
        );
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].action, ChurnAction::Crash);
        assert_eq!(events[1].action, ChurnAction::Restart);
        assert_eq!(events[1].at, secs(11));
        let mut spec = ScenarioSpec::new("t", 100, 5, 1.0, 1000);
        for e in events {
            spec = spec.with_churn(e);
        }
        let ats: Vec<u64> = spec.churn_events().iter().map(|e| e.at.0).collect();
        let mut sorted = ats.clone();
        sorted.sort();
        assert_eq!(ats, sorted, "churn kept sorted");
        assert!(!spec.has_pause_churn());
        let paused = spec.with_churn(ChurnEvent {
            at: secs(1),
            cache: 0,
            action: ChurnAction::Pause,
        });
        assert!(paused.has_pause_churn());
    }

    #[test]
    fn catalog_names_five_distinct_scenarios() {
        let specs = catalog(SimDuration::from_secs(12), 4);
        let names: Vec<&str> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "hot_key_storm",
                "flash_crowd",
                "diurnal",
                "stampede",
                "cache_churn"
            ]
        );
        for spec in &specs {
            assert_eq!(spec.object_count(), 2000);
            assert_eq!(spec.accesses_per_transaction(), 5);
            assert_eq!(spec.population(), 2_000_000);
            assert!((spec.skew() - 0.9).abs() < 1e-12);
        }
        assert!(!specs[4].churn_events().is_empty());
        assert!(
            specs[4].has_pause_churn(),
            "with >2 caches the churn scenario also exercises pause/resume"
        );
        assert!(specs[3].stampede().is_some());
    }
}
