//! An HDR-style latency histogram with mergeable per-thread recorders.
//!
//! The scenario engine records one latency sample per read-only
//! transaction, per cache. Storing raw samples for millions of logical
//! clients is out of the question, so samples land in a fixed-size
//! log-bucketed histogram in the spirit of HdrHistogram: values below 64 µs
//! are recorded exactly, and each subsequent power-of-two octave is split
//! into 32 linear sub-buckets, bounding the relative quantile error at
//! ~3 % while covering the whole `u64` microsecond range in under 2 KiB of
//! counters.
//!
//! Recorders are plain value types: each worker thread owns one and the
//! engine folds them together with [`LatencyHistogram::merge`] (a
//! saturating add, so a pathological run can never wrap a counter into a
//! nonsense quantile). Quantile queries on an empty histogram return
//! `None` rather than a fake zero.

/// Number of exact buckets (values `0..EXACT` are recorded exactly).
const EXACT: u64 = 64;
/// Sub-buckets per octave above the exact range.
const SUBS: u64 = 32;
/// log2 of [`SUBS`].
const SUB_BITS: u32 = 5;
/// Total bucket count: 64 exact + 32 per octave for octaves 1..=58.
const BUCKETS: usize = (EXACT + 58 * SUBS) as usize;

/// A fixed-size log-bucketed histogram of microsecond latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Index of the bucket that `value` (in µs) lands in.
fn bucket_of(value: u64) -> usize {
    if value < EXACT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = u64::from(msb) - u64::from(SUB_BITS);
    let sub = (value >> (msb - SUB_BITS)) & (SUBS - 1);
    (EXACT + (octave - 1) * SUBS + sub) as usize
}

/// Lowest value (in µs) that maps to bucket `index` — the value a quantile
/// query reports for that bucket.
fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < EXACT {
        return index;
    }
    let octave = (index - EXACT) / SUBS + 1;
    let sub = (index - EXACT) % SUBS;
    let msb = octave as u32 + SUB_BITS;
    (1u64 << msb) + (sub << (msb - SUB_BITS))
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    /// Records one sample of `micros` microseconds.
    pub fn record(&mut self, micros: u64) {
        self.record_n(micros, 1);
    }

    /// Records `n` samples of `micros` microseconds, saturating rather than
    /// wrapping on overflow.
    pub fn record_n(&mut self, micros: u64, n: u64) {
        let bucket = bucket_of(micros);
        self.counts[bucket] = self.counts[bucket].saturating_add(n);
        self.total = self.total.saturating_add(n);
    }

    /// Folds another recorder into this one (saturating per-bucket add).
    /// Used to combine per-thread recorders at the end of a run.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// Number of recorded samples (saturating).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q ∈ [0, 1]` — the smallest bucket floor such
    /// that at least `⌈q · len⌉` samples are at or below it (so `q = 0`
    /// reports the minimum bucket and `q = 1` the maximum). Values below
    /// 64 µs are exact; above that the reported floor is within ~3 % of
    /// the true sample. Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(count);
            if seen >= target {
                return Some(bucket_floor(index));
            }
        }
        // Reachable only when `total` saturated; report the top bucket.
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_floor)
    }

    /// Median latency, `None` if empty.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile latency, `None` if empty.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile latency, `None` if empty.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_on_known_small_inputs() {
        // Values below 64 µs are recorded exactly, so quantiles on a known
        // population are exact order statistics.
        let mut h = LatencyHistogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.len(), 10);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.quantile(0.9), Some(9));
        assert_eq!(h.p99(), Some(10));
        assert_eq!(h.p999(), Some(10));
        assert_eq!(h.quantile(1.0), Some(10));
    }

    #[test]
    fn large_values_land_within_three_percent() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            let mut single = LatencyHistogram::new();
            single.record(v);
            let q = single.quantile(0.5).unwrap();
            assert!(q <= v, "floor never exceeds the sample");
            assert!(
                (v - q) as f64 <= v as f64 * 0.032,
                "sample {v} reported as {q}"
            );
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        // Ordering across octaves is preserved.
        assert!(h.quantile(0.0).unwrap() < h.quantile(1.0).unwrap());
    }

    #[test]
    fn merge_combines_per_thread_recorders() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 1..=5u64 {
            a.record(v);
        }
        for v in 6..=10u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.p50(), Some(5));
        assert_eq!(a.quantile(1.0), Some(10));
        // A merged histogram equals one that recorded everything itself.
        let mut whole = LatencyHistogram::new();
        for v in 1..=10u64 {
            whole.record(v);
        }
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_and_record_saturate_instead_of_wrapping() {
        let mut a = LatencyHistogram::new();
        a.record_n(3, u64::MAX);
        a.record_n(3, 10);
        assert_eq!(a.len(), u64::MAX, "total saturates");
        let mut b = LatencyHistogram::new();
        b.record_n(3, u64::MAX);
        a.merge(&b);
        assert_eq!(a.len(), u64::MAX);
        // Quantiles still answer sensibly after saturation.
        assert_eq!(a.p50(), Some(3));
        assert_eq!(a.quantile(1.0), Some(3));
    }

    #[test]
    fn zero_sample_histogram_answers_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
        let mut m = LatencyHistogram::new();
        m.merge(&h);
        assert!(m.is_empty(), "merging empties stays empty");
    }

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = None;
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX]) {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v);
            if let Some(prev) = last {
                assert!(b >= prev, "bucket index monotone in value");
            }
            last = Some(b);
            assert_eq!(
                bucket_of(bucket_floor(b)),
                b,
                "floor of a bucket maps back to it"
            );
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }
}
