//! Structural metrics used to validate the synthetic topologies.

use super::Graph;

/// Average degree of the graph (0 for an empty graph).
pub fn average_degree(graph: &Graph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    2.0 * graph.edge_count() as f64 / graph.node_count() as f64
}

/// Local clustering coefficient of one node: the fraction of pairs of its
/// neighbours that are themselves connected. Nodes of degree < 2 contribute 0.
pub fn local_clustering_coefficient(graph: &Graph, node: usize) -> f64 {
    let neighbors = graph.neighbors(node);
    let k = neighbors.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if graph.has_edge(neighbors[i], neighbors[j]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// Average of the local clustering coefficients over all nodes
/// (the Watts–Strogatz clustering coefficient).
pub fn average_clustering_coefficient(graph: &Graph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    (0..graph.node_count())
        .map(|u| local_clustering_coefficient(graph, u))
        .sum::<f64>()
        / graph.node_count() as f64
}

/// Histogram of node degrees: `histogram[d]` is the number of nodes with
/// degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let max_degree = (0..graph.node_count())
        .map(|u| graph.degree(u))
        .max()
        .unwrap_or(0);
    let mut histogram = vec![0usize; max_degree + 1];
    for u in 0..graph.node_count() {
        histogram[graph.degree(u)] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 3 attached to 2, 4 isolated.
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn average_degree_counts_both_endpoints() {
        let g = triangle_plus_tail();
        assert!((average_degree(&g) - 8.0 / 5.0).abs() < 1e-9);
        assert_eq!(average_degree(&Graph::new(0)), 0.0);
    }

    #[test]
    fn clustering_coefficients() {
        let g = triangle_plus_tail();
        assert!((local_clustering_coefficient(&g, 0) - 1.0).abs() < 1e-9);
        assert!((local_clustering_coefficient(&g, 2) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(local_clustering_coefficient(&g, 3), 0.0);
        assert_eq!(local_clustering_coefficient(&g, 4), 0.0);
        let expected = (1.0 + 1.0 + 1.0 / 3.0 + 0.0 + 0.0) / 5.0;
        assert!((average_clustering_coefficient(&g) - expected).abs() < 1e-9);
        assert_eq!(average_clustering_coefficient(&Graph::new(0)), 0.0);
    }

    #[test]
    fn a_clique_has_clustering_one() {
        let mut g = Graph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        assert!((average_clustering_coefficient(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degree_histogram_counts_nodes() {
        let g = triangle_plus_tail();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![1, 1, 2, 1]); // degrees: 2,2,3,1,0
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(degree_histogram(&Graph::new(0)), vec![0]);
    }
}
