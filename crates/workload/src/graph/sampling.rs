//! Random-walk down-sampling (§V-B1).
//!
//! "We down-sample both graphs to 1000 nodes. We use a technique based on
//! random walks that maintains important properties of the original graph,
//! specifically clustering […]. We start by choosing a node uniformly at
//! random and start a random walk from that location. In every step, with
//! probability 15 %, the walk reverts back to the first node and starts
//! again. This is repeated until the target number of nodes have been
//! visited."

use super::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The restart probability used by the paper's sampler.
pub const RESTART_PROBABILITY: f64 = 0.15;

/// Down-samples `graph` to (at most) `target_nodes` nodes with the paper's
/// restarting random walk, returning the subgraph induced on the visited
/// nodes with nodes re-labelled `0..sampled`.
///
/// If the walk gets stuck (the reachable component is smaller than the
/// target), a fresh start node is chosen among the unvisited nodes, matching
/// the spirit of "repeat until the target number of nodes have been visited".
///
/// # Panics
/// Panics if `graph` has no nodes or `target_nodes` is zero.
pub fn random_walk_sample(graph: &Graph, target_nodes: usize, seed: u64) -> Graph {
    assert!(graph.node_count() > 0, "cannot sample an empty graph");
    assert!(target_nodes > 0, "target must be positive");
    let target = target_nodes.min(graph.node_count());
    let mut rng = StdRng::seed_from_u64(seed);

    let mut visited: Vec<usize> = Vec::with_capacity(target);
    let mut visited_set = vec![false; graph.node_count()];

    let mut anchor = rng.gen_range(0..graph.node_count());
    visit(anchor, &mut visited, &mut visited_set);
    let mut current = anchor;
    // A generous step budget prevents pathological loops on graphs whose
    // reachable region is smaller than the target.
    let mut budget = 200 * graph.node_count().max(target);

    while visited.len() < target {
        if budget == 0 {
            // Re-anchor at an unvisited node to guarantee progress.
            if let Some(next) = (0..graph.node_count()).find(|&u| !visited_set[u]) {
                anchor = next;
                current = next;
                visit(next, &mut visited, &mut visited_set);
                budget = 200 * graph.node_count().max(target);
                continue;
            } else {
                break;
            }
        }
        budget -= 1;

        if rng.gen_bool(RESTART_PROBABILITY) {
            current = anchor;
            continue;
        }
        let neighbors = graph.neighbors(current);
        if neighbors.is_empty() {
            current = anchor;
            continue;
        }
        current = neighbors[rng.gen_range(0..neighbors.len())];
        if !visited_set[current] {
            visit(current, &mut visited, &mut visited_set);
        }
    }

    induced_subgraph(graph, &visited)
}

fn visit(node: usize, visited: &mut Vec<usize>, visited_set: &mut [bool]) {
    if !visited_set[node] {
        visited_set[node] = true;
        visited.push(node);
    }
}

/// Builds the subgraph induced on `nodes`, re-labelling them `0..nodes.len()`
/// in the order given.
pub fn induced_subgraph(graph: &Graph, nodes: &[usize]) -> Graph {
    let index: HashMap<usize, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut sub = Graph::new(nodes.len());
    for (new_u, &old_u) in nodes.iter().enumerate() {
        for &old_v in graph.neighbors(old_u) {
            if let Some(&new_v) = index.get(&old_v) {
                if new_u < new_v {
                    sub.add_edge(new_u, new_v);
                }
            }
        }
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generators;
    use crate::graph::metrics;
    use crate::graph::GraphKind;

    #[test]
    fn sample_has_the_requested_size() {
        let g = generators::generate(GraphKind::RetailAffinity, 3000, 11);
        let s = random_walk_sample(&g, 1000, 1);
        assert_eq!(s.node_count(), 1000);
        assert!(s.edge_count() > 0);
    }

    #[test]
    fn sampling_more_nodes_than_exist_returns_the_whole_graph() {
        let g = generators::erdos_renyi(50, 0.1, 3);
        let s = random_walk_sample(&g, 500, 1);
        assert_eq!(s.node_count(), 50);
    }

    #[test]
    fn sampling_preserves_clustering_roughly() {
        let g = generators::generate(GraphKind::RetailAffinity, 4000, 11);
        let s = random_walk_sample(&g, 1000, 2);
        let cc_full = metrics::average_clustering_coefficient(&g);
        let cc_sample = metrics::average_clustering_coefficient(&s);
        assert!(
            cc_sample > cc_full * 0.5,
            "sampling should preserve clustering: full {cc_full}, sample {cc_sample}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = generators::generate(GraphKind::SocialNetwork, 2000, 11);
        let a = random_walk_sample(&g, 500, 9);
        let b = random_walk_sample(&g, 500, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn induced_subgraph_keeps_only_internal_edges() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        let s = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 1); // only 1-2 survives
        assert!(s.has_edge(0, 1));
    }

    #[test]
    fn disconnected_graphs_are_still_sampled_to_target() {
        // Two disjoint cliques of 30; sampling 50 must cross components via
        // re-anchoring.
        let mut g = Graph::new(60);
        for base in [0usize, 30] {
            for u in base..base + 30 {
                for v in (u + 1)..base + 30 {
                    g.add_edge(u, v);
                }
            }
        }
        let s = random_walk_sample(&g, 50, 4);
        assert_eq!(s.node_count(), 50);
    }
}
