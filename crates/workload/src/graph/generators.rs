//! Synthetic graph generators standing in for the paper's datasets.
//!
//! The evaluation needs two topologies with a clear clustering contrast:
//! the Amazon co-purchasing graph is "visibly clustered … more so than the
//! Orkut one, yet well-connected" (§V-B1). Both generators below are planted
//! community models with a small preferential-attachment overlay for degree
//! skew; they differ in community size and in how much probability mass
//! stays inside a community, which is exactly the property the experiments
//! depend on.

use super::{Graph, GraphKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the planted community generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityGraphParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Average community size.
    pub community_size: usize,
    /// Probability of an edge between two nodes of the same community.
    pub intra_probability: f64,
    /// Expected number of inter-community edges per node.
    pub inter_edges_per_node: f64,
    /// Number of high-degree hub nodes attached preferentially.
    pub hubs: usize,
    /// Edges attached to each hub.
    pub hub_degree: usize,
}

impl CommunityGraphParams {
    /// Parameters producing a retail-affinity (Amazon-like) topology: small
    /// dense communities, few cross edges, a handful of popular-product hubs.
    pub fn retail_affinity(nodes: usize) -> Self {
        CommunityGraphParams {
            nodes,
            community_size: 8,
            intra_probability: 0.6,
            inter_edges_per_node: 0.4,
            hubs: nodes / 100,
            hub_degree: 12,
        }
    }

    /// Parameters producing a social-network (Orkut-like) topology: larger,
    /// sparser communities with many more cross edges and bigger hubs.
    pub fn social_network(nodes: usize) -> Self {
        CommunityGraphParams {
            nodes,
            community_size: 40,
            intra_probability: 0.12,
            inter_edges_per_node: 2.5,
            hubs: nodes / 50,
            hub_degree: 25,
        }
    }
}

/// Generates a planted-community graph.
///
/// # Panics
/// Panics if `params.nodes` or `params.community_size` is zero.
pub fn community_graph(params: CommunityGraphParams, seed: u64) -> Graph {
    assert!(params.nodes > 0 && params.community_size > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new(params.nodes);

    // Assign nodes to contiguous communities.
    let communities: Vec<(usize, usize)> = {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < params.nodes {
            let size = params.community_size.max(2);
            let end = (start + size).min(params.nodes);
            out.push((start, end));
            start = end;
        }
        out
    };

    // Dense intra-community edges.
    for &(start, end) in &communities {
        for u in start..end {
            for v in (u + 1)..end {
                if rng.gen_bool(params.intra_probability) {
                    graph.add_edge(u, v);
                }
            }
        }
    }

    // Sparse inter-community edges, biased towards neighbouring communities
    // (related product categories / befriended communities).
    let inter_edges = (params.nodes as f64 * params.inter_edges_per_node).round() as usize;
    for _ in 0..inter_edges {
        let ci = rng.gen_range(0..communities.len());
        let cj = if communities.len() == 1 {
            ci
        } else if rng.gen_bool(0.7) {
            (ci + 1) % communities.len()
        } else {
            rng.gen_range(0..communities.len())
        };
        let (si, ei) = communities[ci];
        let (sj, ej) = communities[cj];
        let u = rng.gen_range(si..ei);
        let v = rng.gen_range(sj..ej);
        graph.add_edge(u, v);
    }

    // Preferential-attachment hubs for degree skew.
    if params.hubs > 0 && params.nodes > params.hub_degree {
        let mut weighted: Vec<usize> = (0..params.nodes)
            .flat_map(|u| std::iter::repeat_n(u, graph.degree(u) + 1))
            .collect();
        weighted.shuffle(&mut rng);
        for _ in 0..params.hubs {
            let hub = rng.gen_range(0..params.nodes);
            for _ in 0..params.hub_degree {
                let target = weighted[rng.gen_range(0..weighted.len())];
                graph.add_edge(hub, target);
            }
        }
    }

    connect_components(&mut graph, &mut rng);
    graph
}

/// Generates an Erdős–Rényi random graph (used as an unclustered control in
/// tests and ablations).
///
/// # Panics
/// Panics if `nodes` is zero or `probability` is outside `[0, 1]`.
pub fn erdos_renyi(nodes: usize, probability: f64, seed: u64) -> Graph {
    assert!(nodes > 0);
    assert!((0.0..=1.0).contains(&probability));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new(nodes);
    for u in 0..nodes {
        for v in (u + 1)..nodes {
            if rng.gen_bool(probability) {
                graph.add_edge(u, v);
            }
        }
    }
    connect_components(&mut graph, &mut rng);
    graph
}

/// Generates the topology standing in for one of the paper's datasets.
pub fn generate(kind: GraphKind, nodes: usize, seed: u64) -> Graph {
    match kind {
        GraphKind::RetailAffinity => community_graph(CommunityGraphParams::retail_affinity(nodes), seed),
        GraphKind::SocialNetwork => community_graph(CommunityGraphParams::social_network(nodes), seed),
    }
}

/// Adds one edge per extra component so the graph is connected (random-walk
/// sampling and random-walk transactions both assume reachability).
fn connect_components(graph: &mut Graph, rng: &mut StdRng) {
    let n = graph.node_count();
    if n == 0 {
        return;
    }
    // Union-find over the current edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for u in 0..n {
        for &v in graph.neighbors(u).to_vec().iter() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
    }
    let mut representatives: Vec<usize> = (0..n).filter(|&u| find(&mut parent, u) == u).collect();
    representatives.shuffle(rng);
    for pair in representatives.windows(2) {
        graph.add_edge(pair[0], pair[1]);
        let (ru, rv) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
        if ru != rv {
            parent[ru] = rv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::metrics;

    #[test]
    fn retail_graph_is_connected_and_clustered() {
        let g = generate(GraphKind::RetailAffinity, 1000, 7);
        assert_eq!(g.node_count(), 1000);
        assert_eq!(g.connected_components(), 1);
        let cc = metrics::average_clustering_coefficient(&g);
        assert!(cc > 0.3, "retail topology should be highly clustered, got {cc}");
    }

    #[test]
    fn social_graph_is_connected_and_less_clustered_than_retail() {
        let retail = generate(GraphKind::RetailAffinity, 1000, 7);
        let social = generate(GraphKind::SocialNetwork, 1000, 7);
        assert_eq!(social.connected_components(), 1);
        let cc_retail = metrics::average_clustering_coefficient(&retail);
        let cc_social = metrics::average_clustering_coefficient(&social);
        assert!(
            cc_social < cc_retail,
            "social topology ({cc_social}) must be less clustered than retail ({cc_retail})"
        );
        // Social graphs are better connected on average.
        assert!(metrics::average_degree(&social) > metrics::average_degree(&retail) * 0.8);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(GraphKind::RetailAffinity, 300, 3);
        let b = generate(GraphKind::RetailAffinity, 300, 3);
        let c = generate(GraphKind::RetailAffinity, 300, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_has_low_clustering() {
        let g = erdos_renyi(500, 0.01, 5);
        assert_eq!(g.connected_components(), 1);
        let cc = metrics::average_clustering_coefficient(&g);
        assert!(cc < 0.1, "ER graph should have near-zero clustering, got {cc}");
    }

    #[test]
    fn small_graphs_are_handled() {
        let g = community_graph(CommunityGraphParams::retail_affinity(5), 1);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.connected_components(), 1);
        let g = erdos_renyi(1, 0.5, 1);
        assert_eq!(g.node_count(), 1);
    }
}
