//! Graph topologies standing in for the Amazon and Orkut snapshots.
//!
//! The paper derives its realistic workloads from two graph datasets; those
//! snapshots are not redistributable, so [`generators`] builds synthetic
//! graphs with the same structural signatures (see `DESIGN.md`), [`sampling`]
//! implements the paper's random-walk down-sampling, and [`metrics`] provides
//! the clustering statistics used to validate the substitution.

pub mod generators;
pub mod metrics;
pub mod sampling;

use serde::{Deserialize, Serialize};
use tcache_types::ObjectId;

/// Which real-world topology a generated graph stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphKind {
    /// The Amazon product co-purchasing style topology: many small, dense
    /// communities ("products bought together"), high clustering.
    RetailAffinity,
    /// The Orkut friendship style topology: larger, fuzzier communities,
    /// lower clustering, better connected.
    SocialNetwork,
}

impl std::fmt::Display for GraphKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphKind::RetailAffinity => write!(f, "retail-affinity (Amazon-like)"),
            GraphKind::SocialNetwork => write!(f, "social-network (Orkut-like)"),
        }
    }
}

/// An undirected graph whose nodes are database objects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<usize>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); nodes],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds an undirected edge between `u` and `v`. Self-loops and duplicate
    /// edges are ignored. Returns `true` if the edge was added.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.node_count() && v < self.node_count(), "node out of range");
        if u == v || self.adjacency[u].contains(&v) {
            return false;
        }
        self.adjacency[u].push(v);
        self.adjacency[v].push(u);
        self.edges += 1;
        true
    }

    /// Returns `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency.get(u).is_some_and(|n| n.contains(&v))
    }

    /// The neighbours of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adjacency[u]
    }

    /// The degree of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// Maps a node index to the database object it represents.
    pub fn object_of(&self, node: usize) -> ObjectId {
        ObjectId(node as u64)
    }

    /// Number of connected components.
    pub fn connected_components(&self) -> usize {
        let n = self.node_count();
        let mut visited = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if visited[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            visited[start] = true;
            while let Some(u) = stack.pop() {
                for &v in &self.adjacency[u] {
                    if !visited[v] {
                        visited[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(4);
        assert_eq!(g.node_count(), 4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(0, 1), "duplicate edges are ignored");
        assert!(!g.add_edge(2, 2), "self loops are ignored");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.object_of(3), ObjectId(3));
    }

    #[test]
    fn connected_components_are_counted() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        // node 5 is isolated
        assert_eq!(g.connected_components(), 3);
        g.add_edge(2, 3);
        g.add_edge(4, 5);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn graph_kind_display() {
        assert!(GraphKind::RetailAffinity.to_string().contains("Amazon"));
        assert!(GraphKind::SocialNetwork.to_string().contains("Orkut"));
    }
}
