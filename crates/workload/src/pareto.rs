//! Bounded Pareto sampling.
//!
//! The approximately-clustered synthetic workload (§V-A1) chooses each
//! object "using a bounded Pareto distribution starting at the head of its
//! cluster"; the α parameter controls how heavy the tail is and therefore
//! how often a transaction escapes its cluster (Figure 3 sweeps α from 1/32
//! to 4).

use rand::Rng;
use rand::RngCore;

/// A bounded Pareto distribution over `[min, max]`.
///
/// Sampling uses inverse-transform sampling of the truncated Pareto CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    min: f64,
    max: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution with shape `alpha` over the
    /// inclusive range `[min, max]`.
    ///
    /// # Panics
    /// Panics if `alpha` is not strictly positive, if `min` is not strictly
    /// positive, or if `max < min`.
    pub fn new(alpha: f64, min: f64, max: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(min > 0.0 && min.is_finite(), "min must be positive");
        assert!(max >= min && max.is_finite(), "max must be at least min");
        BoundedPareto { alpha, min, max }
    }

    /// The shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Samples a value in `[min, max]`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        if (self.max - self.min).abs() < f64::EPSILON {
            return self.min;
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let l = self.min;
        let h = self.max;
        let a = self.alpha;
        // Inverse CDF of the Pareto distribution truncated to [l, h].
        let num = u * h.powf(a) - u * l.powf(a) - h.powf(a);
        let x = (-num / (h.powf(a) * l.powf(a))).powf(-1.0 / a);
        x.clamp(l, h)
    }

    /// Samples an integer offset in `[0, range)` by shifting the
    /// distribution to start at 1 (so offset 0 is the most likely value).
    pub fn sample_offset(&self, rng: &mut dyn RngCore, range: u64) -> u64 {
        if range == 0 {
            return 0;
        }
        let value = self.sample(rng);
        ((value - self.min).floor() as u64).min(range - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = BoundedPareto::new(1.0, 1.0, 2000.0);
        assert_eq!(p.alpha(), 1.0);
        for _ in 0..10_000 {
            let x = p.sample(&mut rng);
            assert!((1.0..=2000.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn high_alpha_concentrates_near_the_minimum() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = BoundedPareto::new(4.0, 1.0, 2000.0);
        let n = 10_000;
        let near_min = (0..n)
            .filter(|_| p.sample(&mut rng) < 5.0)
            .count();
        assert!(
            near_min as f64 / n as f64 > 0.95,
            "α=4 should keep >95% of samples within the first cluster, got {near_min}"
        );
    }

    #[test]
    fn low_alpha_spreads_over_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = BoundedPareto::new(1.0 / 32.0, 1.0, 2000.0);
        let n = 10_000;
        // For the truncated Pareto with α = 1/32 over [1, 2000] about 8 % of
        // the mass lies past the midpoint and about 74 % lies outside the
        // first cluster of five — far more than for α = 4 where virtually
        // nothing does.
        let past_midpoint = (0..n).filter(|_| p.sample(&mut rng) > 1000.0).count();
        let outside_cluster = (0..n).filter(|_| p.sample(&mut rng) > 6.0).count();
        assert!(
            past_midpoint as f64 / n as f64 > 0.05,
            "α=1/32 should put a noticeable fraction of samples past the midpoint, got {past_midpoint}"
        );
        assert!(
            outside_cluster as f64 / n as f64 > 0.5,
            "α=1/32 should frequently escape the first cluster, got {outside_cluster}"
        );
    }

    #[test]
    fn offsets_cover_the_requested_range_only() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = BoundedPareto::new(0.5, 1.0, 100.0);
        for _ in 0..1000 {
            assert!(p.sample_offset(&mut rng, 10) < 10);
        }
        assert_eq!(p.sample_offset(&mut rng, 0), 0);
    }

    #[test]
    fn degenerate_range_returns_min() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = BoundedPareto::new(1.0, 3.0, 3.0);
        assert_eq!(p.sample(&mut rng), 3.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_panics() {
        let _ = BoundedPareto::new(0.0, 1.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "max must be at least min")]
    fn inverted_bounds_panic() {
        let _ = BoundedPareto::new(1.0, 10.0, 1.0);
    }
}
