//! The workload-generator abstraction shared by all workloads.

use rand::RngCore;
use tcache_types::{AccessSet, SimTime};

/// Summary of how a generator distributes accesses; used by experiment
/// descriptions and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Transactions stay inside static clusters.
    Clustered,
    /// Transactions are spread (approximately) uniformly over all objects.
    Uniform,
    /// Transactions follow random walks over a graph topology.
    GraphWalk,
    /// The pattern changes over time (phase change or drifting clusters).
    Dynamic,
}

/// A source of transaction access sets.
///
/// Both update clients and read-only clients draw their access sets from a
/// generator; the paper uses the same distribution for both ("both read and
/// update transactions access 5 objects per transaction", §IV).
///
/// Generators receive the current simulated time so that time-varying
/// workloads (phase changes, drifting clusters) can adjust, and an external
/// random-number generator so that experiments stay reproducible under a
/// fixed seed.
pub trait WorkloadGenerator: Send {
    /// Produces the access set of the next transaction issued at `now`.
    fn generate(&mut self, now: SimTime, rng: &mut dyn RngCore) -> AccessSet;

    /// Total number of distinct objects the workload can touch; the
    /// experiment harness populates the database with exactly this many.
    fn object_count(&self) -> usize;

    /// Number of objects accessed per transaction.
    fn accesses_per_transaction(&self) -> usize;

    /// A coarse description of the access pattern.
    fn pattern(&self) -> AccessPattern;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tcache_types::ObjectId;

    /// A trivial generator used to exercise the trait object path.
    struct RoundRobin {
        next: u64,
        objects: u64,
    }

    impl WorkloadGenerator for RoundRobin {
        fn generate(&mut self, _now: SimTime, _rng: &mut dyn RngCore) -> AccessSet {
            let start = self.next;
            self.next = (self.next + 1) % self.objects;
            AccessSet::new(vec![ObjectId(start)])
        }
        fn object_count(&self) -> usize {
            self.objects as usize
        }
        fn accesses_per_transaction(&self) -> usize {
            1
        }
        fn pattern(&self) -> AccessPattern {
            AccessPattern::Uniform
        }
    }

    #[test]
    fn generators_are_usable_as_trait_objects() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut generator: Box<dyn WorkloadGenerator> =
            Box::new(RoundRobin { next: 0, objects: 3 });
        let sets: Vec<AccessSet> = (0..4)
            .map(|_| generator.generate(SimTime::ZERO, &mut rng))
            .collect();
        assert_eq!(sets[0].objects()[0], ObjectId(0));
        assert_eq!(sets[3].objects()[0], ObjectId(0));
        assert_eq!(generator.object_count(), 3);
        assert_eq!(generator.accesses_per_transaction(), 1);
        assert_eq!(generator.pattern(), AccessPattern::Uniform);
    }
}
