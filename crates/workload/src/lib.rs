//! Workload generation for the T-Cache evaluation.
//!
//! Two families of workloads drive the experiments of §V:
//!
//! * **Synthetic** (§V-A1): 2000 objects partitioned into clusters of five;
//!   either *perfectly clustered* accesses (all five accesses of a
//!   transaction fall in one cluster) or *approximately clustered* accesses
//!   where each access is drawn from a bounded Pareto distribution anchored
//!   at the cluster head (parameter α controls how strongly accesses stay
//!   inside the cluster). Variants model an unclustered phase followed by a
//!   clustered phase (Figure 4) and clusters that drift by one object every
//!   few minutes (Figure 5).
//!
//! * **Graph-based** (§V-B1): the paper samples the Amazon co-purchasing
//!   graph and the Orkut friendship graph down to 1000 nodes with a
//!   random-walk sampler and generates transactions as 5-step random walks.
//!   The original snapshots are not redistributable, so this crate ships
//!   synthetic generators with the same structural signatures — a highly
//!   clustered "retail affinity" graph and a less clustered "social network"
//!   graph — together with the same random-walk sampler and random-walk
//!   transaction generator (see `DESIGN.md` for the substitution rationale).
//!
//! A third layer goes beyond the paper toward the ROADMAP's
//! production-scale north star: the **scenario engine** primitives. The
//! [`zipf`] module provides a Zipfian key sampler whose draws are pure
//! functions of `(seed, draw index)` — replayable bit-identically under
//! any worker-thread interleaving — the [`scenario`] module composes it
//! with hot-key storms, flash crowds, diurnal load curves, invalidation
//! stampedes and cache churn into named [`ScenarioSpec`]s, and the
//! [`histogram`] module supplies the HDR-style latency recorder the
//! engine fills per cache and per scenario.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod generator;
pub mod graph;
pub mod graph_walk;
pub mod histogram;
pub mod pareto;
pub mod scenario;
pub mod synthetic;
pub mod zipf;

pub use generator::{AccessPattern, WorkloadGenerator};
pub use graph::{Graph, GraphKind};
pub use graph_walk::RandomWalkWorkload;
pub use histogram::LatencyHistogram;
pub use pareto::BoundedPareto;
pub use scenario::{
    catalog, churn_rotation, ChurnAction, ChurnEvent, CrowdShift, HotKeyStorm, LoadCurve,
    ScenarioSpec, Stampede,
};
pub use synthetic::{
    DriftingClusters, ParetoClusters, PerfectClusters, PhaseShift, UniformRandom,
};
pub use zipf::{ZipfSampler, ZipfWorkload};
