//! Random-walk transactions over a graph topology (§V-B1).
//!
//! "Each transaction starts by picking a node uniformly at random and takes
//! 5 steps of a random walk. The nodes visited by the random walk are the
//! objects the transaction accesses."

use crate::generator::{AccessPattern, WorkloadGenerator};
use crate::graph::{generators, sampling, Graph, GraphKind};
use rand::Rng;
use rand::RngCore;
use tcache_types::{AccessSet, ObjectId, SimTime};

/// A workload whose transactions are short random walks over a graph.
#[derive(Debug, Clone)]
pub struct RandomWalkWorkload {
    graph: Graph,
    kind: Option<GraphKind>,
    walk_length: usize,
}

impl RandomWalkWorkload {
    /// Creates a random-walk workload over an explicit graph. `walk_length`
    /// is the number of objects each transaction accesses (the paper uses 5).
    ///
    /// # Panics
    /// Panics if the graph is empty or `walk_length` is zero.
    pub fn new(graph: Graph, walk_length: usize) -> Self {
        assert!(graph.node_count() > 0, "graph must have nodes");
        assert!(walk_length > 0, "walks must access at least one object");
        RandomWalkWorkload {
            graph,
            kind: None,
            walk_length,
        }
    }

    /// Builds the paper's workload for one of the two topologies: generate a
    /// large synthetic graph of `source_nodes` nodes, down-sample it to
    /// `sampled_nodes` with the restarting random walk, and run 5-object
    /// random-walk transactions over the sample.
    pub fn paper_workload(kind: GraphKind, source_nodes: usize, sampled_nodes: usize, seed: u64) -> Self {
        let full = generators::generate(kind, source_nodes, seed);
        let sampled = sampling::random_walk_sample(&full, sampled_nodes, seed.wrapping_add(1));
        RandomWalkWorkload {
            graph: sampled,
            kind: Some(kind),
            walk_length: 5,
        }
    }

    /// The paper's default configuration for a topology: a 1000-node sample
    /// of a 4000-node synthetic source graph.
    pub fn paper_default(kind: GraphKind, seed: u64) -> Self {
        RandomWalkWorkload::paper_workload(kind, 4000, 1000, seed)
    }

    /// The underlying (sampled) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Which real-world topology this workload stands in for, if it was
    /// built by [`RandomWalkWorkload::paper_workload`].
    pub fn kind(&self) -> Option<GraphKind> {
        self.kind
    }
}

impl WorkloadGenerator for RandomWalkWorkload {
    fn generate(&mut self, _now: SimTime, rng: &mut dyn RngCore) -> AccessSet {
        let mut current = rng.gen_range(0..self.graph.node_count());
        let mut objects = Vec::with_capacity(self.walk_length);
        objects.push(ObjectId(current as u64));
        while objects.len() < self.walk_length {
            let neighbors = self.graph.neighbors(current);
            if neighbors.is_empty() {
                // Isolated node: restart the walk somewhere else.
                current = rng.gen_range(0..self.graph.node_count());
            } else {
                current = neighbors[rng.gen_range(0..neighbors.len())];
            }
            objects.push(ObjectId(current as u64));
        }
        AccessSet::new(objects)
    }

    fn object_count(&self) -> usize {
        self.graph.node_count()
    }

    fn accesses_per_transaction(&self) -> usize {
        self.walk_length
    }

    fn pattern(&self) -> AccessPattern {
        AccessPattern::GraphWalk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walks_have_the_requested_length_and_follow_edges() {
        let mut g = Graph::new(6);
        for u in 0..5 {
            g.add_edge(u, u + 1);
        }
        let mut w = RandomWalkWorkload::new(g, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let access = w.generate(SimTime::ZERO, &mut rng);
            assert_eq!(access.len(), 5);
            let objects = access.objects();
            for pair in objects.windows(2) {
                let (a, b) = (pair[0].as_u64() as usize, pair[1].as_u64() as usize);
                assert!(
                    w.graph().has_edge(a, b) || a == b,
                    "consecutive accesses must be adjacent"
                );
            }
        }
        assert_eq!(w.accesses_per_transaction(), 5);
        assert_eq!(w.pattern(), AccessPattern::GraphWalk);
        assert!(w.kind().is_none());
    }

    #[test]
    fn isolated_nodes_restart_the_walk() {
        let g = Graph::new(3); // no edges at all
        let mut w = RandomWalkWorkload::new(g, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let access = w.generate(SimTime::ZERO, &mut rng);
        assert_eq!(access.len(), 4);
        assert!(access.iter().all(|o| o.as_u64() < 3));
    }

    #[test]
    fn paper_workloads_have_1000_objects() {
        let retail = RandomWalkWorkload::paper_default(GraphKind::RetailAffinity, 17);
        assert_eq!(retail.object_count(), 1000);
        assert_eq!(retail.kind(), Some(GraphKind::RetailAffinity));
        let social = RandomWalkWorkload::paper_default(GraphKind::SocialNetwork, 17);
        assert_eq!(social.object_count(), 1000);
        assert_eq!(social.kind(), Some(GraphKind::SocialNetwork));
    }

    #[test]
    fn transactions_are_topologically_local() {
        // In the clustered retail topology, random walks should revisit few
        // distinct communities; measure by the number of distinct objects
        // (walks that loop within a dense neighbourhood revisit nodes).
        let mut w = RandomWalkWorkload::paper_default(GraphKind::RetailAffinity, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut revisits = 0usize;
        let samples = 500;
        for _ in 0..samples {
            let access = w.generate(SimTime::ZERO, &mut rng);
            if access.distinct().len() < access.len() {
                revisits += 1;
            }
        }
        assert!(
            revisits > samples / 10,
            "dense neighbourhoods should cause some walks to revisit nodes ({revisits})"
        );
    }
}
