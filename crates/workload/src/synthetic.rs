//! Synthetic workloads of §V-A1.

use crate::generator::{AccessPattern, WorkloadGenerator};
use crate::pareto::BoundedPareto;
use rand::Rng;
use rand::RngCore;
use tcache_types::{AccessSet, ObjectId, SimDuration, SimTime};

/// Perfectly clustered accesses: each transaction picks one cluster
/// uniformly at random and draws all of its accesses (with repetition) from
/// within that cluster.
#[derive(Debug, Clone, Copy)]
pub struct PerfectClusters {
    objects: u64,
    cluster_size: u64,
    per_txn: usize,
}

impl PerfectClusters {
    /// Creates a perfectly clustered workload. The paper uses 2000 objects,
    /// clusters of 5 and 5 accesses per transaction.
    ///
    /// # Panics
    /// Panics if `cluster_size` is zero or larger than `objects`.
    pub fn new(objects: u64, cluster_size: u64, per_txn: usize) -> Self {
        assert!(cluster_size > 0 && cluster_size <= objects);
        PerfectClusters {
            objects,
            cluster_size,
            per_txn,
        }
    }

    /// The paper's default configuration (2000 objects, clusters of 5,
    /// 5 accesses per transaction).
    pub fn paper_default() -> Self {
        PerfectClusters::new(2000, 5, 5)
    }

    fn clusters(&self) -> u64 {
        self.objects / self.cluster_size
    }
}

impl WorkloadGenerator for PerfectClusters {
    fn generate(&mut self, _now: SimTime, rng: &mut dyn RngCore) -> AccessSet {
        let cluster = rng.gen_range(0..self.clusters());
        let head = cluster * self.cluster_size;
        (0..self.per_txn)
            .map(|_| ObjectId(head + rng.gen_range(0..self.cluster_size)))
            .collect()
    }

    fn object_count(&self) -> usize {
        self.objects as usize
    }

    fn accesses_per_transaction(&self) -> usize {
        self.per_txn
    }

    fn pattern(&self) -> AccessPattern {
        AccessPattern::Clustered
    }
}

/// Approximately clustered accesses: the cluster is chosen uniformly, but
/// each access is the cluster head plus a bounded-Pareto offset, wrapping
/// around the object space, so transactions occasionally escape their
/// cluster (§V-A1; Figure 3 sweeps the α parameter).
#[derive(Debug, Clone, Copy)]
pub struct ParetoClusters {
    objects: u64,
    cluster_size: u64,
    per_txn: usize,
    pareto: BoundedPareto,
}

impl ParetoClusters {
    /// Creates an approximately clustered workload with Pareto shape
    /// `alpha`.
    ///
    /// The per-access offset from the cluster head is drawn from a bounded
    /// Pareto whose scale equals the cluster size, so that at large α the
    /// accesses spread over the *whole cluster* (not just its head) while
    /// rarely escaping it, and at small α they are nearly uniform over the
    /// object space — matching the behaviour Figure 3 relies on.
    ///
    /// # Panics
    /// Panics if `cluster_size` is zero or larger than `objects`, or if
    /// `alpha` is not strictly positive.
    pub fn new(objects: u64, cluster_size: u64, per_txn: usize, alpha: f64) -> Self {
        assert!(cluster_size > 0 && cluster_size <= objects);
        ParetoClusters {
            objects,
            cluster_size,
            per_txn,
            pareto: BoundedPareto::new(alpha, cluster_size as f64, objects as f64),
        }
    }

    /// The paper's Figure 6 configuration: 2000 objects, clusters of 5,
    /// α = 1.0.
    pub fn paper_default() -> Self {
        ParetoClusters::new(2000, 5, 5, 1.0)
    }

    /// The Pareto shape parameter.
    pub fn alpha(&self) -> f64 {
        self.pareto.alpha()
    }

    fn clusters(&self) -> u64 {
        self.objects / self.cluster_size
    }
}

impl WorkloadGenerator for ParetoClusters {
    fn generate(&mut self, _now: SimTime, rng: &mut dyn RngCore) -> AccessSet {
        let cluster = rng.gen_range(0..self.clusters());
        let head = cluster * self.cluster_size;
        (0..self.per_txn)
            .map(|_| {
                let offset = self.pareto.sample_offset(rng, self.objects);
                ObjectId((head + offset) % self.objects)
            })
            .collect()
    }

    fn object_count(&self) -> usize {
        self.objects as usize
    }

    fn accesses_per_transaction(&self) -> usize {
        self.per_txn
    }

    fn pattern(&self) -> AccessPattern {
        AccessPattern::Clustered
    }
}

/// Uniformly random accesses over the whole object space (no clustering
/// whatsoever) — the initial phase of the Figure 4 convergence experiment.
#[derive(Debug, Clone, Copy)]
pub struct UniformRandom {
    objects: u64,
    per_txn: usize,
}

impl UniformRandom {
    /// Creates a uniform workload.
    ///
    /// # Panics
    /// Panics if `objects` is zero.
    pub fn new(objects: u64, per_txn: usize) -> Self {
        assert!(objects > 0);
        UniformRandom { objects, per_txn }
    }
}

impl WorkloadGenerator for UniformRandom {
    fn generate(&mut self, _now: SimTime, rng: &mut dyn RngCore) -> AccessSet {
        (0..self.per_txn)
            .map(|_| ObjectId(rng.gen_range(0..self.objects)))
            .collect()
    }

    fn object_count(&self) -> usize {
        self.objects as usize
    }

    fn accesses_per_transaction(&self) -> usize {
        self.per_txn
    }

    fn pattern(&self) -> AccessPattern {
        AccessPattern::Uniform
    }
}

/// Perfectly clustered accesses whose cluster boundaries shift by one object
/// every `shift_every` of simulated time (Figure 5): `0–4, 5–9, …` becomes
/// `1–5, 6–10, …` and so on, wrapping around the object space.
#[derive(Debug, Clone, Copy)]
pub struct DriftingClusters {
    objects: u64,
    cluster_size: u64,
    per_txn: usize,
    shift_every: SimDuration,
}

impl DriftingClusters {
    /// Creates a drifting-cluster workload.
    ///
    /// # Panics
    /// Panics if `cluster_size` is zero or larger than `objects`, or if
    /// `shift_every` is zero.
    pub fn new(objects: u64, cluster_size: u64, per_txn: usize, shift_every: SimDuration) -> Self {
        assert!(cluster_size > 0 && cluster_size <= objects);
        assert!(shift_every > SimDuration::ZERO);
        DriftingClusters {
            objects,
            cluster_size,
            per_txn,
            shift_every,
        }
    }

    /// The paper's Figure 5 configuration: perfect clusters of 5 over 2000
    /// objects, shifting by one every 3 minutes.
    pub fn paper_default() -> Self {
        DriftingClusters::new(2000, 5, 5, SimDuration::from_secs(180))
    }

    /// The cluster shift in force at `now`.
    pub fn shift_at(&self, now: SimTime) -> u64 {
        (now.as_micros() / self.shift_every.as_micros()) % self.objects
    }
}

impl WorkloadGenerator for DriftingClusters {
    fn generate(&mut self, now: SimTime, rng: &mut dyn RngCore) -> AccessSet {
        let shift = self.shift_at(now);
        let clusters = self.objects / self.cluster_size;
        let cluster = rng.gen_range(0..clusters);
        let head = cluster * self.cluster_size;
        (0..self.per_txn)
            .map(|_| {
                let within = rng.gen_range(0..self.cluster_size);
                ObjectId((head + within + shift) % self.objects)
            })
            .collect()
    }

    fn object_count(&self) -> usize {
        self.objects as usize
    }

    fn accesses_per_transaction(&self) -> usize {
        self.per_txn
    }

    fn pattern(&self) -> AccessPattern {
        AccessPattern::Dynamic
    }
}

/// A workload that switches from one generator to another at a fixed point
/// in simulated time — the Figure 4 convergence experiment switches from
/// [`UniformRandom`] to [`PerfectClusters`] at t = 58 s.
pub struct PhaseShift {
    before: Box<dyn WorkloadGenerator>,
    after: Box<dyn WorkloadGenerator>,
    switch_at: SimTime,
}

impl std::fmt::Debug for PhaseShift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseShift")
            .field("switch_at", &self.switch_at)
            .finish_non_exhaustive()
    }
}

impl PhaseShift {
    /// Creates a phase-shifting workload.
    ///
    /// # Panics
    /// Panics if the two phases disagree on the number of objects.
    pub fn new(
        before: Box<dyn WorkloadGenerator>,
        after: Box<dyn WorkloadGenerator>,
        switch_at: SimTime,
    ) -> Self {
        assert_eq!(
            before.object_count(),
            after.object_count(),
            "both phases must use the same object space"
        );
        PhaseShift {
            before,
            after,
            switch_at,
        }
    }

    /// The paper's Figure 4 configuration: 1000 objects accessed uniformly
    /// at random until `switch_at`, perfectly clustered (clusters of 5)
    /// afterwards.
    pub fn paper_default(switch_at: SimTime) -> Self {
        PhaseShift::new(
            Box::new(UniformRandom::new(1000, 5)),
            Box::new(PerfectClusters::new(1000, 5, 5)),
            switch_at,
        )
    }

    /// The time at which the second phase starts.
    pub fn switch_at(&self) -> SimTime {
        self.switch_at
    }
}

impl WorkloadGenerator for PhaseShift {
    fn generate(&mut self, now: SimTime, rng: &mut dyn RngCore) -> AccessSet {
        if now < self.switch_at {
            self.before.generate(now, rng)
        } else {
            self.after.generate(now, rng)
        }
    }

    fn object_count(&self) -> usize {
        self.before.object_count()
    }

    fn accesses_per_transaction(&self) -> usize {
        self.after.accesses_per_transaction()
    }

    fn pattern(&self) -> AccessPattern {
        AccessPattern::Dynamic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn perfect_clusters_stay_within_one_cluster() {
        let mut w = PerfectClusters::paper_default();
        let mut rng = rng();
        for _ in 0..500 {
            let access = w.generate(SimTime::ZERO, &mut rng);
            assert_eq!(access.len(), 5);
            let clusters: std::collections::HashSet<u64> =
                access.iter().map(|o| o.as_u64() / 5).collect();
            assert_eq!(clusters.len(), 1, "all accesses in one cluster");
            assert!(access.iter().all(|o| o.as_u64() < 2000));
        }
        assert_eq!(w.object_count(), 2000);
        assert_eq!(w.accesses_per_transaction(), 5);
        assert_eq!(w.pattern(), AccessPattern::Clustered);
    }

    #[test]
    fn pareto_clusters_mostly_stay_but_sometimes_escape() {
        let mut w = ParetoClusters::new(2000, 5, 5, 1.0);
        assert!((w.alpha() - 1.0).abs() < 1e-12);
        let mut rng = rng();
        let mut in_cluster = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let access = w.generate(SimTime::ZERO, &mut rng);
            // Recover the chosen cluster as the most common cluster head.
            let heads: Vec<u64> = access.iter().map(|o| o.as_u64() / 5).collect();
            let base = heads.iter().min().copied().unwrap();
            for o in access.iter() {
                total += 1;
                if o.as_u64() / 5 == base {
                    in_cluster += 1;
                }
            }
        }
        let ratio = in_cluster as f64 / total as f64;
        assert!(ratio > 0.5, "α=1 keeps most accesses clustered, got {ratio}");
        assert!(ratio < 0.999, "α=1 still escapes sometimes, got {ratio}");
    }

    #[test]
    fn low_alpha_pareto_is_nearly_uniform() {
        let mut w = ParetoClusters::new(2000, 5, 5, 1.0 / 32.0);
        let mut rng = rng();
        let mut far = 0usize;
        let mut total = 0usize;
        for _ in 0..1000 {
            let access = w.generate(SimTime::ZERO, &mut rng);
            let base = access.iter().map(|o| o.as_u64()).min().unwrap();
            for o in access.iter() {
                total += 1;
                let distance = (o.as_u64() + 2000 - base) % 2000;
                if distance >= 5 {
                    far += 1;
                }
            }
        }
        assert!(
            far as f64 / total as f64 > 0.3,
            "α=1/32 frequently leaves the cluster"
        );
    }

    #[test]
    fn uniform_covers_the_object_space() {
        let mut w = UniformRandom::new(1000, 5);
        let mut rng = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            for o in w.generate(SimTime::ZERO, &mut rng).iter() {
                assert!(o.as_u64() < 1000);
                seen.insert(*o);
            }
        }
        assert!(seen.len() > 900, "uniform workload touches most objects");
        assert_eq!(w.pattern(), AccessPattern::Uniform);
    }

    #[test]
    fn drifting_clusters_shift_over_time() {
        let w = DriftingClusters::paper_default();
        assert_eq!(w.shift_at(SimTime::ZERO), 0);
        assert_eq!(w.shift_at(SimTime::from_secs(179)), 0);
        assert_eq!(w.shift_at(SimTime::from_secs(180)), 1);
        assert_eq!(w.shift_at(SimTime::from_secs(540)), 3);

        let mut w = DriftingClusters::new(100, 5, 5, SimDuration::from_secs(10));
        let mut rng = rng();
        // After one shift, transactions are still confined to a single
        // (shifted) cluster: undoing the shift maps them back to one of the
        // original clusters.
        for _ in 0..200 {
            let access = w.generate(SimTime::from_secs(10), &mut rng);
            let shift = w.shift_at(SimTime::from_secs(10));
            let clusters: std::collections::HashSet<u64> = access
                .iter()
                .map(|o| ((o.as_u64() + 100 - shift) % 100) / 5)
                .collect();
            assert_eq!(clusters.len(), 1, "cluster width stays 5 after the shift");
        }
        assert_eq!(w.pattern(), AccessPattern::Dynamic);
    }

    #[test]
    fn phase_shift_switches_generators_at_the_boundary() {
        let mut w = PhaseShift::paper_default(SimTime::from_secs(58));
        assert_eq!(w.switch_at(), SimTime::from_secs(58));
        assert_eq!(w.object_count(), 1000);
        let mut rng = rng();
        // Before the switch accesses frequently span multiple clusters.
        let mut multi_cluster_before = 0;
        for _ in 0..200 {
            let access = w.generate(SimTime::from_secs(10), &mut rng);
            let clusters: std::collections::HashSet<u64> =
                access.iter().map(|o| o.as_u64() / 5).collect();
            if clusters.len() > 1 {
                multi_cluster_before += 1;
            }
        }
        assert!(multi_cluster_before > 150);
        // After the switch every transaction stays within one cluster.
        for _ in 0..200 {
            let access = w.generate(SimTime::from_secs(60), &mut rng);
            let clusters: std::collections::HashSet<u64> =
                access.iter().map(|o| o.as_u64() / 5).collect();
            assert_eq!(clusters.len(), 1);
        }
        assert_eq!(w.pattern(), AccessPattern::Dynamic);
    }

    #[test]
    #[should_panic(expected = "same object space")]
    fn phase_shift_with_mismatched_object_spaces_panics() {
        let _ = PhaseShift::new(
            Box::new(UniformRandom::new(100, 5)),
            Box::new(UniformRandom::new(200, 5)),
            SimTime::from_secs(1),
        );
    }
}
