//! A deterministic Zipfian key sampler for the scenario engine.
//!
//! Production edge traffic is heavily skewed: a handful of hot objects
//! absorb most reads while a long tail is touched rarely. The scenario
//! engine models this with a classic Zipf distribution over `n` ranked
//! objects, `P(rank i) ∝ 1 / i^s`, but with one twist that matters for
//! replayability: the *k*-th key drawn is a **pure function of
//! `(seed, k)`** rather than the output of a shared mutable RNG. Worker
//! threads can therefore consume draws in any order, or be re-partitioned
//! across a different thread count, and the logical key sequence never
//! changes — the property the sampler's property tests pin down.
//!
//! The inverse-CDF lookup uses a precomputed cumulative table, so a draw
//! costs one 64-bit mix ([`tcache_types::derive_stream_seed`]-style
//! splitmix64 finalizer) plus one binary search.

use rand::RngCore;
use tcache_types::{derive_stream_seed, AccessSet, ObjectId, SimTime};

use crate::generator::{AccessPattern, WorkloadGenerator};

/// A Zipf distribution over `objects` ranked keys whose draws are indexed
/// rather than streamed: [`ZipfSampler::key_for_draw`] maps a draw index
/// straight to a key.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    objects: u64,
    exponent: f64,
    seed: u64,
    /// `cdf[i]` is the probability that a draw has rank ≤ i (0-based).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler. `exponent` is the Zipf shape `s` (0 degenerates
    /// to uniform; web workloads are typically 0.8–1.2). The cumulative
    /// table costs `O(objects)` once.
    ///
    /// # Panics
    /// Panics if `objects` is zero or `exponent` is negative or non-finite.
    pub fn new(seed: u64, objects: u64, exponent: f64) -> Self {
        assert!(objects > 0, "need at least one object");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(objects as usize);
        let mut total = 0.0f64;
        for rank in 1..=objects {
            total += 1.0 / (rank as f64).powf(exponent);
            cdf.push(total);
        }
        let norm = total;
        for c in &mut cdf {
            *c /= norm;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler {
            objects,
            exponent,
            seed,
            cdf,
        }
    }

    /// Number of distinct keys the sampler can produce.
    pub fn object_count(&self) -> u64 {
        self.objects
    }

    /// The Zipf shape parameter `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The theoretical probability of the key with 0-based rank `rank`
    /// (rank 0 is the hottest key). Used by the property tests to compare
    /// empirical frequencies against theory.
    pub fn rank_probability(&self, rank: u64) -> f64 {
        assert!(rank < self.objects);
        let below = if rank == 0 {
            0.0
        } else {
            self.cdf[rank as usize - 1]
        };
        self.cdf[rank as usize] - below
    }

    /// A uniform `f64` in `[0, 1)` that depends only on `(seed, draw)`.
    fn unit_for_draw(&self, draw: u64) -> f64 {
        // 53 mantissa bits of the mixed output give a dense uniform float.
        let mixed = derive_stream_seed(self.seed, draw);
        (mixed >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The key produced by draw index `draw` — a pure function of
    /// `(seed, draw)`. Rank 0 (the hottest key) maps to `ObjectId(0)`,
    /// rank 1 to `ObjectId(1)`, and so on.
    pub fn key_for_draw(&self, draw: u64) -> ObjectId {
        let u = self.unit_for_draw(draw);
        // First rank whose cumulative probability exceeds u.
        let rank = self.cdf.partition_point(|&c| c <= u) as u64;
        ObjectId(rank.min(self.objects - 1))
    }
}

/// A [`WorkloadGenerator`] over a [`ZipfSampler`].
///
/// The generator keeps a private draw counter and **ignores the external
/// RNG**: access sets are a pure function of `(seed, draw counter)`, which
/// is what lets a scenario replay bit-identically no matter how the worker
/// threads that consume it interleave. Each access consumes one draw index.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    sampler: ZipfSampler,
    per_txn: usize,
    next_draw: u64,
}

impl ZipfWorkload {
    /// Creates a Zipf workload issuing `per_txn` accesses per transaction.
    pub fn new(seed: u64, objects: u64, exponent: f64, per_txn: usize) -> Self {
        ZipfWorkload {
            sampler: ZipfSampler::new(seed, objects, exponent),
            per_txn,
            next_draw: 0,
        }
    }

    /// The underlying sampler.
    pub fn sampler(&self) -> &ZipfSampler {
        &self.sampler
    }
}

impl WorkloadGenerator for ZipfWorkload {
    fn generate(&mut self, _now: SimTime, _rng: &mut dyn RngCore) -> AccessSet {
        let start = self.next_draw;
        self.next_draw += self.per_txn as u64;
        (0..self.per_txn as u64)
            .map(|i| self.sampler.key_for_draw(start + i))
            .collect()
    }

    fn object_count(&self) -> usize {
        self.sampler.objects as usize
    }

    fn accesses_per_transaction(&self) -> usize {
        self.per_txn
    }

    fn pattern(&self) -> AccessPattern {
        AccessPattern::Uniform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = ZipfSampler::new(1, 100, 1.0);
        let mut last = 0.0;
        for rank in 0..100 {
            let p = z.rank_probability(rank);
            assert!(p > 0.0);
            last += p;
        }
        assert!((last - 1.0).abs() < 1e-9);
        assert!(z.rank_probability(0) > z.rank_probability(99));
        assert_eq!(z.object_count(), 100);
        assert!((z.exponent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_exponent_degenerates_to_uniform() {
        let z = ZipfSampler::new(9, 50, 0.0);
        for rank in 0..50 {
            assert!((z.rank_probability(rank) - 1.0 / 50.0).abs() < 1e-12);
        }
    }

    #[test]
    fn draws_are_pure_functions_of_seed_and_index() {
        let a = ZipfSampler::new(42, 1000, 1.0);
        let b = ZipfSampler::new(42, 1000, 1.0);
        // Query b in reverse order: same keys regardless of access order.
        let forward: Vec<ObjectId> = (0..256).map(|k| a.key_for_draw(k)).collect();
        let backward: Vec<ObjectId> = (0..256).rev().map(|k| b.key_for_draw(k)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>()
        );
        let c = ZipfSampler::new(43, 1000, 1.0);
        let other: Vec<ObjectId> = (0..256).map(|k| c.key_for_draw(k)).collect();
        assert_ne!(forward, other, "different seed → different sequence");
    }

    #[test]
    fn workload_generates_in_draw_order_and_ignores_the_rng() {
        let mut w1 = ZipfWorkload::new(7, 500, 1.0, 5);
        let mut w2 = ZipfWorkload::new(7, 500, 1.0, 5);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(999);
        for i in 0..50u64 {
            let a = w1.generate(SimTime::ZERO, &mut rng_a);
            let b = w2.generate(SimTime::ZERO, &mut rng_b);
            assert_eq!(a.objects(), b.objects(), "txn {i}");
        }
        assert_eq!(w1.object_count(), 500);
        assert_eq!(w1.accesses_per_transaction(), 5);
        assert_eq!(w1.pattern(), AccessPattern::Uniform);
        assert!(w1.sampler().rank_probability(0) > 0.0);
    }
}
