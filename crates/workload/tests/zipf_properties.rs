//! Property tests for the deterministic Zipfian sampler.
//!
//! Two properties matter to the scenario engine:
//!
//! 1. **Fidelity** — the empirical rank-frequency of a long draw sequence
//!    matches the theoretical Zipf distribution within tolerance, for any
//!    seed and any skew in the range scenarios use.
//! 2. **Interleaving invariance** — the key sequence is a pure function of
//!    `(seed, draw index)`: partitioning the draw indices over any number
//!    of simulated worker threads, in any order, reproduces exactly the
//!    sequence a single thread would see.

use proptest::prelude::*;
use tcache_workload::zipf::ZipfSampler;

proptest! {
    // Empirical rank frequencies track the theoretical distribution. The
    // tolerance is generous (absolute 2.5 % per rank over 40k draws) but
    // tight enough to catch an off-by-one in the CDF lookup or a biased
    // unit-draw: the hottest rank at skew 1.0 over 50 objects has
    // probability ~22 %, so a rank-shift error shows up at 10× tolerance.
    #[test]
    fn empirical_rank_frequency_matches_theory(
        seed in 0u64..512,
        skew_centi in 50u32..130,
        objects in 10u64..60,
    ) {
        let skew = f64::from(skew_centi) / 100.0;
        let sampler = ZipfSampler::new(seed, objects, skew);
        let draws = 40_000u64;
        let mut counts = vec![0u64; objects as usize];
        for draw in 0..draws {
            counts[sampler.key_for_draw(draw).as_u64() as usize] += 1;
        }
        for rank in 0..objects {
            let expected = sampler.rank_probability(rank);
            let observed = counts[rank as usize] as f64 / draws as f64;
            prop_assert!(
                (observed - expected).abs() < 0.025,
                "rank {rank}: observed {observed:.4}, expected {expected:.4}"
            );
        }
        // The head is hotter than the tail in aggregate.
        let head: u64 = counts[..(objects as usize / 2)].iter().sum();
        prop_assert!(head * 2 > draws, "head half draws a majority");
    }

    // Same seed → identical key sequence no matter how the draw indices
    // are partitioned over worker threads or in which order the partitions
    // are consumed. Simulates `workers` threads each taking a strided
    // slice of the index space, consuming it back to front.
    #[test]
    fn key_sequence_is_invariant_under_worker_partitioning(
        seed in 0u64..1024,
        workers in 1usize..9,
        draws in 100u64..800,
    ) {
        let sampler = ZipfSampler::new(seed, 200, 1.0);
        let reference: Vec<u64> = (0..draws)
            .map(|k| sampler.key_for_draw(k).as_u64())
            .collect();

        // Each simulated worker owns the indices congruent to its id and
        // walks them in reverse; results are scattered back by index.
        let mut scattered = vec![u64::MAX; draws as usize];
        for worker in 0..workers {
            let own: Vec<u64> = (0..draws)
                .filter(|k| *k as usize % workers == worker)
                .collect();
            for &k in own.iter().rev() {
                let fresh = ZipfSampler::new(seed, 200, 1.0);
                scattered[k as usize] = fresh.key_for_draw(k).as_u64();
            }
        }
        prop_assert_eq!(reference, scattered);
    }

    // Distinct seeds decorrelate: two seeds agree on at most a small
    // fraction of a long draw sequence (they share the skewed marginal
    // distribution, so some agreement is expected — at skew 1.0 over 200
    // objects the collision probability of independent draws is ~5 %).
    #[test]
    fn distinct_seeds_produce_distinct_sequences(seed in 0u64..1024) {
        let a = ZipfSampler::new(seed, 200, 1.0);
        let b = ZipfSampler::new(seed + 1, 200, 1.0);
        let draws = 2_000u64;
        let agree = (0..draws)
            .filter(|&k| a.key_for_draw(k) == b.key_for_draw(k))
            .count();
        prop_assert!(
            (agree as f64) < draws as f64 * 0.25,
            "sequences agree on {agree}/{draws} draws"
        );
    }
}
