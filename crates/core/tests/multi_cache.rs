//! Multi-cache deployment tests: isolation between cache servers and
//! per-cache violation counts validated against a sequential oracle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tcache::SystemBuilder;
use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig};
use tcache_monitor::{ConsistencyMonitor, MonitorReport};
use tcache_net::delivery::{run_delivery, DeliveryCounters, DeliveryModel, DeliveryTask};
use tcache_net::reactor::Reactor;
use tcache_net::{live_channel, LossModel};
use tcache_types::{
    cache_channel_seed, cache_delay_seed, CacheId, ObjectId, SimDuration, SimTime, Strategy,
    TCacheError, TransactionRecord, TxnId, Value, Version,
};

const OBJECTS: u64 = 50;

/// One read-only transaction's observed `(object, version)` pairs plus
/// whether it committed.
type Observation = (Vec<(ObjectId, Version)>, bool);

/// An invalidation addressed to cache A must never mutate cache B's entries,
/// even while both caches are being read concurrently.
#[test]
fn invalidations_addressed_to_one_cache_never_mutate_another() {
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
    db.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    let caches: Vec<Arc<EdgeCache>> = (0..4)
        .map(|i| {
            Arc::new(EdgeCache::tcache(
                CacheId(i),
                Arc::clone(&db),
                3,
                Strategy::Abort,
            ))
        })
        .collect();
    // Warm every cache with every object at the initial version.
    for cache in &caches {
        for o in 0..OBJECTS {
            cache
                .read(SimTime::ZERO, TxnId(1 + o), ObjectId(o), true)
                .unwrap();
        }
    }
    // Commit updates so there are real invalidations to address.
    let mut invalidations = Vec::new();
    for round in 0..20u64 {
        let base = (round * 2) % (OBJECTS - 1);
        let commit = db
            .execute_update(TxnId(10_000 + round), &vec![base, base + 1].into())
            .unwrap();
        invalidations.extend(commit.invalidations.iter().copied());
    }

    // Reader threads hammer caches 1..3 while cache 0 receives every
    // invalidation; the other caches must keep serving their (stale) warmed
    // entries untouched.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = caches[1..]
        .iter()
        .map(|cache| {
            let cache = Arc::clone(cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut txn = 1_000_000 + u64::from(cache.id().0) * 1_000_000;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let key = ObjectId(txn % OBJECTS);
                    txn += 1;
                    // Single-object reads never abort; stale is fine here.
                    cache.read(SimTime::ZERO, TxnId(txn), key, true).unwrap();
                }
            })
        })
        .collect();
    for inv in &invalidations {
        caches[0].apply_invalidation(*inv);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }

    // Cache 0 evicted the stale entries…
    assert!(caches[0].stats().invalidations_applied > 0);
    // …while caches 1..3 never saw an invalidation and still hold every
    // object at the initial version.
    for cache in &caches[1..] {
        let stats = cache.stats();
        assert_eq!(stats.invalidations_applied, 0, "{}", cache.id());
        assert_eq!(stats.invalidations_ignored, 0, "{}", cache.id());
        for o in 0..OBJECTS {
            let v = cache
                .read(SimTime::ZERO, TxnId(90_000_000 + o), ObjectId(o), true)
                .unwrap();
            assert_eq!(
                v.version,
                Version::INITIAL,
                "{} must still hold the warmed entry for o{o}",
                cache.id()
            );
        }
    }
}

/// The live pipeline end to end: each cache registers an invalidation
/// upcall with the database that feeds its own reliable `LiveSender`;
/// committed updates fan out to every cache's receiver, and the per-cache
/// *loss* is applied by that cache's reactor delivery task (seeded from
/// `(run_seed, CacheId)`), so a lossy link affects only its own cache.
#[test]
fn live_transport_fans_out_via_database_upcalls() {
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
    db.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    let losses = [LossModel::None, LossModel::Uniform(1.0)];
    let mut reactor = Reactor::new();
    let timer = reactor.timer();
    let counters: Vec<Arc<DeliveryCounters>> = losses
        .iter()
        .enumerate()
        .map(|(i, &loss)| {
            let cache = CacheId(i as u32);
            let (tx, rx) = live_channel();
            db.register_invalidation_upcall(
                cache,
                Box::new(move |batch| {
                    tx.send(batch.iter().copied());
                }),
            );
            let task_counters = Arc::new(DeliveryCounters::default());
            reactor.spawn(run_delivery(
                rx.into_pipe_receiver(),
                timer.clone(),
                DeliveryTask {
                    model: DeliveryModel {
                        loss,
                        latency: tcache_net::LatencyModel::Constant(SimDuration::ZERO),
                    },
                    loss_seed: cache_channel_seed(9, cache),
                    delay_seed: cache_delay_seed(9, cache),
                    counters: Arc::clone(&task_counters),
                    paused: Arc::new(std::sync::atomic::AtomicBool::new(false)),
                    extra_delay_micros: Arc::new(std::sync::atomic::AtomicU64::new(0)),
                    batch_budget: tcache_net::delivery::DEFAULT_BATCH_BUDGET,
                },
                |_| {},
            ));
            task_counters
        })
        .collect();
    for round in 0..10u64 {
        db.execute_update(TxnId(round + 1), &vec![round, round + 1].into())
            .unwrap();
    }
    db.unregister_invalidation_upcall(CacheId(0));
    db.unregister_invalidation_upcall(CacheId(1));
    reactor.run(); // Senders dropped: tasks drain and complete.

    // The reliable cache's task applied every invalidation; the fully lossy
    // one dropped all of them — the loss process is per cache, not shared.
    assert_eq!(counters[0].snapshot().delivered, 20);
    assert_eq!(counters[1].snapshot().delivered, 0);
    assert_eq!(counters[1].snapshot().dropped, 20);
    // Applying the delivered invalidations is exactly the cache upcall loop.
    let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), 3, Strategy::Abort);
    cache.read(SimTime::ZERO, TxnId(100), ObjectId(0), true).unwrap();
    let commit = db
        .execute_update(TxnId(101), &vec![0u64].into())
        .unwrap();
    for inv in commit.invalidations.iter() {
        cache.apply_invalidation(*inv);
    }
    assert_eq!(cache.stats().invalidations_applied, 1);
}

/// Drives a 4-cache system with heterogeneous loss through a deterministic
/// script, classifying every read-only transaction online with per-cache
/// attribution, then replays each cache's observations through a fresh
/// monitor sequentially. The per-cache counts must match the oracle exactly.
#[test]
fn per_cache_violation_counts_match_a_sequential_oracle() {
    let system = SystemBuilder::new()
        .dependency_bound(3)
        .strategy(Strategy::Abort)
        .cache_loss_rates(vec![0.0, 0.3, 0.6, 1.0])
        .invalidation_delay_millis(5)
        .seed(42)
        .build();
    system.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    let cache_ids: Vec<CacheId> = system.cache_ids().collect();

    let mut online = ConsistencyMonitor::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut next_txn = 1u64;
    // Per cache: the (reads, committed) observations in execution order.
    let mut observations: Vec<Vec<Observation>> = vec![Vec::new(); cache_ids.len()];
    let mut updates: Vec<TransactionRecord> = Vec::new();

    for _ in 0..400 {
        // One update over a random adjacent pair (pairs create the
        // dependency links the violation predicates key off).
        let base = rng.gen_range(0..OBJECTS - 1);
        let txn = TxnId(1_000_000 + next_txn);
        next_txn += 1;
        let commit = system
            .database()
            .execute_update(txn, &vec![base, base + 1].into())
            .unwrap();
        updates.push(TransactionRecord::update_committed(
            txn,
            commit.reads.clone(),
            commit.written.clone(),
            system.now(),
        ));
        online.record_update_commit(updates.last().unwrap());
        // Publish on every cache's channel (what `system.update` does
        // internally; done manually here so the commit record is captured).
        system.publish_invalidations(&commit);

        // Each cache serves one 2-object read-only transaction.
        for (idx, &cache_id) in cache_ids.iter().enumerate() {
            let cache = system.cache(cache_id).unwrap();
            let read_base = rng.gen_range(0..OBJECTS - 1);
            let keys = [ObjectId(read_base), ObjectId(read_base + 1)];
            let txn = TxnId(1_000_000 + next_txn);
            next_txn += 1;
            let now = system.now();
            let mut observed = Vec::with_capacity(keys.len());
            let mut committed = true;
            for (i, &key) in keys.iter().enumerate() {
                match cache.read(now, txn, key, i + 1 == keys.len()) {
                    Ok(v) => observed.push((v.id, v.version)),
                    Err(TCacheError::InconsistencyAbort { .. }) => {
                        committed = false;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            online.record_read_only_from(cache_id, &observed, committed);
            observations[idx].push((observed, committed));
        }
        system.advance_time(tcache_types::SimDuration::from_millis(10));
    }

    // The lossy caches must actually have produced violations or aborts,
    // otherwise the oracle comparison is vacuous.
    let lossiest = online.cache_report(CacheId(3));
    assert!(
        lossiest.committed_inconsistent + lossiest.aborted_total() > 0,
        "the 100%-loss cache must trip the predicates: {lossiest:?}"
    );
    // With the ABORT strategy violations surface as aborts; a reliable link
    // (stale only within one round's delivery delay) must trip far fewer of
    // them than the link that loses everything.
    let violations =
        |r: &MonitorReport| r.committed_inconsistent + r.aborted_total();
    let reliable = online.cache_report(CacheId(0));
    assert!(
        violations(&reliable) < violations(&lossiest),
        "a reliable link must yield fewer violations ({} vs {})",
        violations(&reliable),
        violations(&lossiest)
    );

    // Sequential oracle: per cache, replay the full update history and then
    // that cache's observations in order through a fresh monitor. Verdicts
    // are stable under later updates, so feeding all updates first is
    // equivalent to the interleaved online order.
    for (idx, &cache_id) in cache_ids.iter().enumerate() {
        let mut oracle = ConsistencyMonitor::new();
        for update in &updates {
            oracle.record_update_commit(update);
        }
        for (reads, committed) in &observations[idx] {
            oracle.record_read_only(reads, *committed);
        }
        let expected = oracle.report();
        let actual = online.cache_report(cache_id);
        let strip_updates = |r: MonitorReport| MonitorReport {
            updates_committed: 0,
            updates_aborted: 0,
            ..r
        };
        assert_eq!(
            strip_updates(expected),
            actual,
            "{cache_id}: online per-cache counts must match the sequential oracle"
        );
    }

    // The per-cache reports partition the global one.
    let global = online.report();
    let summed: u64 = online
        .per_cache_reports()
        .map(|(_, r)| r.read_only_total())
        .sum();
    assert_eq!(summed, global.read_only_total());
}
