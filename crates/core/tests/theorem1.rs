//! Property tests for Theorem 1: with unbounded cache size and unbounded
//! dependency lists, T-Cache implements cache-serializability — every
//! read-only transaction that commits through the cache is serializable with
//! the update transactions, no matter how unreliable the invalidation
//! channel is.

use proptest::prelude::*;
use tcache_sim::experiment::{CacheKind, ExperimentConfig, WorkloadKind};
use tcache::types::Strategy as CacheStrategy;
use tcache::types::{ObjectId, SimDuration, SimTime, TransactionRecord, TxnId, Value};
use tcache::{ReadOutcome, SystemBuilder};
use tcache_monitor::SerializationGraph;

/// One scripted step of a randomly generated schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Update the given objects at the database.
    Update(Vec<u64>),
    /// Run a read-only transaction over the given objects through the cache.
    Read(Vec<u64>),
    /// Let time pass so in-flight invalidations are delivered.
    Advance(u64),
}

fn arb_step(objects: u64) -> impl proptest::strategy::Strategy<Value = Step> {
    prop_oneof![
        prop::collection::vec(0..objects, 1..5).prop_map(Step::Update),
        prop::collection::vec(0..objects, 1..5).prop_map(Step::Read),
        (1u64..100).prop_map(Step::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every committed read-only transaction of an unbounded T-Cache is
    /// serializable with the update history (checked with the exact
    /// serialization-graph oracle), even under 100% invalidation loss.
    #[test]
    fn unbounded_tcache_is_cache_serializable(
        steps in prop::collection::vec(arb_step(12), 1..60),
        loss in prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)],
        seed in 0u64..1000,
    ) {
        let objects = 12u64;
        let system = SystemBuilder::new()
            .unbounded_dependencies()
            .strategy(CacheStrategy::Abort)
            .invalidation_loss(loss)
            .invalidation_delay_millis(20)
            .seed(seed)
            .build();
        system.populate((0..objects).map(|i| (ObjectId(i), Value::new(0))));

        let mut sgt = SerializationGraph::new();
        let mut next_ro = 1_000_000u64;
        for step in steps {
            match step {
                Step::Update(ids) => {
                    let ids: Vec<ObjectId> = ids.into_iter().map(ObjectId).collect();
                    // Record the commit in the oracle exactly as the
                    // database installed it.
                    let before: Vec<_> = ids
                        .iter()
                        .map(|&o| (o, system.database().peek_entry(o).unwrap().version))
                        .collect();
                    let version = system.update(&ids).unwrap();
                    let mut distinct = ids.clone();
                    distinct.sort();
                    distinct.dedup();
                    let record = TransactionRecord::update_committed(
                        TxnId(version.as_u64()),
                        before,
                        distinct.into_iter().map(|o| (o, version)).collect(),
                        SimTime::ZERO,
                    );
                    sgt.add_update(&record);
                }
                Step::Read(ids) => {
                    let ids: Vec<ObjectId> = ids.into_iter().map(ObjectId).collect();
                    match system.read_transaction(&ids).unwrap() {
                        ReadOutcome::Committed(values) => {
                            next_ro += 1;
                            let reads: Vec<_> =
                                values.iter().map(|v| (v.id, v.version)).collect();
                            prop_assert!(
                                sgt.read_only_consistent(TxnId(next_ro), &reads),
                                "committed read-only transaction must be serializable: {reads:?}"
                            );
                        }
                        ReadOutcome::Aborted { .. } => {
                            // Aborting is always allowed; Theorem 1 only
                            // constrains what commits.
                        }
                    }
                }
                Step::Advance(ms) => {
                    system.advance_time(SimDuration::from_millis(ms));
                }
            }
        }
    }
}

/// The simulation-harness variant of the same claim, at a larger scale: an
/// unbounded T-Cache run never commits a transaction that the monitor's
/// (conservative) classifier counts as inconsistent beyond the classifier's
/// own false-positive allowance — and with a perfectly clustered workload it
/// commits none at all.
#[test]
fn unbounded_tcache_commits_no_inconsistent_transaction_on_clustered_workloads() {
    let result = ExperimentConfig {
        duration: SimDuration::from_secs(8),
        workload: WorkloadKind::PerfectClusters {
            objects: 500,
            cluster_size: 5,
        },
        cache: CacheKind::Unbounded {
            strategy: CacheStrategy::Abort,
        },
        seed: 9,
        ..ExperimentConfig::default()
    }
    .run();
    assert_eq!(
        result.report.committed_inconsistent, 0,
        "unbounded dependency lists must catch every inconsistency"
    );
    assert!(result.report.committed_consistent > 0);
}
