//! Reactor-transport integration tests: per-cache isolation under one
//! reactor thread, backpressure semantics of the bounded apply pipes, and
//! verdict-equivalence between the threaded and reactor planes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tcache::{DeliveryMode, SystemBuilder, TCacheSystem, TransportMode};
use tcache_monitor::{ConsistencyMonitor, TransactionClass};
use tcache_net::pipe::OverflowPolicy;
use tcache_types::{
    CacheId, ObjectId, SimDuration, Strategy, TCacheError, TransactionRecord, TxnId, Value,
    Version,
};

const OBJECTS: u64 = 50;

fn reactor_system(losses: &[f64], capacity: usize, policy: OverflowPolicy) -> TCacheSystem {
    let system = SystemBuilder::new()
        .dependency_bound(3)
        .strategy(Strategy::Abort)
        .cache_loss_rates(losses.to_vec())
        .invalidation_delay_millis(0)
        .transport(TransportMode::Reactor)
        .pipe_capacity(capacity)
        .overflow_policy(policy)
        .seed(9)
        .build();
    system.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    system
}

/// The per-cache isolation stress currently run against the threaded
/// transport, re-run through one reactor thread hosting four caches: an
/// invalidation addressed to cache 0 must never mutate caches 1..3, even
/// while reader threads hammer them concurrently.
#[test]
fn reactor_hosts_four_caches_with_per_cache_isolation() {
    // Cache 0 has a perfect link; caches 1..3 lose every invalidation, so
    // the only deliveries flowing through the reactor target cache 0.
    let system = Arc::new(reactor_system(
        &[0.0, 1.0, 1.0, 1.0],
        tcache_net::pipe::UNBOUNDED,
        OverflowPolicy::Block,
    ));
    assert_eq!(system.transport_mode(), TransportMode::Reactor);
    assert_eq!(system.cache_count(), 4);

    // Warm every cache with every object at the initial version.
    for id in 0..4u32 {
        for o in 0..OBJECTS {
            system.read_on(CacheId(id), ObjectId(o)).unwrap();
        }
    }

    // Reader threads hammer caches 1..3 while updates invalidate cache 0
    // through the reactor.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (1..4u32)
        .map(|id| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = ObjectId(n % OBJECTS);
                    n += 1;
                    system.read_on(CacheId(id), key).unwrap();
                }
            })
        })
        .collect();

    for round in 0..20u64 {
        let base = (round * 2) % (OBJECTS - 1);
        system.update(&[ObjectId(base), ObjectId(base + 1)]).unwrap();
    }
    system.advance_time(SimDuration::from_secs(1));
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }
    assert!(system.quiesce(Duration::from_secs(5)).unwrap());

    let stats = system.stats();
    // Cache 0's reactor task applied the invalidations…
    assert!(stats.per_cache[0].cache.invalidations_applied > 0);
    assert!(system.reactor_applied(CacheId(0)).unwrap() > 0);
    // …while caches 1..3 never saw one and still hold every warmed entry.
    for id in 1..4u32 {
        let node = &stats.per_cache[id as usize];
        assert_eq!(node.cache.invalidations_applied, 0, "cache {id}");
        assert_eq!(node.pipe.enqueued, 0, "cache {id}'s pipe must stay idle");
        assert_eq!(system.reactor_applied(CacheId(id)).unwrap(), 0);
        for o in 0..OBJECTS {
            let v = system.read_on(CacheId(id), ObjectId(o)).unwrap();
            assert_eq!(
                v.version,
                Version::INITIAL,
                "cache {id} must still hold the warmed entry for o{o}"
            );
        }
    }
    // One reactor thread hosted all four tasks.
    let reactor = system.reactor_stats().unwrap();
    assert_eq!(reactor.spawned, 4);
}

/// A stalled (paused) reactor task must never block commits when its pipe
/// sheds load with `DropOldest`: updates keep committing at full speed, the
/// overflow counters advance, and the backlog stays bounded by the pipe
/// capacity.
#[test]
fn stalled_reactor_task_never_blocks_commits_under_drop_oldest() {
    let capacity = 4usize;
    let system = reactor_system(&[0.0, 0.0], capacity, OverflowPolicy::DropOldest);
    // Warm cache 0 so invalidations have entries to hit.
    for o in 0..OBJECTS {
        system.read_on(CacheId(0), ObjectId(o)).unwrap();
    }
    assert!(system.quiesce(Duration::from_secs(5)).unwrap());
    let applied_before = system.reactor_applied(CacheId(0)).unwrap();

    system.pause_cache(CacheId(0)).unwrap();
    assert!(system.is_cache_paused(CacheId(0)));

    // 100 updates × 2 invalidations each flow at cache 0's wedged pipe.
    // Under DropOldest none of them may block the committing thread.
    let started = std::time::Instant::now();
    for round in 0..100u64 {
        let base = round % (OBJECTS - 1);
        system.update(&[ObjectId(base), ObjectId(base + 1)]).unwrap();
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "commits must not stall behind the paused cache"
    );
    assert_eq!(system.stats().db.updates_committed, 100);

    // The paused cache's pipe overflowed and its backlog is capped.
    let pipe = system.stats().per_cache[0].pipe;
    assert!(
        pipe.evicted > 0,
        "DropOldest must have evicted pending messages: {pipe:?}"
    );
    assert!(pipe.enqueued - pipe.evicted - pipe.received <= capacity as u64);
    // Quiescence skips the paused cache, so the system still settles.
    assert!(system.quiesce(Duration::from_secs(5)).unwrap());
    // Cache 1 (unpaused) applied everything that survived its channel.
    assert!(system.reactor_applied(CacheId(1)).unwrap() >= 200);

    // Resuming drains the bounded backlog.
    system.resume_cache(CacheId(0)).unwrap();
    assert!(system.quiesce(Duration::from_secs(5)).unwrap());
    let applied_after = system.reactor_applied(CacheId(0)).unwrap();
    assert!(
        applied_after > applied_before,
        "the resumed task must apply its remaining backlog"
    );
    let pipe = system.stats().per_cache[0].pipe;
    assert_eq!(pipe.enqueued - pipe.evicted, pipe.received);
}

/// The publish-side attribution path end to end: a cache registers a
/// *reporting* invalidation upcall backed by a bounded live pipe, commits
/// publish through it on the committing thread, and
/// `Database::publish_stats` attributes the pipe's overflow and the time
/// commits spent publishing — per cache.
#[test]
fn commit_path_publish_stats_attribute_slow_pipes_per_cache() {
    use tcache_db::{Database, DatabaseConfig, SinkReport};
    use tcache_net::{live_channel_with, UNBOUNDED};

    let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
    db.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));

    // Cache 0: healthy unbounded pipe. Cache 1: a two-slot pipe that sheds
    // the oldest pending message — the "slow cache" whose losses must show
    // up in the publisher's books.
    let mut receivers = Vec::new();
    for (i, capacity) in [(0u32, UNBOUNDED), (1u32, 2)] {
        let (tx, rx) = live_channel_with(capacity, OverflowPolicy::DropOldest);
        receivers.push(rx);
        db.register_reporting_invalidation_upcall(
            CacheId(i),
            Box::new(move |batch| {
                let report = tx.send_report(batch.iter().copied());
                SinkReport {
                    enqueued: report.enqueued as u64,
                    overflowed: report.overflowed as u64,
                    ..SinkReport::default()
                }
            }),
        );
    }
    // Nobody drains cache 1's pipe while ten 3-object commits publish.
    for round in 0..10u64 {
        let base = round % (OBJECTS - 2);
        db.execute_update(TxnId(round + 1), &vec![base, base + 1, base + 2].into())
            .unwrap();
    }

    let stats = db.publish_stats();
    assert_eq!(stats.len(), 2);
    let healthy = stats[0].1;
    let slow = stats[1].1;
    assert_eq!(healthy.batches, 10);
    assert_eq!(healthy.invalidations, 30);
    assert_eq!(healthy.enqueued, 30);
    assert_eq!(healthy.overflowed, 0);
    // The slow cache enqueued everything but evicted all except the last
    // two — 28 invalidations lost to overflow, attributed to that cache.
    assert_eq!(slow.enqueued, 30);
    assert_eq!(slow.overflowed, 28);
    assert!(slow.publish_nanos > 0, "publish time is accounted");
    assert_eq!(receivers[1].drain().len(), 2);
    assert_eq!(receivers[0].drain().len(), 30);
}

/// Modeled delivery end to end through the system facade: commits publish
/// through the database's upcalls straight into the reactor pipes, the
/// delivery tasks apply per-cache seeded loss, and `SystemStats`
/// synthesizes the channel view from the publisher + delivery counters.
#[test]
fn modeled_delivery_applies_per_cache_loss_in_the_reactor() {
    let system = SystemBuilder::new()
        .dependency_bound(3)
        .strategy(Strategy::Abort)
        .cache_loss_rates(vec![0.0, 1.0])
        .transport(TransportMode::Reactor)
        .delivery(DeliveryMode::Modeled)
        .seed(9)
        .build();
    assert_eq!(system.delivery_mode(), DeliveryMode::Modeled);
    system.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));

    // Warm both caches, then update: cache 0's entry must be invalidated,
    // cache 1's (100% loss in its delivery task) must stay stale.
    system.read_on(CacheId(0), ObjectId(1)).unwrap();
    system.read_on(CacheId(1), ObjectId(1)).unwrap();
    let v = system.update(&[ObjectId(1)]).unwrap();
    assert!(system.quiesce(Duration::from_secs(5)).unwrap());
    assert_eq!(system.read_on(CacheId(0), ObjectId(1)).unwrap().version, v);
    assert_eq!(
        system.read_on(CacheId(1), ObjectId(1)).unwrap().version,
        Version::INITIAL,
        "cache 1's delivery task drops everything, its entry stays stale"
    );

    let stats = system.stats();
    // The synthesized channel view: both caches were offered the send,
    // cache 0 delivered it, cache 1's task dropped it.
    assert_eq!(stats.per_cache[0].channel.sent, 1);
    assert_eq!(stats.per_cache[0].channel.dropped, 0);
    assert_eq!(stats.per_cache[0].channel.delivered, 1);
    assert_eq!(stats.per_cache[1].channel.sent, 1);
    assert_eq!(stats.per_cache[1].channel.dropped, 1);
    assert_eq!(stats.per_cache[1].channel.delivered, 0);
    // Delivery-task counters surface per cache too.
    assert_eq!(stats.per_cache[0].delivery.delivered, 1);
    assert_eq!(stats.per_cache[1].delivery.dropped, 1);
    assert_eq!(stats.channel.sent, 2);
    // The database publisher fed the pipes on the commit path.
    let publishes = system.database().publish_stats();
    assert_eq!(publishes.len(), 2);
    assert!(publishes.iter().all(|(_, p)| p.batches == 1 && p.enqueued == 1));
}

/// Modeled delivery with a nonzero constant latency: the update returns
/// before the invalidation lands (asynchrony is real), and quiescing waits
/// the in-flight modeled delay out, which shows up in the delay counters.
#[test]
fn modeled_delivery_sleeps_the_configured_latency() {
    use tcache_net::delivery::DeliveryModel;
    let system = SystemBuilder::new()
        .dependency_bound(3)
        .transport(TransportMode::Reactor)
        .delivery(DeliveryMode::Modeled)
        .delivery_models(vec![DeliveryModel::uniform(
            0.0,
            SimDuration::from_millis(30),
        )])
        .seed(9)
        .build();
    system.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    system.read_on(CacheId(0), ObjectId(1)).unwrap();
    let started = std::time::Instant::now();
    system.update(&[ObjectId(1)]).unwrap();
    assert!(system.quiesce(Duration::from_secs(5)).unwrap());
    assert!(
        started.elapsed() >= Duration::from_millis(30),
        "quiesce must wait out the modeled in-flight delay"
    );
    let delivery = system.stats().per_cache[0].delivery;
    assert_eq!(delivery.delivered, 1);
    assert_eq!(delivery.delay_micros, 30_000);
}

#[test]
#[should_panic(expected = "modeled delivery requires TransportMode::Reactor")]
fn modeled_delivery_without_a_reactor_is_rejected() {
    let _ = SystemBuilder::new()
        .delivery(DeliveryMode::Modeled)
        .transport(TransportMode::Threaded)
        .build();
}

/// Driving the same seeded script through a threaded and a reactor system
/// must produce identical per-read observations and identical
/// `ConsistencyMonitor` verdicts: the reactor changes *where* invalidations
/// are applied, never *what* the caches serve.
#[test]
fn threaded_and_reactor_produce_identical_monitor_verdicts() {
    type Trace = (
        Vec<TransactionClass>,
        Vec<(CacheId, Vec<(ObjectId, Version)>, bool)>,
        Vec<tcache_monitor::MonitorReport>,
    );

    let run = |mode: TransportMode| -> Trace {
        let system = SystemBuilder::new()
            .dependency_bound(3)
            .strategy(Strategy::Abort)
            .cache_loss_rates(vec![0.0, 0.3, 0.6, 1.0])
            .invalidation_delay_millis(5)
            .transport(mode)
            .seed(42)
            .build();
        system.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
        let cache_ids: Vec<CacheId> = system.cache_ids().collect();

        let mut monitor = ConsistencyMonitor::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut next_txn = 1u64;
        let mut classes = Vec::new();
        let mut observations = Vec::new();

        for _ in 0..300 {
            let base = rng.gen_range(0..OBJECTS - 1);
            let txn = TxnId(1_000_000 + next_txn);
            next_txn += 1;
            let commit = system
                .database()
                .execute_update(txn, &vec![base, base + 1].into())
                .unwrap();
            monitor.record_update_commit(&TransactionRecord::update_committed(
                txn,
                commit.reads.clone(),
                commit.written.clone(),
                system.now(),
            ));
            system.publish_invalidations(&commit);

            for &cache_id in &cache_ids {
                let read_base = rng.gen_range(0..OBJECTS - 1);
                let keys = [ObjectId(read_base), ObjectId(read_base + 1)];
                let txn = TxnId(1_000_000 + next_txn);
                next_txn += 1;
                let cache = system.cache(cache_id).unwrap();
                let now = system.now();
                let mut observed = Vec::with_capacity(keys.len());
                let mut committed = true;
                for (i, &key) in keys.iter().enumerate() {
                    match cache.read(now, txn, key, i + 1 == keys.len()) {
                        Ok(v) => observed.push((v.id, v.version)),
                        Err(TCacheError::InconsistencyAbort { .. }) => {
                            committed = false;
                            break;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                classes.push(monitor.record_read_only_from(cache_id, &observed, committed));
                observations.push((cache_id, observed, committed));
            }
            system.advance_time(SimDuration::from_millis(10));
        }
        let reports = cache_ids
            .iter()
            .map(|&id| monitor.cache_report(id))
            .collect();
        (classes, observations, reports)
    };

    let threaded = run(TransportMode::Threaded);
    let reactor = run(TransportMode::Reactor);
    assert_eq!(
        threaded.1, reactor.1,
        "both transports must serve identical observations"
    );
    assert_eq!(
        threaded.0, reactor.0,
        "both transports must yield identical verdict sequences"
    );
    assert_eq!(threaded.2, reactor.2, "per-cache reports must match");
    // The script must actually exercise the predicates, otherwise the
    // equivalence is vacuous.
    let lossiest = threaded.2.last().unwrap();
    assert!(lossiest.committed_inconsistent + lossiest.aborted_total() > 0);
}
