//! End-to-end integration tests spanning the whole stack: database, channel,
//! cache, monitor and harness.

use tcache::prelude::*;
use tcache_sim::experiment::{CacheKind, ExperimentConfig, WorkloadKind};
use tcache::types::{ObjectId, SimDuration, Strategy};
use tcache::workload::graph::GraphKind;

fn clustered_config(cache: CacheKind, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        duration: SimDuration::from_secs(8),
        workload: WorkloadKind::PerfectClusters {
            objects: 1000,
            cluster_size: 5,
        },
        cache,
        seed,
        ..ExperimentConfig::default()
    }
}

#[test]
fn tcache_eliminates_nearly_all_inconsistency_on_perfect_clusters() {
    let plain = clustered_config(CacheKind::Plain, 3).run();
    let tcache = clustered_config(
        CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Abort,
        },
        3,
    )
    .run();
    assert!(
        plain.inconsistency_ratio() > 0.10,
        "the plain cache must show substantial inconsistency ({:.3})",
        plain.inconsistency_ratio()
    );
    assert!(
        tcache.inconsistency_ratio() < 0.01,
        "T-Cache with cluster-sized dependency lists detects essentially everything ({:.4})",
        tcache.inconsistency_ratio()
    );
    assert!(tcache.detection_ratio() > 0.95);
    // The shielding role of the cache is preserved: hit ratios match.
    assert!((tcache.hit_ratio() - plain.hit_ratio()).abs() < 0.05);
}

#[test]
fn retry_keeps_more_transactions_alive_than_abort() {
    let abort = clustered_config(
        CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Abort,
        },
        5,
    )
    .run();
    let retry = clustered_config(
        CacheKind::TCache {
            dependency_bound: 5,
            strategy: Strategy::Retry,
        },
        5,
    )
    .run();
    assert!(retry.abort_ratio() < abort.abort_ratio());
    assert!(retry.consistent_commit_ratio() > abort.consistent_commit_ratio());
    // The price of RETRY is extra database reads.
    assert!(retry.cache.retries > 0);
}

#[test]
fn realistic_workloads_match_the_paper_shape() {
    let duration = SimDuration::from_secs(10);
    let mut detections = Vec::new();
    for kind in [GraphKind::RetailAffinity, GraphKind::SocialNetwork] {
        let result = ExperimentConfig {
            duration,
            workload: WorkloadKind::Graph {
                kind,
                source_nodes: 4000,
                sampled_nodes: 1000,
            },
            cache: CacheKind::TCache {
                dependency_bound: 3,
                strategy: Strategy::Abort,
            },
            seed: 17,
            ..ExperimentConfig::default()
        }
        .run();
        detections.push((kind, result.detection_ratio()));
    }
    let retail = detections[0].1;
    let social = detections[1].1;
    assert!(
        retail > social,
        "the more clustered retail topology must enjoy better detection ({retail:.2} vs {social:.2})"
    );
    assert!(retail > 0.4, "retail detection should be substantial ({retail:.2})");
    assert!(social > 0.1, "social detection should be non-trivial ({social:.2})");
}

#[test]
fn embedded_system_retry_repairs_stale_current_reads() {
    // Drive the embedded TCacheSystem with a schedule in which the stale
    // object is always the one being read (never one already returned), so
    // the RETRY strategy must repair every violation with a read-through.
    let system = SystemBuilder::new()
        .dependency_bound(3)
        .strategy(Strategy::Retry)
        .invalidation_loss(1.0)
        .seed(2)
        .build();
    system.populate((0..200u64).map(|i| (ObjectId(i), Value::new(0))));

    for round in 0..50u64 {
        let a = ObjectId(round * 2);
        let b = ObjectId(round * 2 + 1);
        // Warm only `a`, so after the update (whose invalidations are all
        // lost) the cache holds a stale `a` and no copy of `b`.
        system.read(a).unwrap();
        let version = system.update(&[a, b]).unwrap();
        // Reading `b` first fetches the fresh entry whose dependency list
        // names `a` at the new version; the subsequent read of the stale `a`
        // violates Equation 2 and is repaired by a read-through.
        match system.read_transaction(&[b, a]).unwrap() {
            ReadOutcome::Committed(values) => {
                for v in values {
                    assert_eq!(v.version, version, "RETRY returns current data");
                }
            }
            ReadOutcome::Aborted { violating_object } => {
                panic!("RETRY should have repaired the read of {violating_object}");
            }
        }
    }
    let stats = system.stats();
    assert!(stats.cache.retries > 0, "the lossy channel must force read-throughs");
    assert_eq!(stats.channel.delivered, 0, "every invalidation was dropped");
}

#[test]
fn multi_shard_database_preserves_behaviour() {
    let system = SystemBuilder::new()
        .shards(4)
        .dependency_bound(3)
        .strategy(Strategy::Abort)
        .invalidation_loss(0.0)
        .invalidation_delay_millis(0)
        .build();
    system.populate((0..40u64).map(|i| (ObjectId(i), Value::new(0))));
    for round in 0..30u64 {
        let objects: Vec<ObjectId> = (0..5).map(|i| ObjectId((round * 3 + i * 7) % 40)).collect();
        system.update(&objects).unwrap();
        let outcome = system.read_transaction(&objects).unwrap();
        assert!(outcome.is_committed(), "reliable channel keeps reads consistent");
    }
    assert!(system.stats().db.updates_committed == 30);
}
