//! Crash faults racing the database's two-phase commit: a cache crashing
//! (and restarting) between prepare and commit must never leak shard
//! locks or leave a transaction unresolved. The cache fault plane lives
//! entirely on the invalidation side — severed links discard publishes —
//! so the commit path has nothing to wait on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tcache::{SystemBuilder, TCacheSystem, TransportMode};
use tcache_net::pipe::OverflowPolicy;
use tcache_types::{CacheId, ObjectId, SimTime, Strategy, Value};

const OBJECTS: u64 = 40;

fn faulty_system(caches: usize) -> Arc<TCacheSystem> {
    let system = SystemBuilder::new()
        .dependency_bound(3)
        .strategy(Strategy::Abort)
        .shards(4)
        .caches(caches)
        .transport(TransportMode::Reactor)
        .pipe_capacity(2)
        .overflow_policy(OverflowPolicy::Block)
        .seed(11)
        .build();
    system.populate((0..OBJECTS).map(|i| (ObjectId(i), Value::new(0))));
    Arc::new(system)
}

/// One updater thread racing one crash/restart churn thread. The pipe is a
/// two-slot `Block` pipe — the hard-backpressure configuration — so if a
/// crashed cache's deliveries could still block the commit path, this test
/// would wedge. Every transaction must resolve and every shard lock must
/// be released.
#[test]
fn crash_between_prepare_and_commit_resolves_and_leaks_no_locks() {
    let system = faulty_system(1);
    // Warm the cache so invalidations have entries to chase.
    for o in 0..OBJECTS {
        system.read(ObjectId(o)).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                system.crash_cache(CacheId(0), SimTime::ZERO).unwrap();
                std::thread::yield_now();
                system.restart_cache(CacheId(0)).unwrap();
                flips += 1;
            }
            flips
        })
    };

    let mut committed = 0u64;
    for round in 0..400u64 {
        // Multi-object updates span shards, so 2PC prepares on several
        // shards before committing — the window the crash churn races.
        let base = round % (OBJECTS - 2);
        system
            .update(&[ObjectId(base), ObjectId(base + 1), ObjectId(base + 2)])
            .unwrap();
        committed += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let flips = churn.join().unwrap();

    assert_eq!(committed, 400, "every update transaction resolved");
    assert_eq!(system.stats().db.updates_committed, 400);
    assert_eq!(
        system.database().locked_objects(),
        0,
        "no shard lock survives the crash churn"
    );
    assert!(flips > 0, "the churn thread actually crashed the cache");
    // Leave the system healthy for teardown.
    if system.cache(CacheId(0)).unwrap().is_crashed() {
        system.restart_cache(CacheId(0)).unwrap();
    }
}

/// The 8-thread stress variant: four updater threads, two crash-churn
/// threads (over two different caches), and two reader threads hammering
/// the remaining healthy caches — all over a four-shard database with
/// two-slot `Block` pipes.
#[test]
fn eight_thread_crash_stress_keeps_the_database_consistent() {
    let system = faulty_system(4);
    for id in 0..4u32 {
        for o in 0..OBJECTS {
            system.read_on(CacheId(id), ObjectId(o)).unwrap();
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let total_commits = Arc::new(AtomicU64::new(0));

    let churners: Vec<_> = [CacheId(0), CacheId(1)]
        .into_iter()
        .map(|id| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            // Test-only churn pacing on wall time.
            #[allow(clippy::disallowed_methods)]
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    system.crash_cache(id, SimTime::ZERO).unwrap();
                    std::thread::sleep(Duration::from_micros(100));
                    system.restart_cache(id).unwrap();
                    std::thread::sleep(Duration::from_micros(100));
                }
            })
        })
        .collect();

    let readers: Vec<_> = [CacheId(2), CacheId(3)]
        .into_iter()
        .map(|id| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    system.read_on(id, ObjectId(n % OBJECTS)).unwrap();
                    n += 1;
                }
            })
        })
        .collect();

    let updaters: Vec<_> = (0..4u64)
        .map(|lane| {
            let system = Arc::clone(&system);
            let total = Arc::clone(&total_commits);
            std::thread::spawn(move || {
                for round in 0..150u64 {
                    let base = (lane * 7 + round) % (OBJECTS - 1);
                    // Concurrent updaters can collide on shard locks; a
                    // `PrepareRejected` abort is the 2PC protocol working,
                    // not a fault — retry until this lane's update lands.
                    loop {
                        match system.update(&[ObjectId(base), ObjectId(base + 1)]) {
                            Ok(_) => break,
                            Err(tcache_types::TCacheError::UpdateAborted { .. }) => {
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected update error: {e}"),
                        }
                    }
                    total.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    for updater in updaters {
        updater.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for thread in churners.into_iter().chain(readers) {
        thread.join().unwrap();
    }

    assert_eq!(total_commits.load(Ordering::Relaxed), 600);
    assert_eq!(system.stats().db.updates_committed, 600);
    assert_eq!(system.database().locked_objects(), 0, "no leaked locks");
    // Restart anything still down so teardown sees a healthy system.
    for id in [CacheId(0), CacheId(1)] {
        if system.cache(id).unwrap().is_crashed() {
            system.restart_cache(id).unwrap();
        }
    }
    assert!(system.quiesce(Duration::from_secs(10)).unwrap());
}
