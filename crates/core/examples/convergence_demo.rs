//! Convergence demo: how quickly T-Cache adapts when the workload's cluster
//! structure appears or drifts (Figures 4 and 5 of the paper).
//!
//! Run with `cargo run --release -p tcache --example convergence_demo`.

use tcache_sim::figures;
use tcache::types::{SimDuration, SimTime};

fn main() {
    // Figure 4: uniformly random accesses until t = 29 s, perfectly
    // clustered afterwards (scaled down from the paper's 58 s switch point
    // so the example finishes quickly).
    let switch = SimTime::from_secs(29);
    let points = figures::fig4(SimDuration::from_secs(60), switch, 5);
    println!("cluster formation at t = {switch} (rates in transactions/second)");
    println!("{:>8} {:>12} {:>14} {:>10}", "time[s]", "consistent", "inconsistent", "aborted");
    for p in &points {
        println!(
            "{:>8.0} {:>12.1} {:>14.1} {:>10.1}{}",
            p.time_secs,
            p.consistent_rate,
            p.inconsistent_rate,
            p.aborted_rate,
            if (p.time_secs - switch.as_secs_f64()).abs() < 1.0 {
                "   <- accesses become clustered"
            } else {
                ""
            }
        );
    }

    println!();

    // Figure 5: perfectly clustered accesses whose clusters shift by one
    // object every 20 seconds (scaled down from the paper's 3 minutes).
    let shift_every = SimDuration::from_secs(20);
    let series = figures::fig5(SimDuration::from_secs(80), shift_every, 5);
    println!("drifting clusters (shift every {shift_every}):");
    println!("{:>8} {:>16}", "time[s]", "inconsistency[%]");
    for p in &series {
        let marker = if p.time_secs > 0.0 && (p.time_secs % shift_every.as_secs_f64()) < 5.0 {
            "   <- shift"
        } else {
            ""
        };
        println!("{:>8.0} {:>16.2}{marker}", p.time_secs, p.inconsistency_pct);
    }

    println!();
    println!("After each change the dependency lists are briefly outdated; LRU replacement");
    println!("pushes the stale entries out and the inconsistency rate converges back down.");
}
