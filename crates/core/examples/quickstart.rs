//! Quickstart: build a T-Cache system, update related objects, read them
//! back through the edge cache, and watch the protocol catch a stale read.
//!
//! Run with `cargo run -p tcache --example quickstart`.

use tcache::prelude::*;

fn main() {
    // A system whose invalidation channel loses every message — the
    // worst case the paper's protocol is designed to mitigate.
    let system = SystemBuilder::new()
        .dependency_bound(3)
        .strategy(Strategy::Abort)
        .invalidation_loss(1.0)
        .seed(1)
        .build();

    // A tiny product catalogue: a toy train (object 0), its tracks
    // (object 1), and an unrelated book (object 2).
    system.populate((0..3u64).map(|i| (ObjectId(i), Value::new(0))));

    // Warm the cache with the train and the book (but not the tracks), so
    // the cache holds their initial versions.
    for object in [0u64, 2] {
        let value = system.read(ObjectId(object)).expect("object exists");
        println!("warmed {} at {}", value.id, value.version);
    }

    // The vendor restocks the train and its tracks in one transaction.
    let version = system
        .update(&[ObjectId(0), ObjectId(1)])
        .expect("update commits");
    println!("restock transaction committed at {version}");

    // Because every invalidation was lost, the cache still holds the old
    // train. A client reading the stale train (a cache hit!) together with
    // the tracks (a miss served fresh from the database, whose dependency
    // list names the train at the new version) is exactly the paper's
    // motivating anomaly. T-Cache's dependency lists catch it.
    match system
        .read_transaction(&[ObjectId(0), ObjectId(1)])
        .expect("no backend error")
    {
        ReadOutcome::Committed(values) => {
            println!("read committed: {values:?}");
        }
        ReadOutcome::Aborted { violating_object } => {
            println!("read aborted: {violating_object} was stale — retrying");
            // The retried transaction misses on the evicted/stale object and
            // commits with consistent data (with the ABORT strategy the stale
            // entry is still cached, so a real application would typically
            // use EVICT or RETRY; here we just demonstrate the detection).
        }
    }

    // The unrelated book was never part of the update, so reading it
    // together with the train is still consistent from the cache's point of
    // view — no false alarms for unrelated objects.
    let outcome = system
        .read_transaction(&[ObjectId(2)])
        .expect("no backend error");
    assert!(outcome.is_committed());

    let stats = system.stats();
    println!(
        "cache hits: {}, misses: {}, aborts: {}",
        stats.cache.hits, stats.cache.misses, stats.cache.txns_aborted
    );
}
