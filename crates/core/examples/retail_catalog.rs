//! Retail catalogue scenario: the paper's Amazon-style workload.
//!
//! Generates a clustered product-affinity topology, runs mixed update and
//! read-only traffic through the full simulation harness, and compares a
//! consistency-unaware cache against T-Cache with dependency lists of
//! length 3 — the configuration behind the paper's headline claim.
//!
//! Run with `cargo run --release -p tcache --example retail_catalog`.

use tcache_sim::experiment::{CacheKind, ExperimentConfig, WorkloadKind};
use tcache::types::{SimDuration, Strategy};
use tcache::workload::graph::GraphKind;

fn main() {
    let duration = SimDuration::from_secs(30);
    let workload = WorkloadKind::Graph {
        kind: GraphKind::RetailAffinity,
        source_nodes: 4000,
        sampled_nodes: 1000,
    };

    println!("retail catalogue workload, {duration} of simulated traffic");
    println!("update clients: 100 txn/s, read-only clients: 500 txn/s, 20% of invalidations lost");
    println!();

    let plain = ExperimentConfig {
        duration,
        workload,
        cache: CacheKind::Plain,
        seed: 11,
        ..ExperimentConfig::default()
    }
    .run();

    println!(
        "consistency-unaware cache: {:5.2}% of committed read-only transactions were inconsistent (hit ratio {:.3})",
        plain.inconsistency_ratio() * 100.0,
        plain.hit_ratio()
    );

    for (label, strategy) in [
        ("ABORT", Strategy::Abort),
        ("EVICT", Strategy::Evict),
        ("RETRY", Strategy::Retry),
    ] {
        let result = ExperimentConfig {
            duration,
            workload,
            cache: CacheKind::TCache {
                dependency_bound: 3,
                strategy,
            },
            seed: 11,
            ..ExperimentConfig::default()
        }
        .run();
        println!(
            "T-Cache (k=3, {label:5}): {:5.2}% inconsistent, {:5.2}% aborted, detection {:5.1}%, hit ratio {:.3}",
            result.inconsistency_ratio() * 100.0,
            result.abort_ratio() * 100.0,
            result.detection_ratio() * 100.0,
            result.hit_ratio()
        );
    }

    println!();
    println!("T-Cache keeps the hit ratio of the plain cache while detecting most of the");
    println!("inconsistencies that 20% invalidation loss would otherwise expose to clients.");
}
