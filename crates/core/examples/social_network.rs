//! Social-network scenario: the paper's Orkut-style workload.
//!
//! Shows how the dependency-list bound trades memory for consistency on a
//! less-clustered topology: the sweep mirrors Figure 7c of the paper.
//!
//! Run with `cargo run --release -p tcache --example social_network`.

use tcache_sim::experiment::{CacheKind, ExperimentConfig, WorkloadKind};
use tcache::types::{SimDuration, Strategy};
use tcache::workload::graph::{generators, metrics, GraphKind};

fn main() {
    // First, show what the synthetic stand-in topology looks like.
    let graph = generators::generate(GraphKind::SocialNetwork, 4000, 23);
    println!(
        "social-network topology: {} nodes, {} edges, average degree {:.1}, clustering coefficient {:.3}",
        graph.node_count(),
        graph.edge_count(),
        metrics::average_degree(&graph),
        metrics::average_clustering_coefficient(&graph)
    );
    println!();

    let duration = SimDuration::from_secs(20);
    let workload = WorkloadKind::Graph {
        kind: GraphKind::SocialNetwork,
        source_nodes: 4000,
        sampled_nodes: 1000,
    };

    println!("dependency-list bound sweep (ABORT strategy, 20% invalidation loss):");
    println!("{:>6} {:>14} {:>12} {:>10}", "bound", "inconsistent%", "detected%", "hit ratio");
    for bound in 0..=5usize {
        let result = ExperimentConfig {
            duration,
            workload,
            cache: CacheKind::TCache {
                dependency_bound: bound,
                strategy: Strategy::Abort,
            },
            seed: 23,
            ..ExperimentConfig::default()
        }
        .run();
        println!(
            "{bound:>6} {:>14.2} {:>12.1} {:>10.3}",
            result.inconsistency_ratio() * 100.0,
            result.detection_ratio() * 100.0,
            result.hit_ratio()
        );
    }

    println!();
    println!("Even on the less-clustered social topology a handful of dependency entries");
    println!("per object removes a large share of the user-visible inconsistencies without");
    println!("affecting the cache hit ratio.");
}
