//! Strategy tuning: choosing between ABORT, EVICT and RETRY, and between
//! dependency-list bounds, using the embedded `TCacheSystem` API directly
//! (no simulation harness).
//!
//! Run with `cargo run --release -p tcache --example strategy_tuning`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcache::prelude::*;

/// Drives a small clustered workload against one system configuration and
/// reports how the cache behaved.
fn drive(strategy: Strategy, bound: usize, loss: f64) -> (f64, f64, f64) {
    let system = SystemBuilder::new()
        .dependency_bound(bound)
        .strategy(strategy)
        .invalidation_loss(loss)
        .invalidation_delay_millis(5)
        .seed(3)
        .build();
    let objects: u64 = 500;
    let cluster = 5u64;
    system.populate((0..objects).map(|i| (ObjectId(i), Value::new(0))));

    let mut rng = StdRng::seed_from_u64(9);
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for round in 0..4_000u64 {
        let head = rng.gen_range(0..objects / cluster) * cluster;
        let members: Vec<ObjectId> = (0..cluster).map(|i| ObjectId(head + i)).collect();
        if round % 6 == 0 {
            // One in six transactions is an update of the whole cluster.
            system.update(&members).expect("update commits");
        } else {
            match system.read_transaction(&members).expect("backend ok") {
                ReadOutcome::Committed(_) => committed += 1,
                ReadOutcome::Aborted { .. } => aborted += 1,
            }
        }
    }
    let stats = system.stats();
    let total = (committed + aborted) as f64;
    (
        aborted as f64 / total * 100.0,
        stats.cache.hit_ratio(),
        stats.cache.retries as f64,
    )
}

fn main() {
    println!("clustered workload, 20% invalidation loss, dependency bound 3");
    println!("{:>8} {:>10} {:>10} {:>12}", "strategy", "aborted%", "hit ratio", "read-throughs");
    for strategy in [Strategy::Abort, Strategy::Evict, Strategy::Retry] {
        let (aborted, hit, retries) = drive(strategy, 3, 0.2);
        println!("{strategy:>8} {aborted:>10.2} {hit:>10.3} {retries:>12.0}");
    }

    println!();
    println!("dependency-bound sweep with the RETRY strategy:");
    println!("{:>6} {:>10} {:>10}", "bound", "aborted%", "hit ratio");
    for bound in [0usize, 1, 2, 3, 5] {
        let (aborted, hit, _) = drive(Strategy::Retry, bound, 0.2);
        println!("{bound:>6} {aborted:>10.2} {hit:>10.3}");
    }

    println!();
    println!("RETRY converts most detections into read-throughs (extra database reads)");
    println!("instead of aborts; EVICT keeps future transactions from tripping over the");
    println!("same stale entry; ABORT touches nothing beyond the failing transaction.");
}
