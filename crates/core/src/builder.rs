//! Builder for [`TCacheSystem`].

use crate::system::{SystemWiring, TCacheSystem};
use crate::transport::{DeliveryMode, RetryPolicy, TransportMode};
use std::sync::Arc;
use tcache_cache::{CacheReadPath, EdgeCache};
use tcache_db::{Database, DatabaseConfig, ReadPath};
use tcache_net::delivery::DeliveryModel;
use tcache_net::fanout::{CacheLink, InvalidationFanout};
use tcache_net::pipe::OverflowPolicy;
use tcache_types::{
    CacheId, CachePolicyConfig, DependencyBound, RecoveryPolicy, SimDuration, Strategy,
};

/// Configures and builds a [`TCacheSystem`].
///
/// ```
/// use tcache::SystemBuilder;
/// use tcache_types::Strategy;
///
/// let system = SystemBuilder::new()
///     .dependency_bound(5)
///     .strategy(Strategy::Evict)
///     .invalidation_loss(0.2)
///     .invalidation_delay_millis(50)
///     .build();
/// assert_eq!(system.edge_cache().config().dependency_bound.limit(), 5);
/// ```
///
/// Multi-cache deployments host several edge caches over the same database,
/// each with its own independently seeded invalidation channel:
///
/// ```
/// use tcache::SystemBuilder;
///
/// let system = SystemBuilder::new()
///     .cache_loss_rates(vec![0.0, 0.1, 0.2, 0.4])
///     .build();
/// assert_eq!(system.cache_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemBuilder {
    dependency_bound: DependencyBound,
    strategy: Strategy,
    shards: usize,
    caches: usize,
    per_cache_loss: Option<Vec<f64>>,
    invalidation_loss: f64,
    invalidation_delay: SimDuration,
    tick: SimDuration,
    seed: u64,
    transport: TransportMode,
    delivery: DeliveryMode,
    delivery_models: Option<Vec<DeliveryModel>>,
    cache_policy: Option<CachePolicyConfig>,
    pipe_capacity: usize,
    overflow_policy: OverflowPolicy,
    db_read_path: ReadPath,
    cache_read_path: CacheReadPath,
    invalidation_log_capacity: usize,
    recovery_policy: RecoveryPolicy,
    publish_retry: RetryPolicy,
    cache_parents: Option<Vec<Option<CacheId>>>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            dependency_bound: DependencyBound::Bounded(3),
            strategy: Strategy::Retry,
            shards: 1,
            caches: 1,
            per_cache_loss: None,
            invalidation_loss: 0.0,
            invalidation_delay: SimDuration::from_millis(50),
            tick: SimDuration::from_millis(1),
            seed: 0,
            transport: TransportMode::Threaded,
            delivery: DeliveryMode::Clocked,
            delivery_models: None,
            cache_policy: None,
            pipe_capacity: usize::MAX,
            overflow_policy: OverflowPolicy::Block,
            db_read_path: ReadPath::default(),
            cache_read_path: CacheReadPath::default(),
            invalidation_log_capacity: DatabaseConfig::default().invalidation_log_capacity,
            recovery_policy: RecoveryPolicy::None,
            publish_retry: RetryPolicy::default(),
            cache_parents: None,
        }
    }
}

/// The parent map of a regular two-tier topology: `roots` root caches
/// (indices `0..roots`) followed by `roots × leaves_per_root` leaf caches
/// assigned to their parents round-robin — leaf `i` subscribes through
/// root `i % roots`. Feed the result to
/// [`SystemBuilder::cache_parents`]; the total cache count is
/// `roots + roots × leaves_per_root`.
pub fn two_tier_parents(roots: usize, leaves_per_root: usize) -> Vec<Option<CacheId>> {
    assert!(roots > 0, "a tree needs at least one root");
    let mut parents = vec![None; roots];
    for leaf in 0..roots * leaves_per_root {
        parents.push(Some(CacheId((leaf % roots) as u32)));
    }
    parents
}

impl SystemBuilder {
    /// Starts a builder with the defaults: dependency bound 3, RETRY
    /// strategy, a single shard, one cache, a reliable channel with 50 ms
    /// delay.
    pub fn new() -> Self {
        SystemBuilder::default()
    }

    /// Bounds the dependency lists stored with every object.
    pub fn dependency_bound(mut self, bound: usize) -> Self {
        self.dependency_bound = DependencyBound::Bounded(bound);
        self
    }

    /// Uses unbounded dependency lists (the Theorem 1 configuration).
    pub fn unbounded_dependencies(mut self) -> Self {
        self.dependency_bound = DependencyBound::Unbounded;
        self
    }

    /// Chooses the reaction to detected inconsistencies.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Number of database shards (two-phase commit spans them).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a database needs at least one shard");
        self.shards = shards;
        self
    }

    /// Number of edge caches hosted over the database. Every cache gets its
    /// own invalidation channel at the system-wide loss rate (use
    /// [`SystemBuilder::cache_loss_rates`] for heterogeneous links).
    ///
    /// # Panics
    /// Panics if `caches` is zero.
    pub fn caches(mut self, caches: usize) -> Self {
        assert!(caches > 0, "a system needs at least one cache");
        self.caches = caches;
        self.per_cache_loss = None;
        self
    }

    /// Deploys one cache per entry with the given per-cache invalidation
    /// loss rates (each clamped to `[0, 1]`), overriding
    /// [`SystemBuilder::caches`] and [`SystemBuilder::invalidation_loss`].
    ///
    /// # Panics
    /// Panics if `losses` is empty.
    pub fn cache_loss_rates(mut self, losses: Vec<f64>) -> Self {
        assert!(!losses.is_empty(), "a system needs at least one cache");
        self.caches = losses.len();
        self.per_cache_loss = Some(losses.into_iter().map(|l| l.clamp(0.0, 1.0)).collect());
        self
    }

    /// Fraction of invalidations lost by every cache's channel (clamped to
    /// `[0, 1]`).
    pub fn invalidation_loss(mut self, loss: f64) -> Self {
        self.invalidation_loss = loss.clamp(0.0, 1.0);
        self
    }

    /// One-way delay of invalidations, in milliseconds.
    pub fn invalidation_delay_millis(mut self, millis: u64) -> Self {
        self.invalidation_delay = SimDuration::from_millis(millis);
        self
    }

    /// How far the virtual clock advances per operation.
    pub fn tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// Seed for the channels' loss randomness; each cache's channel seed is
    /// derived from `(seed, CacheId)`, so runs are reproducible and a
    /// cache's loss pattern does not depend on how many caches are deployed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects how delivered invalidations are applied to the caches:
    /// synchronously on the driving thread ([`TransportMode::Threaded`],
    /// the default) or through per-cache bounded pipes drained by one
    /// shared reactor thread ([`TransportMode::Reactor`]).
    pub fn transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Selects where the unreliable-link model runs:
    /// [`DeliveryMode::Clocked`] (the default) drops and delays messages in
    /// the virtual-time discrete-event channels, while
    /// [`DeliveryMode::Modeled`] wires the database's commit-path upcalls
    /// straight into each cache's reactor pipe and lets the cache's
    /// delivery task apply per-cache seeded loss / latency models in
    /// wall-clock time — the live execution plane.
    ///
    /// [`SystemBuilder::build`] panics if `Modeled` is combined with
    /// [`TransportMode::Threaded`]: the modeled plane *is* the reactor's
    /// delivery tasks.
    pub fn delivery(mut self, mode: DeliveryMode) -> Self {
        self.delivery = mode;
        self
    }

    /// Deploys one cache per entry with an explicit per-cache
    /// [`DeliveryModel`] (loss + latency, applied by the cache's reactor
    /// delivery task under [`DeliveryMode::Modeled`]), overriding
    /// [`SystemBuilder::caches`] / [`SystemBuilder::cache_loss_rates`].
    /// Without this knob, modeled delivery derives each cache's model from
    /// the configured loss rates and invalidation delay.
    ///
    /// # Panics
    /// Panics if `models` is empty.
    pub fn delivery_models(mut self, models: Vec<DeliveryModel>) -> Self {
        assert!(!models.is_empty(), "a system needs at least one cache");
        self.caches = models.len();
        self.per_cache_loss = None;
        self.delivery_models = Some(models);
        self
    }

    /// Overrides the cache policy wholesale (plain / TTL baselines, exotic
    /// strategy mixes), instead of deriving it from
    /// [`SystemBuilder::dependency_bound`] and
    /// [`SystemBuilder::strategy`]. The database's dependency bound follows
    /// the policy's.
    pub fn cache_policy(mut self, policy: CachePolicyConfig) -> Self {
        self.cache_policy = Some(policy);
        self
    }

    /// Bounds each cache's apply pipe (reactor mode) to `capacity`
    /// in-flight invalidations; clamped to at least 1. The default is
    /// unbounded.
    pub fn pipe_capacity(mut self, capacity: usize) -> Self {
        self.pipe_capacity = capacity.max(1);
        self
    }

    /// What a full apply pipe does with an incoming invalidation (reactor
    /// mode): block the publisher, drop the newest or drop the oldest.
    /// `Block` is hard backpressure — a wedged cache behind a full pipe
    /// blocks the publishing thread until the cache drains (see
    /// [`TCacheSystem::pause_cache`](crate::TCacheSystem::pause_cache)).
    pub fn overflow_policy(mut self, policy: OverflowPolicy) -> Self {
        self.overflow_policy = policy;
        self
    }

    /// Bounds the database's in-memory invalidation log (the replay window
    /// recovering caches catch up from; older entries force a snapshot
    /// resync). Clamped to at least 1.
    pub fn invalidation_log_capacity(mut self, capacity: usize) -> Self {
        self.invalidation_log_capacity = capacity.max(1);
        self
    }

    /// Sets every cache's recovery policy: how it reacts to gaps in its
    /// sequence-numbered invalidation stream, how long a partitioned cache
    /// may serve stale data before degrading to pass-through reads, and
    /// whether healing a partition resyncs from the invalidation log. The
    /// default, [`RecoveryPolicy::None`], keeps the historical behaviour
    /// (stale data persists until an invalidation or eviction removes it).
    pub fn recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery_policy = policy;
        self
    }

    /// How the publish path retries sends to a severed (crashed /
    /// partitioned) cache under [`DeliveryMode::Modeled`]: up to
    /// `budget` attempts with capped exponential backoff before the batch
    /// is abandoned. The default budget of 0 discards immediately, which
    /// keeps the commit path free of wall-clock sleeps (what the
    /// deterministic simulation planes require).
    pub fn publish_retry(mut self, retry: RetryPolicy) -> Self {
        self.publish_retry = retry;
        self
    }

    /// Arranges the caches into a two-tier invalidation tree: entry `i`
    /// names the *root* cache that leaf cache `i` subscribes through
    /// (`None` makes cache `i` a root). The database then publishes each
    /// committed batch only to the roots, whose delivery tasks relay what
    /// they apply into their children's pipes — shrinking the root
    /// publisher's fan-out from "every cache" to "every root" (see
    /// [`two_tier_parents`] for the regular layout). Requires
    /// [`DeliveryMode::Modeled`]; the tree is one level deep (a parent
    /// must itself be a root).
    pub fn cache_parents(mut self, parents: Vec<Option<CacheId>>) -> Self {
        self.cache_parents = Some(parents);
        self
    }

    /// Selects the backend store's read path: the seqlock-validated
    /// optimistic path ([`ReadPath::Optimistic`], the default — cache
    /// misses never block behind installing writers) or the historical
    /// lock-per-read baseline ([`ReadPath::Locked`], kept for comparison
    /// experiments such as `bench_hotpath`'s `db_read_path` sweep).
    pub fn db_read_path(mut self, read_path: ReadPath) -> Self {
        self.db_read_path = read_path;
        self
    }

    /// Selects every edge cache's storage read path: the per-stripe-lock
    /// baseline ([`CacheReadPath::Locked`], the default) or the
    /// epoch-reclaimed lock-free hit path ([`CacheReadPath::Epoch`], kept
    /// selectable for differential testing and `bench_hotpath`'s
    /// `cache_read_path` rows).
    pub fn cache_read_path(mut self, read_path: CacheReadPath) -> Self {
        self.cache_read_path = read_path;
        self
    }

    /// Builds the system.
    ///
    /// # Panics
    /// Panics if [`DeliveryMode::Modeled`] is combined with
    /// [`TransportMode::Threaded`].
    pub fn build(self) -> TCacheSystem {
        assert!(
            self.delivery == DeliveryMode::Clocked || self.transport == TransportMode::Reactor,
            "modeled delivery requires TransportMode::Reactor (the model runs in the reactor's delivery tasks)"
        );
        assert!(
            self.delivery_models.is_none() || self.delivery == DeliveryMode::Modeled,
            "explicit delivery models only apply under DeliveryMode::Modeled"
        );
        // The policy decides both the cache behaviour and the dependency
        // bound the database stores with every object.
        let policy = self.cache_policy.unwrap_or(match self.dependency_bound {
            DependencyBound::Bounded(k) => CachePolicyConfig::tcache(k, self.strategy),
            DependencyBound::Unbounded => CachePolicyConfig::unbounded(self.strategy),
        });
        let db = Arc::new(Database::new(DatabaseConfig {
            shards: self.shards,
            dependency_bound: policy.dependency_bound,
            history_depth: 0,
            read_path: self.db_read_path,
            invalidation_log_capacity: self.invalidation_log_capacity,
        }));
        let losses = self
            .per_cache_loss
            .unwrap_or_else(|| vec![self.invalidation_loss; self.caches]);
        if let Some(models) = &self.delivery_models {
            // `caches()` / `cache_loss_rates()` after `delivery_models()`
            // can change the cache count out from under the models; fail
            // here with a clear message instead of deep in the wiring.
            assert_eq!(
                models.len(),
                losses.len(),
                "delivery_models must cover every deployed cache (models: {}, caches: {})",
                models.len(),
                losses.len()
            );
        }
        let caches: Vec<Arc<EdgeCache>> = (0..losses.len())
            .map(|i| {
                let cache = EdgeCache::with_read_path(
                    CacheId(i as u32),
                    Arc::clone(&db),
                    policy,
                    self.cache_read_path,
                );
                cache.set_recovery_policy(self.recovery_policy);
                Arc::new(cache)
            })
            .collect();
        let fanout = InvalidationFanout::new(
            self.seed,
            losses.iter().enumerate().map(|(i, &loss)| {
                CacheLink::uniform(CacheId(i as u32), loss, self.invalidation_delay)
            }),
        );
        // Modeled delivery moves each cache's loss / latency into its
        // reactor task; without explicit models the configured loss rates
        // and delay become per-cache uniform/constant models.
        let models = self.delivery_models.unwrap_or_else(|| match self.delivery {
            DeliveryMode::Clocked => vec![DeliveryModel::reliable(); losses.len()],
            DeliveryMode::Modeled => losses
                .iter()
                .map(|&loss| DeliveryModel::uniform(loss, self.invalidation_delay))
                .collect(),
        });
        TCacheSystem::new(
            db,
            caches,
            fanout,
            SystemWiring {
                tick: self.tick,
                mode: self.transport,
                delivery: self.delivery,
                pipe_capacity: self.pipe_capacity,
                overflow_policy: self.overflow_policy,
                models,
                seed: self.seed,
                retry: self.publish_retry,
                parents: self
                    .cache_parents
                    .map(|parents| {
                        parents
                            .into_iter()
                            .map(|p| p.map(|id| id.0 as usize))
                            .collect()
                    })
                    .unwrap_or_default(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, Value};

    #[test]
    fn builder_configures_every_knob() {
        let system = SystemBuilder::new()
            .dependency_bound(4)
            .strategy(Strategy::Evict)
            .shards(3)
            .invalidation_loss(0.5)
            .invalidation_delay_millis(10)
            .tick(SimDuration::from_millis(2))
            .seed(9)
            .build();
        assert_eq!(system.edge_cache().config().dependency_bound.limit(), 4);
        assert_eq!(system.edge_cache().config().strategy, Strategy::Evict);
        assert_eq!(system.database().config().shards, 3);
        system.populate((0..30).map(|i| (ObjectId(i), Value::new(0))));
        assert_eq!(system.database().object_count(), 30);
        system.update(&[ObjectId(0), ObjectId(7), ObjectId(14)]).unwrap();
    }

    #[test]
    fn db_read_path_knob_reaches_the_store() {
        let system = SystemBuilder::new().db_read_path(ReadPath::Locked).build();
        assert_eq!(system.database().config().read_path, ReadPath::Locked);
        system.populate([(ObjectId(0), Value::new(0))]);
        system.read(ObjectId(0)).unwrap();
        let stats = system.database().stats();
        assert!(stats.read_path.locked_reads > 0);
        assert_eq!(stats.read_path.optimistic_hits, 0);

        // The default is the optimistic seqlock path; a cache miss shows up
        // as an optimistic store snapshot.
        let system = SystemBuilder::new().build();
        assert_eq!(system.database().config().read_path, ReadPath::Optimistic);
        system.populate([(ObjectId(0), Value::new(0))]);
        system.read(ObjectId(0)).unwrap();
        assert!(system.database().stats().read_path.optimistic_hits > 0);
    }

    #[test]
    fn unbounded_builder() {
        let system = SystemBuilder::new().unbounded_dependencies().build();
        assert!(system
            .edge_cache()
            .config()
            .dependency_bound
            .is_unbounded());
    }

    #[test]
    fn loss_is_clamped() {
        let builder = SystemBuilder::new().invalidation_loss(4.0);
        assert_eq!(builder.invalidation_loss, 1.0);
        let builder = SystemBuilder::new().cache_loss_rates(vec![4.0, -1.0]);
        assert_eq!(builder.per_cache_loss, Some(vec![1.0, 0.0]));
    }

    #[test]
    fn multi_cache_builders() {
        let system = SystemBuilder::new().caches(3).build();
        assert_eq!(system.cache_count(), 3);
        for (i, id) in system.cache_ids().enumerate() {
            assert_eq!(id, CacheId(i as u32));
            assert_eq!(system.cache(id).unwrap().id(), id);
        }
        let system = SystemBuilder::new()
            .cache_loss_rates(vec![0.1, 0.2])
            .build();
        assert_eq!(system.cache_count(), 2);
        // `caches` after `cache_loss_rates` resets to uniform loss.
        let system = SystemBuilder::new()
            .cache_loss_rates(vec![0.1, 0.2])
            .caches(5)
            .build();
        assert_eq!(system.cache_count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = SystemBuilder::new().shards(0);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_caches_panics() {
        let _ = SystemBuilder::new().caches(0);
    }
}
