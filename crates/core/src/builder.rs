//! Builder for [`TCacheSystem`].

use crate::system::TCacheSystem;
use std::sync::Arc;
use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig};
use tcache_net::channel::InvalidationChannel;
use tcache_net::{LatencyModel, LossModel};
use tcache_types::{CacheId, DependencyBound, SimDuration, Strategy};

/// Configures and builds a [`TCacheSystem`].
///
/// ```
/// use tcache::SystemBuilder;
/// use tcache_types::Strategy;
///
/// let system = SystemBuilder::new()
///     .dependency_bound(5)
///     .strategy(Strategy::Evict)
///     .invalidation_loss(0.2)
///     .invalidation_delay_millis(50)
///     .build();
/// assert_eq!(system.edge_cache().config().dependency_bound.limit(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemBuilder {
    dependency_bound: DependencyBound,
    strategy: Strategy,
    shards: usize,
    invalidation_loss: f64,
    invalidation_delay: SimDuration,
    tick: SimDuration,
    seed: u64,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            dependency_bound: DependencyBound::Bounded(3),
            strategy: Strategy::Retry,
            shards: 1,
            invalidation_loss: 0.0,
            invalidation_delay: SimDuration::from_millis(50),
            tick: SimDuration::from_millis(1),
            seed: 0,
        }
    }
}

impl SystemBuilder {
    /// Starts a builder with the defaults: dependency bound 3, RETRY
    /// strategy, a single shard, a reliable channel with 50 ms delay.
    pub fn new() -> Self {
        SystemBuilder::default()
    }

    /// Bounds the dependency lists stored with every object.
    pub fn dependency_bound(mut self, bound: usize) -> Self {
        self.dependency_bound = DependencyBound::Bounded(bound);
        self
    }

    /// Uses unbounded dependency lists (the Theorem 1 configuration).
    pub fn unbounded_dependencies(mut self) -> Self {
        self.dependency_bound = DependencyBound::Unbounded;
        self
    }

    /// Chooses the reaction to detected inconsistencies.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Number of database shards (two-phase commit spans them).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a database needs at least one shard");
        self.shards = shards;
        self
    }

    /// Fraction of invalidations lost by the channel (clamped to `[0, 1]`).
    pub fn invalidation_loss(mut self, loss: f64) -> Self {
        self.invalidation_loss = loss.clamp(0.0, 1.0);
        self
    }

    /// One-way delay of invalidations, in milliseconds.
    pub fn invalidation_delay_millis(mut self, millis: u64) -> Self {
        self.invalidation_delay = SimDuration::from_millis(millis);
        self
    }

    /// How far the virtual clock advances per operation.
    pub fn tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// Seed for the channel's loss randomness (runs are reproducible for a
    /// fixed seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the system.
    pub fn build(self) -> TCacheSystem {
        let db = Arc::new(Database::new(DatabaseConfig {
            shards: self.shards,
            dependency_bound: self.dependency_bound,
            history_depth: 0,
        }));
        let cache = match self.dependency_bound {
            DependencyBound::Bounded(k) => {
                EdgeCache::tcache(CacheId(0), Arc::clone(&db), k, self.strategy)
            }
            DependencyBound::Unbounded => {
                EdgeCache::unbounded(CacheId(0), Arc::clone(&db), self.strategy)
            }
        };
        let channel = InvalidationChannel::new(
            LossModel::uniform(self.invalidation_loss),
            LatencyModel::Constant(self.invalidation_delay),
            self.seed,
        );
        TCacheSystem::new(db, cache, channel, self.tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, Value};

    #[test]
    fn builder_configures_every_knob() {
        let system = SystemBuilder::new()
            .dependency_bound(4)
            .strategy(Strategy::Evict)
            .shards(3)
            .invalidation_loss(0.5)
            .invalidation_delay_millis(10)
            .tick(SimDuration::from_millis(2))
            .seed(9)
            .build();
        assert_eq!(system.edge_cache().config().dependency_bound.limit(), 4);
        assert_eq!(system.edge_cache().config().strategy, Strategy::Evict);
        assert_eq!(system.database().config().shards, 3);
        system.populate((0..30).map(|i| (ObjectId(i), Value::new(0))));
        assert_eq!(system.database().object_count(), 30);
        system.update(&[ObjectId(0), ObjectId(7), ObjectId(14)]).unwrap();
    }

    #[test]
    fn unbounded_builder() {
        let system = SystemBuilder::new().unbounded_dependencies().build();
        assert!(system
            .edge_cache()
            .config()
            .dependency_bound
            .is_unbounded());
    }

    #[test]
    fn loss_is_clamped() {
        let builder = SystemBuilder::new().invalidation_loss(4.0);
        assert_eq!(builder.invalidation_loss, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = SystemBuilder::new().shards(0);
    }
}
