//! Convenience re-exports for downstream users.
//!
//! ```
//! use tcache::prelude::*;
//!
//! let system = SystemBuilder::new().dependency_bound(3).build();
//! system.populate((0..4u64).map(|i| (ObjectId(i), Value::new(0))));
//! let _ = system.update(&[ObjectId(0), ObjectId(1)]);
//! ```

pub use crate::builder::SystemBuilder;
pub use crate::system::{ReadOutcome, SystemStats, TCacheSystem};
pub use crate::transport::{DeliveryMode, TransportMode};
pub use tcache_cache::{EdgeCache, Strategy};
pub use tcache_net::pipe::OverflowPolicy;
pub use tcache_db::{Database, DatabaseConfig, ReadPath};
pub use tcache_types::{
    CachePolicyConfig, DependencyBound, DependencyList, ObjectId, SimDuration, SimTime, TxnId,
    Value, Version,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        let system = SystemBuilder::new().build();
        system.populate([(ObjectId(0), Value::new(0))]);
        assert_eq!(system.database().object_count(), 1);
        let _: Strategy = Strategy::Retry;
        let _: DependencyBound = DependencyBound::Bounded(2);
    }
}
