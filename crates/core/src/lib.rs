//! # T-Cache
//!
//! A from-scratch reproduction of *Cache Serializability: Reducing
//! Inconsistency in Edge Transactions* (Eyal, Birman, van Renesse,
//! ICDCS 2015).
//!
//! Read-only edge caches are updated asynchronously and unreliably by the
//! backend database, so read-only transactions served from a cache can
//! observe inconsistent data. T-Cache attaches a small, bounded
//! **dependency list** (object id + version pairs) to every object, lets the
//! cache check each read of a transaction against the dependency
//! information of the transaction's earlier reads, and reacts to detected
//! violations with one of three strategies (ABORT, EVICT, RETRY) — all
//! without any extra round trips to the database on cache hits.
//!
//! This facade crate re-exports the individual subsystem crates and offers
//! [`TCacheSystem`], a batteries-included single-process deployment (one
//! backend database, one or more edge caches, an unreliable asynchronous
//! invalidation channel per cache) that a downstream user can embed directly
//! or use to explore the protocol. Cache serializability is a per-cache
//! property, so a multi-cache system gives every cache its own
//! independently seeded, independently lossy channel —
//! `SystemBuilder::cache_loss_rates(vec![0.0, 0.2, 0.4])` deploys three
//! caches with heterogeneous links.
//!
//! ```
//! use tcache::{ReadOutcome, SystemBuilder};
//! use tcache_types::{ObjectId, Strategy, Value};
//!
//! // A small catalogue with dependency lists bounded at 3.
//! let system = SystemBuilder::new()
//!     .dependency_bound(3)
//!     .strategy(Strategy::Retry)
//!     .invalidation_loss(0.2)
//!     .build();
//! system.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
//!
//! // An update transaction writes two related objects atomically.
//! system.update(&[ObjectId(1), ObjectId(2)]).expect("update commits");
//!
//! // A read-only transaction through the edge cache sees a consistent view.
//! match system.read_transaction(&[ObjectId(1), ObjectId(2)]).expect("no backend error") {
//!     ReadOutcome::Committed(values) => assert_eq!(values.len(), 2),
//!     ReadOutcome::Aborted { .. } => { /* retry the transaction */ }
//! }
//! ```
//!
//! The crates behind the facade:
//!
//! * [`tcache_types`] — identifiers, versions, dependency lists;
//! * [`tcache_db`] — the transactional backend store (2PL + 2PC, version
//!   assignment, dependency aggregation, invalidation publication);
//! * [`tcache_net`] — loss / latency models for the invalidation channel;
//! * [`tcache_cache`] — the edge cache with the violation predicates and
//!   strategies, plus the plain and TTL baselines;
//! * [`tcache_monitor`] — the serialization-graph-testing oracle used by the
//!   evaluation;
//! * [`tcache_workload`] — synthetic and graph-based workload generators.
//!
//! The experiment harness lives in `tcache-sim`, *on top of* this crate:
//! its live execution plane drives a [`TCacheSystem`] in reactor transport
//! with modeled delivery, so the harness depends on the facade rather than
//! the other way around.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod builder;
pub mod prelude;
pub mod system;
pub mod transport;

pub use builder::{two_tier_parents, SystemBuilder};
pub use system::{CacheNodeStats, ReadOutcome, SystemStats, TCacheSystem};
pub use transport::{DeliveryMode, RetryPolicy, TransportMode};

pub use tcache_cache as cache;
pub use tcache_db as db;
pub use tcache_monitor as monitor;
pub use tcache_net as net;
pub use tcache_types as types;
pub use tcache_workload as workload;
