//! The invalidation transport planes of a [`TCacheSystem`].
//!
//! [`TCacheSystem`]: crate::system::TCacheSystem
//!
//! Two modes deliver due invalidations to the edge caches:
//!
//! * [`TransportMode::Threaded`] (the default, and the historical
//!   behaviour): invalidations are applied synchronously on the driving
//!   thread — in a live deployment this is the thread-per-cache layout
//!   where each cache's upcall thread applies its own deliveries.
//! * [`TransportMode::Reactor`]: every cache gets a bounded
//!   [`pipe`](tcache_net::pipe) with a configurable overflow policy, and a
//!   *single* reactor thread ([`tcache_net::reactor`]) multiplexes all N
//!   apply loops. The pipe capacity bounds how far a slow cache can back
//!   up, and the overflow policy decides what that backlog costs: blocked
//!   commits ([`OverflowPolicy::Block`]) or bounded staleness
//!   ([`OverflowPolicy::DropOldest`] / [`OverflowPolicy::DropNewest`]).
//!
//! Orthogonally, [`DeliveryMode`] selects *where* the unreliable-link
//! model runs:
//!
//! * [`DeliveryMode::Clocked`] (the default): the per-cache discrete-event
//!   channels ([`tcache_net::fanout`]) drop and delay messages in virtual
//!   time; [`advance_time`](crate::system::TCacheSystem::advance_time)
//!   pushes the deliveries that became due into the caches (directly in
//!   threaded mode, through the pipes in reactor mode).
//! * [`DeliveryMode::Modeled`] (requires [`TransportMode::Reactor`]): the
//!   database's invalidation upcalls feed each cache's pipe directly at
//!   commit time, and the cache's reactor task applies the loss / latency
//!   models itself in wall-clock time ([`tcache_net::delivery`]). This is
//!   the live execution plane: no virtual clock is involved in delivery.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcache_cache::EdgeCache;
use tcache_db::Invalidation;
use tcache_net::delivery::{
    run_delivery, DeliveryCounters, DeliveryModel, DeliveryStatsSnapshot, DeliveryTask,
    DEFAULT_BATCH_BUDGET,
};
use tcache_net::pipe::{bounded_pipe, OverflowPolicy, PipeSender, PipeStatsSnapshot};
use tcache_net::reactor::{Reactor, ReactorHandle, ReactorStats};
use tcache_types::seeding::{cache_channel_seed, cache_delay_seed};
use tcache_types::CacheId;

/// How a [`TCacheSystem`](crate::system::TCacheSystem) applies delivered
/// invalidations to its caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Apply invalidations synchronously on the driving thread(s) —
    /// thread-per-cache in live deployments. The historical behaviour.
    #[default]
    Threaded,
    /// Push invalidations through per-cache bounded pipes drained by one
    /// shared reactor thread hosting every cache's apply task.
    Reactor,
}

/// Where the unreliable-link model (loss and latency) of the invalidation
/// channels runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// The discrete-event channels drop/delay messages in virtual time and
    /// `advance_time` delivers what became due. The historical behaviour.
    #[default]
    Clocked,
    /// The database's commit-path upcalls enqueue invalidations directly
    /// onto each cache's pipe, and the cache's reactor task applies its
    /// own seeded loss / latency models in wall-clock time. Requires
    /// [`TransportMode::Reactor`].
    Modeled,
}

/// One reactor thread hosting every cache's invalidation-apply task, fed by
/// per-cache bounded pipes. Under [`DeliveryMode::Modeled`] each task also
/// runs its cache's loss / latency models ([`tcache_net::delivery`]);
/// under [`DeliveryMode::Clocked`] the tasks apply reliably and the
/// discrete-event channels upstream decide what arrives.
pub(crate) struct ReactorPlane {
    pipes: Vec<PipeSender<Invalidation>>,
    /// Per-cache delivery counters (offered / dropped / delivered / delay).
    counters: Vec<Arc<DeliveryCounters>>,
    /// Per-cache pause flags: a paused task applies nothing further — at
    /// most one already-dequeued message is held in limbo while the rest
    /// of the backlog stays in the pipe — modelling a slow or wedged edge
    /// cache.
    paused: Vec<Arc<AtomicBool>>,
    /// Per-cache severed flags (crash / partition): a severed cache's link
    /// discards publishes instead of enqueuing them, so a crashed cache
    /// behind a full `Block` pipe can never wedge the publishing thread —
    /// the fault plane's invariant that lets `quiesce` always settle.
    severed: Vec<Arc<AtomicBool>>,
    /// Per-cache delay surcharge (microseconds) added on top of each
    /// task's modeled latency — the live half of `FaultKind::DelaySpike`.
    extra_delays: Vec<Arc<AtomicU64>>,
    handle: ReactorHandle,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Times an `advance_time` quiesce wait gave up before the reactor
    /// settled — nonzero means reads may have observed state a threaded
    /// transport would already have invalidated.
    quiesce_timeouts: AtomicU64,
    /// Relay sends dropped because a child's bounded pipe was full. The
    /// relay hop cannot block (parent and child tasks share the reactor
    /// thread, so a blocking send would deadlock it); with the default
    /// unbounded capacity this stays zero.
    relay_overflows: Arc<AtomicU64>,
}

impl std::fmt::Debug for ReactorPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPlane")
            .field("caches", &self.pipes.len())
            .finish_non_exhaustive()
    }
}

impl ReactorPlane {
    /// Builds the plane: one pipe + one delivery task per cache, all tasks
    /// multiplexed on a single spawned reactor thread. `models[i]` is the
    /// link model cache `i`'s task applies (pass
    /// [`DeliveryModel::reliable`] for every cache to reproduce the
    /// clocked plane's pass-through behaviour); the task's loss and delay
    /// RNG streams are derived from `(run_seed, CacheId)`.
    ///
    /// `parents[i]` turns the fan-out into a tree: when it names another
    /// cache index, cache `i` is a *leaf* subscribing through that regional
    /// parent — the database publishes only to root caches, and a parent's
    /// delivery task relays every invalidation it applies into each
    /// unsevered child's pipe, where the child's own seeded loss / latency
    /// model takes over. Construction is two-pass (all pipes first, then
    /// all tasks) precisely so a parent's closure can capture its
    /// children's senders. Relays happen *before* the parent's task counts
    /// the message as delivered, so [`ReactorPlane::quiesce`] can never
    /// settle with a relay still in flight. A severed parent silences its
    /// whole subtree; a severed leaf only itself.
    pub(crate) fn new(
        caches: &[Arc<EdgeCache>],
        capacity: usize,
        policy: OverflowPolicy,
        models: &[DeliveryModel],
        run_seed: u64,
        parents: &[Option<usize>],
    ) -> Self {
        debug_assert_eq!(caches.len(), models.len());
        debug_assert_eq!(caches.len(), parents.len());
        let mut reactor = Reactor::new();
        let timer = reactor.timer();
        let relay_overflows = Arc::new(AtomicU64::new(0));
        // Pass 1: create every pipe and flag so parent tasks can capture
        // their children's senders and severed flags in pass 2.
        let mut pipes = Vec::with_capacity(caches.len());
        let mut receivers = Vec::with_capacity(caches.len());
        let mut counters = Vec::with_capacity(caches.len());
        let mut paused = Vec::with_capacity(caches.len());
        let mut severed = Vec::with_capacity(caches.len());
        let mut extra_delays = Vec::with_capacity(caches.len());
        for _ in caches {
            let (tx, rx) = bounded_pipe::<Invalidation>(capacity, policy);
            pipes.push(tx);
            receivers.push(rx);
            counters.push(Arc::new(DeliveryCounters::default()));
            paused.push(Arc::new(AtomicBool::new(false)));
            severed.push(Arc::new(AtomicBool::new(false)));
            extra_delays.push(Arc::new(AtomicU64::new(0)));
        }
        // Pass 2: spawn one delivery task per cache; a parent's apply
        // callback also relays into its children's pipes.
        for (index, (cache, rx)) in caches.iter().zip(receivers).enumerate() {
            let children: Vec<(PipeSender<Invalidation>, Arc<AtomicBool>)> = parents
                .iter()
                .enumerate()
                .filter(|(_, parent)| **parent == Some(index))
                .map(|(child, _)| (pipes[child].clone(), Arc::clone(&severed[child])))
                .collect();
            let id = cache.id();
            let task_cache = Arc::clone(cache);
            let task_overflows = Arc::clone(&relay_overflows);
            reactor.spawn(run_delivery(
                rx,
                timer.clone(),
                DeliveryTask {
                    model: models[index],
                    loss_seed: cache_channel_seed(run_seed, id),
                    delay_seed: cache_delay_seed(run_seed, id),
                    counters: Arc::clone(&counters[index]),
                    paused: Arc::clone(&paused[index]),
                    extra_delay_micros: Arc::clone(&extra_delays[index]),
                    batch_budget: DEFAULT_BATCH_BUDGET,
                },
                move |inv| {
                    task_cache.apply_invalidation(inv);
                    for (child_tx, child_severed) in &children {
                        if child_severed.load(Ordering::Acquire) {
                            continue;
                        }
                        // The relay must not block: parent and child tasks
                        // share the reactor thread, so waiting on a full
                        // Block pipe here would deadlock it. With the
                        // default unbounded capacity this never drops.
                        if let Err(tcache_net::pipe::PipeSendError::Full(_)) =
                            child_tx.try_send(inv)
                        {
                            task_overflows.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                },
            ));
        }
        let handle = reactor.handle();
        let thread = std::thread::Builder::new()
            .name("tcache-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        ReactorPlane {
            pipes,
            counters,
            paused,
            severed,
            extra_delays,
            handle,
            thread: Some(thread),
            quiesce_timeouts: AtomicU64::new(0),
            relay_overflows,
        }
    }

    /// Sends one invalidation down `cache_index`'s pipe, applying its
    /// overflow policy (a `Block` pipe at capacity blocks the caller — the
    /// backpressure lands on the publishing/committing thread). A severed
    /// (crashed / partitioned) cache discards the message instead: nothing
    /// enters the pipe and — crucially — nothing can block on it.
    pub(crate) fn deliver(&self, cache_index: usize, invalidation: Invalidation) {
        if self.severed[cache_index].load(Ordering::Acquire) {
            return;
        }
        // Failure means the task is gone (shutdown); the channel is
        // best-effort, so dropping is correct.
        let _ = self.pipes[cache_index].send(invalidation);
    }

    /// A clone of `cache_index`'s pipe sender, for wiring the database's
    /// invalidation upcall straight into the cache's delivery task
    /// ([`DeliveryMode::Modeled`]).
    pub(crate) fn sender(&self, cache_index: usize) -> PipeSender<Invalidation> {
        self.pipes[cache_index].clone()
    }

    /// Waits until every *unpaused* cache's pipe is drained and its task has
    /// finished processing (paused caches keep their backlog by design).
    /// A message the task popped but is still sleeping a modeled delay on
    /// counts as unprocessed, so modeled in-flight delays are waited out.
    /// Returns `false` on timeout.
    pub(crate) fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            let settled = (0..self.pipes.len()).all(|i| {
                self.paused[i].load(Ordering::Acquire) || {
                    let pipe = &self.pipes[i];
                    pipe.is_empty() && self.counters[i].processed() == pipe.stats().received
                }
            });
            if settled {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            // Spin briefly (the reactor usually drains a batch in
            // microseconds), then back off so a genuinely slow task does
            // not burn a core.
            spins += 1;
            if spins < 200 {
                std::thread::yield_now();
            } else {
                // Quiesce is wall-clock by nature: it waits for real worker
                // threads, not modeled time, so a timer cannot replace it.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    /// Pauses or resumes one cache's apply task.
    pub(crate) fn set_paused(&self, cache_index: usize, paused: bool) {
        self.paused[cache_index].store(paused, Ordering::Release);
    }

    /// Whether a cache's apply task is currently paused.
    pub(crate) fn is_paused(&self, cache_index: usize) -> bool {
        self.paused[cache_index].load(Ordering::Acquire)
    }

    /// Severs or restores one cache's invalidation link (crash/partition).
    pub(crate) fn set_severed(&self, cache_index: usize, severed: bool) {
        self.severed[cache_index].store(severed, Ordering::Release);
    }

    /// Whether a cache's invalidation link is currently severed.
    pub(crate) fn is_severed(&self, cache_index: usize) -> bool {
        self.severed[cache_index].load(Ordering::Acquire)
    }

    /// A clone of one cache's severed flag, for wiring into the cache's
    /// publish sink ([`modeled_delivery_sink`]).
    pub(crate) fn severed_flag(&self, cache_index: usize) -> Arc<AtomicBool> {
        Arc::clone(&self.severed[cache_index])
    }

    /// Sets the delay surcharge one cache's delivery task adds on top of
    /// its modeled latency (a fault-plan delay spike; zero clears it).
    pub(crate) fn set_extra_delay(&self, cache_index: usize, extra: tcache_types::SimDuration) {
        self.extra_delays[cache_index].store(extra.as_micros(), Ordering::Release);
    }

    /// One cache's pipe counters.
    pub(crate) fn pipe_stats(&self, cache_index: usize) -> PipeStatsSnapshot {
        self.pipes[cache_index].stats()
    }

    /// One cache's delivery-task counters (offered / dropped / delivered /
    /// modeled delay).
    pub(crate) fn delivery_stats(&self, cache_index: usize) -> DeliveryStatsSnapshot {
        self.counters[cache_index].snapshot()
    }

    /// Invalidations applied by one cache's reactor task so far.
    pub(crate) fn applied(&self, cache_index: usize) -> u64 {
        self.counters[cache_index].snapshot().delivered
    }

    /// Records that an `advance_time` quiesce wait timed out.
    pub(crate) fn record_quiesce_timeout(&self) {
        self.quiesce_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of `advance_time` quiesce waits that timed out so far.
    pub(crate) fn quiesce_timeouts(&self) -> u64 {
        self.quiesce_timeouts.load(Ordering::Relaxed)
    }

    /// The reactor's counters.
    pub(crate) fn reactor_stats(&self) -> ReactorStats {
        self.handle.stats()
    }

    /// Relay sends dropped because a child's bounded pipe was full (see
    /// the constructor's two-tier notes); zero under the default unbounded
    /// pipe capacity.
    pub(crate) fn relay_overflows(&self) -> u64 {
        self.relay_overflows.load(Ordering::Relaxed)
    }
}

impl Drop for ReactorPlane {
    fn drop(&mut self) {
        // Unpause everything so no task sits in a pause-sleep loop, ask the
        // loop to exit, and reclaim the thread.
        for flag in &self.paused {
            flag.store(false, Ordering::Release);
        }
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// How the publish path handles a send to a cache whose link is severed
/// (crashed or partitioned): retry up to `budget` times with capped
/// exponential backoff (re-checking the link before each attempt), then
/// abandon the batch. The default budget of 0 discards immediately — the
/// deterministic behaviour the simulation planes rely on (no wall-clock
/// sleeps on the commit path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts per published batch (0 = never retry).
    pub budget: u32,
    /// Backoff before the first retry; doubles each attempt.
    pub base: Duration,
    /// Upper bound on a single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 0,
            base: Duration::from_micros(50),
            cap: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// The capped exponential backoff before retry attempt `attempt`
    /// (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// Builds the per-cache invalidation upcall sink that feeds `sender`'s
/// pipe from the database's commit path ([`DeliveryMode::Modeled`]): every
/// invalidation of a published batch is enqueued individually, and the
/// pipe's overflow / stall behaviour is reported back so the publisher can
/// attribute what the commit paid. A batch published while `severed` is
/// set (the cache crashed or partitioned) is retried per `retry` — the
/// publisher waits out short disconnects — and discarded once the budget
/// runs out, so a downed cache can never block the commit path. Used by
/// the builder; `cache` only documents the wiring.
pub(crate) fn modeled_delivery_sink(
    _cache: CacheId,
    sender: PipeSender<Invalidation>,
    severed: Arc<AtomicBool>,
    retry: RetryPolicy,
) -> tcache_db::ReportingSink {
    Box::new(move |batch| {
        let mut report = tcache_db::SinkReport::default();
        if severed.load(Ordering::Acquire) {
            for attempt in 0..retry.budget {
                // The severed-link backoff runs on the publisher's own
                // thread, outside the reactor; blocking it is the point.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(retry.backoff(attempt));
                report.retries += 1;
                if !severed.load(Ordering::Acquire) {
                    break;
                }
            }
            if severed.load(Ordering::Acquire) {
                // Budget exhausted (or zero): the batch is lost on the
                // floor, attributed so recovery can be audited later.
                report.severed += batch.len() as u64;
                if retry.budget > 0 {
                    report.abandoned += batch.len() as u64;
                }
                return report;
            }
        }
        for &inv in batch.iter() {
            // Try the non-blocking path first so a Block pipe's
            // backpressure is visible as a stall before we wait it out.
            let outcome = match sender.try_send(inv) {
                Ok(outcome) => Some(outcome),
                Err(tcache_net::pipe::PipeSendError::Full(inv)) => {
                    report.stalled = true;
                    sender.send(inv).ok()
                }
                Err(tcache_net::pipe::PipeSendError::Disconnected(_)) => None,
            };
            if let Some(outcome) = outcome {
                if outcome.was_enqueued() {
                    report.enqueued += 1;
                }
                if outcome.lost_a_message() {
                    report.overflowed += 1;
                }
            }
        }
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_backoff_is_capped_exponential() {
        let retry = RetryPolicy {
            budget: 8,
            base: Duration::from_micros(100),
            cap: Duration::from_micros(350),
        };
        assert_eq!(retry.backoff(0), Duration::from_micros(100));
        assert_eq!(retry.backoff(1), Duration::from_micros(200));
        assert_eq!(retry.backoff(2), Duration::from_micros(350), "capped");
        assert_eq!(retry.backoff(31), Duration::from_micros(350));
        assert_eq!(RetryPolicy::default().budget, 0);
    }

    #[test]
    fn severed_sink_discards_without_retry_budget() {
        let (tx, rx) = bounded_pipe::<Invalidation>(8, OverflowPolicy::Block);
        let severed = Arc::new(AtomicBool::new(true));
        let sink = modeled_delivery_sink(
            CacheId(0),
            tx,
            Arc::clone(&severed),
            RetryPolicy::default(),
        );
        let batch = tcache_db::InvalidationBatch::new(vec![Invalidation::new(
            tcache_types::ObjectId(1),
            tcache_types::Version(2),
            tcache_types::TxnId(3),
        )]);
        let report = sink(&batch);
        assert_eq!(report.severed, 1);
        assert_eq!(report.retries, 0);
        assert_eq!(report.abandoned, 0, "budget 0 never 'abandons': no retry was attempted");
        assert_eq!(report.enqueued, 0);
        assert!(rx.try_recv().is_none(), "nothing entered the pipe");
    }

    #[test]
    fn severed_sink_retries_until_the_link_heals() {
        let (tx, rx) = bounded_pipe::<Invalidation>(8, OverflowPolicy::Block);
        let severed = Arc::new(AtomicBool::new(true));
        let retry = RetryPolicy {
            budget: 50,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(1),
        };
        let sink = modeled_delivery_sink(CacheId(0), tx, Arc::clone(&severed), retry);
        // Heal the link from another thread while the publisher backs off.
        let healer = {
            let severed = Arc::clone(&severed);
            std::thread::spawn(move || {
                // Test-only cross-thread coordination on wall time.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(Duration::from_millis(2));
                severed.store(false, Ordering::Release);
            })
        };
        let batch = tcache_db::InvalidationBatch::new(vec![Invalidation::new(
            tcache_types::ObjectId(1),
            tcache_types::Version(2),
            tcache_types::TxnId(3),
        )]);
        let report = sink(&batch);
        healer.join().unwrap();
        assert!(report.retries >= 1, "the publisher retried: {report:?}");
        assert_eq!(report.severed, 0);
        assert_eq!(report.abandoned, 0);
        assert_eq!(report.enqueued, 1, "the healed link carried the batch");
        assert!(rx.try_recv().is_some());
    }

    #[test]
    fn severed_sink_abandons_after_the_budget() {
        let (tx, rx) = bounded_pipe::<Invalidation>(8, OverflowPolicy::Block);
        let severed = Arc::new(AtomicBool::new(true));
        let retry = RetryPolicy {
            budget: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(20),
        };
        let sink = modeled_delivery_sink(CacheId(0), tx, severed, retry);
        let batch = tcache_db::InvalidationBatch::new(vec![
            Invalidation::new(
                tcache_types::ObjectId(1),
                tcache_types::Version(2),
                tcache_types::TxnId(3),
            );
            2
        ]);
        let report = sink(&batch);
        assert_eq!(report.retries, 3, "the whole budget was spent");
        assert_eq!(report.severed, 2);
        assert_eq!(report.abandoned, 2);
        assert!(rx.try_recv().is_none());
    }
}
