//! The invalidation transport planes of a [`TCacheSystem`].
//!
//! [`TCacheSystem`]: crate::system::TCacheSystem
//!
//! Two modes deliver due invalidations to the edge caches:
//!
//! * [`TransportMode::Threaded`] (the default, and the historical
//!   behaviour): invalidations are applied synchronously on the driving
//!   thread — in a live deployment this is the thread-per-cache layout
//!   where each cache's upcall thread applies its own deliveries.
//! * [`TransportMode::Reactor`]: every cache gets a bounded
//!   [`pipe`](tcache_net::pipe) with a configurable overflow policy, and a
//!   *single* reactor thread ([`tcache_net::reactor`]) multiplexes all N
//!   apply loops. The pipe capacity bounds how far a slow cache can back
//!   up, and the overflow policy decides what that backlog costs: blocked
//!   commits ([`OverflowPolicy::Block`]) or bounded staleness
//!   ([`OverflowPolicy::DropOldest`] / [`OverflowPolicy::DropNewest`]).
//!
//! Orthogonally, [`DeliveryMode`] selects *where* the unreliable-link
//! model runs:
//!
//! * [`DeliveryMode::Clocked`] (the default): the per-cache discrete-event
//!   channels ([`tcache_net::fanout`]) drop and delay messages in virtual
//!   time; [`advance_time`](crate::system::TCacheSystem::advance_time)
//!   pushes the deliveries that became due into the caches (directly in
//!   threaded mode, through the pipes in reactor mode).
//! * [`DeliveryMode::Modeled`] (requires [`TransportMode::Reactor`]): the
//!   database's invalidation upcalls feed each cache's pipe directly at
//!   commit time, and the cache's reactor task applies the loss / latency
//!   models itself in wall-clock time ([`tcache_net::delivery`]). This is
//!   the live execution plane: no virtual clock is involved in delivery.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcache_cache::EdgeCache;
use tcache_db::Invalidation;
use tcache_net::delivery::{run_delivery, DeliveryCounters, DeliveryModel, DeliveryStatsSnapshot, DeliveryTask};
use tcache_net::pipe::{bounded_pipe, OverflowPolicy, PipeSender, PipeStatsSnapshot};
use tcache_net::reactor::{Reactor, ReactorHandle, ReactorStats};
use tcache_types::seeding::{cache_channel_seed, cache_delay_seed};
use tcache_types::CacheId;

/// How a [`TCacheSystem`](crate::system::TCacheSystem) applies delivered
/// invalidations to its caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Apply invalidations synchronously on the driving thread(s) —
    /// thread-per-cache in live deployments. The historical behaviour.
    #[default]
    Threaded,
    /// Push invalidations through per-cache bounded pipes drained by one
    /// shared reactor thread hosting every cache's apply task.
    Reactor,
}

/// Where the unreliable-link model (loss and latency) of the invalidation
/// channels runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// The discrete-event channels drop/delay messages in virtual time and
    /// `advance_time` delivers what became due. The historical behaviour.
    #[default]
    Clocked,
    /// The database's commit-path upcalls enqueue invalidations directly
    /// onto each cache's pipe, and the cache's reactor task applies its
    /// own seeded loss / latency models in wall-clock time. Requires
    /// [`TransportMode::Reactor`].
    Modeled,
}

/// One reactor thread hosting every cache's invalidation-apply task, fed by
/// per-cache bounded pipes. Under [`DeliveryMode::Modeled`] each task also
/// runs its cache's loss / latency models ([`tcache_net::delivery`]);
/// under [`DeliveryMode::Clocked`] the tasks apply reliably and the
/// discrete-event channels upstream decide what arrives.
pub(crate) struct ReactorPlane {
    pipes: Vec<PipeSender<Invalidation>>,
    /// Per-cache delivery counters (offered / dropped / delivered / delay).
    counters: Vec<Arc<DeliveryCounters>>,
    /// Per-cache pause flags: a paused task applies nothing further — at
    /// most one already-dequeued message is held in limbo while the rest
    /// of the backlog stays in the pipe — modelling a slow or wedged edge
    /// cache.
    paused: Vec<Arc<AtomicBool>>,
    handle: ReactorHandle,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Times an `advance_time` quiesce wait gave up before the reactor
    /// settled — nonzero means reads may have observed state a threaded
    /// transport would already have invalidated.
    quiesce_timeouts: AtomicU64,
}

impl std::fmt::Debug for ReactorPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPlane")
            .field("caches", &self.pipes.len())
            .finish_non_exhaustive()
    }
}

impl ReactorPlane {
    /// Builds the plane: one pipe + one delivery task per cache, all tasks
    /// multiplexed on a single spawned reactor thread. `models[i]` is the
    /// link model cache `i`'s task applies (pass
    /// [`DeliveryModel::reliable`] for every cache to reproduce the
    /// clocked plane's pass-through behaviour); the task's loss and delay
    /// RNG streams are derived from `(run_seed, CacheId)`.
    pub(crate) fn new(
        caches: &[Arc<EdgeCache>],
        capacity: usize,
        policy: OverflowPolicy,
        models: &[DeliveryModel],
        run_seed: u64,
    ) -> Self {
        debug_assert_eq!(caches.len(), models.len());
        let mut reactor = Reactor::new();
        let timer = reactor.timer();
        let mut pipes = Vec::with_capacity(caches.len());
        let mut counters = Vec::with_capacity(caches.len());
        let mut paused = Vec::with_capacity(caches.len());
        for (cache, model) in caches.iter().zip(models) {
            let (tx, rx) = bounded_pipe::<Invalidation>(capacity, policy);
            let task_counters = Arc::new(DeliveryCounters::default());
            let pause_flag = Arc::new(AtomicBool::new(false));
            let id = cache.id();
            let task_cache = Arc::clone(cache);
            reactor.spawn(run_delivery(
                rx,
                timer.clone(),
                DeliveryTask {
                    model: *model,
                    loss_seed: cache_channel_seed(run_seed, id),
                    delay_seed: cache_delay_seed(run_seed, id),
                    counters: Arc::clone(&task_counters),
                    paused: Arc::clone(&pause_flag),
                },
                move |inv| task_cache.apply_invalidation(inv),
            ));
            pipes.push(tx);
            counters.push(task_counters);
            paused.push(pause_flag);
        }
        let handle = reactor.handle();
        let thread = std::thread::Builder::new()
            .name("tcache-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        ReactorPlane {
            pipes,
            counters,
            paused,
            handle,
            thread: Some(thread),
            quiesce_timeouts: AtomicU64::new(0),
        }
    }

    /// Sends one invalidation down `cache_index`'s pipe, applying its
    /// overflow policy (a `Block` pipe at capacity blocks the caller — the
    /// backpressure lands on the publishing/committing thread).
    pub(crate) fn deliver(&self, cache_index: usize, invalidation: Invalidation) {
        // Failure means the task is gone (shutdown); the channel is
        // best-effort, so dropping is correct.
        let _ = self.pipes[cache_index].send(invalidation);
    }

    /// A clone of `cache_index`'s pipe sender, for wiring the database's
    /// invalidation upcall straight into the cache's delivery task
    /// ([`DeliveryMode::Modeled`]).
    pub(crate) fn sender(&self, cache_index: usize) -> PipeSender<Invalidation> {
        self.pipes[cache_index].clone()
    }

    /// Waits until every *unpaused* cache's pipe is drained and its task has
    /// finished processing (paused caches keep their backlog by design).
    /// A message the task popped but is still sleeping a modeled delay on
    /// counts as unprocessed, so modeled in-flight delays are waited out.
    /// Returns `false` on timeout.
    pub(crate) fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            let settled = (0..self.pipes.len()).all(|i| {
                self.paused[i].load(Ordering::Acquire) || {
                    let pipe = &self.pipes[i];
                    pipe.is_empty() && self.counters[i].processed() == pipe.stats().received
                }
            });
            if settled {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            // Spin briefly (the reactor usually drains a batch in
            // microseconds), then back off so a genuinely slow task does
            // not burn a core.
            spins += 1;
            if spins < 200 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    /// Pauses or resumes one cache's apply task.
    pub(crate) fn set_paused(&self, cache_index: usize, paused: bool) {
        self.paused[cache_index].store(paused, Ordering::Release);
    }

    /// Whether a cache's apply task is currently paused.
    pub(crate) fn is_paused(&self, cache_index: usize) -> bool {
        self.paused[cache_index].load(Ordering::Acquire)
    }

    /// One cache's pipe counters.
    pub(crate) fn pipe_stats(&self, cache_index: usize) -> PipeStatsSnapshot {
        self.pipes[cache_index].stats()
    }

    /// One cache's delivery-task counters (offered / dropped / delivered /
    /// modeled delay).
    pub(crate) fn delivery_stats(&self, cache_index: usize) -> DeliveryStatsSnapshot {
        self.counters[cache_index].snapshot()
    }

    /// Invalidations applied by one cache's reactor task so far.
    pub(crate) fn applied(&self, cache_index: usize) -> u64 {
        self.counters[cache_index].snapshot().delivered
    }

    /// Records that an `advance_time` quiesce wait timed out.
    pub(crate) fn record_quiesce_timeout(&self) {
        self.quiesce_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of `advance_time` quiesce waits that timed out so far.
    pub(crate) fn quiesce_timeouts(&self) -> u64 {
        self.quiesce_timeouts.load(Ordering::Relaxed)
    }

    /// The reactor's counters.
    pub(crate) fn reactor_stats(&self) -> ReactorStats {
        self.handle.stats()
    }
}

impl Drop for ReactorPlane {
    fn drop(&mut self) {
        // Unpause everything so no task sits in a pause-sleep loop, ask the
        // loop to exit, and reclaim the thread.
        for flag in &self.paused {
            flag.store(false, Ordering::Release);
        }
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Builds the per-cache invalidation upcall sink that feeds `sender`'s
/// pipe from the database's commit path ([`DeliveryMode::Modeled`]): every
/// invalidation of a published batch is enqueued individually, and the
/// pipe's overflow / stall behaviour is reported back so the publisher can
/// attribute what the commit paid. Used by the builder; `cache` only
/// documents the wiring.
pub(crate) fn modeled_delivery_sink(
    _cache: CacheId,
    sender: PipeSender<Invalidation>,
) -> tcache_db::ReportingSink {
    Box::new(move |batch| {
        let mut report = tcache_db::SinkReport::default();
        for &inv in batch.iter() {
            // Try the non-blocking path first so a Block pipe's
            // backpressure is visible as a stall before we wait it out.
            let outcome = match sender.try_send(inv) {
                Ok(outcome) => Some(outcome),
                Err(tcache_net::pipe::PipeSendError::Full(inv)) => {
                    report.stalled = true;
                    sender.send(inv).ok()
                }
                Err(tcache_net::pipe::PipeSendError::Disconnected(_)) => None,
            };
            if let Some(outcome) = outcome {
                if outcome.was_enqueued() {
                    report.enqueued += 1;
                }
                if outcome.lost_a_message() {
                    report.overflowed += 1;
                }
            }
        }
        report
    })
}
