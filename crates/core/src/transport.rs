//! The invalidation transport planes of a [`TCacheSystem`].
//!
//! [`TCacheSystem`]: crate::system::TCacheSystem
//!
//! Two modes deliver due invalidations to the edge caches:
//!
//! * [`TransportMode::Threaded`] (the default, and the historical
//!   behaviour): invalidations are applied synchronously on the driving
//!   thread — in a live deployment this is the thread-per-cache layout
//!   where each cache's upcall thread applies its own deliveries.
//! * [`TransportMode::Reactor`]: every cache gets a bounded
//!   [`pipe`](tcache_net::pipe) with a configurable overflow policy, and a
//!   *single* reactor thread ([`tcache_net::reactor`]) multiplexes all N
//!   apply loops. The pipe capacity bounds how far a slow cache can back
//!   up, and the overflow policy decides what that backlog costs: blocked
//!   commits ([`OverflowPolicy::Block`]) or bounded staleness
//!   ([`OverflowPolicy::DropOldest`] / [`OverflowPolicy::DropNewest`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcache_cache::EdgeCache;
use tcache_db::Invalidation;
use tcache_net::pipe::{bounded_pipe, OverflowPolicy, PipeSender, PipeStatsSnapshot};
use tcache_net::reactor::{Reactor, ReactorHandle, ReactorStats};

/// How a [`TCacheSystem`](crate::system::TCacheSystem) applies delivered
/// invalidations to its caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Apply invalidations synchronously on the driving thread(s) —
    /// thread-per-cache in live deployments. The historical behaviour.
    #[default]
    Threaded,
    /// Push invalidations through per-cache bounded pipes drained by one
    /// shared reactor thread hosting every cache's apply task.
    Reactor,
}

/// One reactor thread hosting every cache's invalidation-apply task, fed by
/// per-cache bounded pipes.
pub(crate) struct ReactorPlane {
    pipes: Vec<PipeSender<Invalidation>>,
    /// Per-cache count of invalidations the reactor task has applied.
    applied: Vec<Arc<AtomicU64>>,
    /// Per-cache pause flags: a paused task applies nothing further — at
    /// most one already-dequeued message is held in limbo while the rest
    /// of the backlog stays in the pipe — modelling a slow or wedged edge
    /// cache.
    paused: Vec<Arc<AtomicBool>>,
    handle: ReactorHandle,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Times an `advance_time` quiesce wait gave up before the reactor
    /// settled — nonzero means reads may have observed state a threaded
    /// transport would already have invalidated.
    quiesce_timeouts: AtomicU64,
}

impl std::fmt::Debug for ReactorPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorPlane")
            .field("caches", &self.pipes.len())
            .finish_non_exhaustive()
    }
}

impl ReactorPlane {
    /// Builds the plane: one pipe + one reactor task per cache, all tasks
    /// multiplexed on a single spawned reactor thread.
    pub(crate) fn new(
        caches: &[Arc<EdgeCache>],
        capacity: usize,
        policy: OverflowPolicy,
    ) -> Self {
        let mut reactor = Reactor::new();
        let timer = reactor.timer();
        let mut pipes = Vec::with_capacity(caches.len());
        let mut applied = Vec::with_capacity(caches.len());
        let mut paused = Vec::with_capacity(caches.len());
        for cache in caches {
            let (tx, rx) = bounded_pipe::<Invalidation>(capacity, policy);
            let applied_count = Arc::new(AtomicU64::new(0));
            let pause_flag = Arc::new(AtomicBool::new(false));
            let cache = Arc::clone(cache);
            let task_applied = Arc::clone(&applied_count);
            let task_paused = Arc::clone(&pause_flag);
            let task_timer = timer.clone();
            reactor.spawn(async move {
                while let Some(inv) = rx.recv_async().await {
                    // A paused cache applies nothing: a message already
                    // pulled off the pipe is held here (the rest of the
                    // backlog stays in the pipe, where the overflow policy
                    // governs it) until resume. Polling keeps the task
                    // machinery simple — pause is a modeling facility, and
                    // a 1 ms cycle is cheap while bounding resume latency.
                    while task_paused.load(Ordering::Acquire) {
                        task_timer.sleep(Duration::from_millis(1)).await;
                    }
                    cache.apply_invalidation(inv);
                    task_applied.fetch_add(1, Ordering::Release);
                }
            });
            pipes.push(tx);
            applied.push(applied_count);
            paused.push(pause_flag);
        }
        let handle = reactor.handle();
        let thread = std::thread::Builder::new()
            .name("tcache-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        ReactorPlane {
            pipes,
            applied,
            paused,
            handle,
            thread: Some(thread),
            quiesce_timeouts: AtomicU64::new(0),
        }
    }

    /// Sends one invalidation down `cache_index`'s pipe, applying its
    /// overflow policy (a `Block` pipe at capacity blocks the caller — the
    /// backpressure lands on the publishing/committing thread).
    pub(crate) fn deliver(&self, cache_index: usize, invalidation: Invalidation) {
        // Failure means the task is gone (shutdown); the channel is
        // best-effort, so dropping is correct.
        let _ = self.pipes[cache_index].send(invalidation);
    }

    /// Waits until every *unpaused* cache's pipe is drained and its task has
    /// finished applying (paused caches keep their backlog by design).
    /// Returns `false` on timeout.
    pub(crate) fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            let settled = (0..self.pipes.len()).all(|i| {
                self.paused[i].load(Ordering::Acquire) || {
                    let pipe = &self.pipes[i];
                    pipe.is_empty()
                        && self.applied[i].load(Ordering::Acquire) == pipe.stats().received
                }
            });
            if settled {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            // Spin briefly (the reactor usually drains a batch in
            // microseconds), then back off so a genuinely slow task does
            // not burn a core.
            spins += 1;
            if spins < 200 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    /// Pauses or resumes one cache's apply task.
    pub(crate) fn set_paused(&self, cache_index: usize, paused: bool) {
        self.paused[cache_index].store(paused, Ordering::Release);
    }

    /// Whether a cache's apply task is currently paused.
    pub(crate) fn is_paused(&self, cache_index: usize) -> bool {
        self.paused[cache_index].load(Ordering::Acquire)
    }

    /// One cache's pipe counters.
    pub(crate) fn pipe_stats(&self, cache_index: usize) -> PipeStatsSnapshot {
        self.pipes[cache_index].stats()
    }

    /// Invalidations applied by one cache's reactor task so far.
    pub(crate) fn applied(&self, cache_index: usize) -> u64 {
        self.applied[cache_index].load(Ordering::Acquire)
    }

    /// Records that an `advance_time` quiesce wait timed out.
    pub(crate) fn record_quiesce_timeout(&self) {
        self.quiesce_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of `advance_time` quiesce waits that timed out so far.
    pub(crate) fn quiesce_timeouts(&self) -> u64 {
        self.quiesce_timeouts.load(Ordering::Relaxed)
    }

    /// The reactor's counters.
    pub(crate) fn reactor_stats(&self) -> ReactorStats {
        self.handle.stats()
    }
}

impl Drop for ReactorPlane {
    fn drop(&mut self) {
        // Unpause everything so no task sits in a pause-sleep loop, ask the
        // loop to exit, and reclaim the thread.
        for flag in &self.paused {
            flag.store(false, Ordering::Release);
        }
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
