//! A single-process T-Cache deployment: database + channel + edge cache.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tcache_cache::{CacheStatsSnapshot, EdgeCache};
use tcache_db::stats::DbStatsSnapshot;
use tcache_db::Database;
use tcache_net::channel::{ChannelStats, InvalidationChannel};
use tcache_types::{
    ObjectId, ReadOnlyOutcome, SimDuration, SimTime, TCacheError, TCacheResult, TxnId, Value,
    Version, VersionedObject,
};

/// The outcome of a read-only transaction issued through
/// [`TCacheSystem::read_transaction`].
pub type ReadOutcome = ReadOnlyOutcome;

/// A single-process deployment of the full T-Cache stack.
///
/// The system owns a backend [`Database`], one [`EdgeCache`] and the
/// asynchronous invalidation channel between them, and drives a virtual
/// clock: every operation advances time by a small tick and delivers the
/// invalidations that have become due, so the asynchronous (and, if
/// configured, lossy) nature of the channel is preserved even in a single
/// process.
#[derive(Debug)]
pub struct TCacheSystem {
    db: Arc<Database>,
    cache: EdgeCache,
    channel: Mutex<InvalidationChannel>,
    clock: Mutex<SimTime>,
    tick: SimDuration,
    next_txn: AtomicU64,
}

/// A combined statistics snapshot of the whole system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemStats {
    /// Cache-side statistics.
    pub cache: CacheStatsSnapshot,
    /// Database-side statistics.
    pub db: DbStatsSnapshot,
    /// Invalidation channel statistics.
    pub channel: ChannelStats,
}

impl TCacheSystem {
    pub(crate) fn new(
        db: Arc<Database>,
        cache: EdgeCache,
        channel: InvalidationChannel,
        tick: SimDuration,
    ) -> Self {
        TCacheSystem {
            db,
            cache,
            channel: Mutex::new(channel),
            clock: Mutex::new(SimTime::ZERO),
            tick,
            next_txn: AtomicU64::new(1),
        }
    }

    /// Loads objects into the backend database at their initial version.
    pub fn populate(&self, objects: impl IntoIterator<Item = (ObjectId, Value)>) {
        self.db.populate(objects);
    }

    /// The backend database (for advanced use and inspection).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The edge cache (for advanced use and inspection).
    pub fn edge_cache(&self) -> &EdgeCache {
        &self.cache
    }

    /// The current virtual time of the system.
    pub fn now(&self) -> SimTime {
        *self.clock.lock()
    }

    /// Advances the virtual clock by `duration`, delivering every
    /// invalidation that becomes due. Use this to model elapsed wall-clock
    /// time between transactions.
    pub fn advance_time(&self, duration: SimDuration) {
        let now = {
            let mut clock = self.clock.lock();
            *clock += duration;
            *clock
        };
        let due = self.channel.lock().due(now);
        for invalidation in due {
            self.cache.apply_invalidation(invalidation);
        }
    }

    /// Executes an update transaction that reads and rewrites every object
    /// in `objects` (bumping its numeric payload), returning the version the
    /// transaction installed. Invalidations are published asynchronously on
    /// the channel.
    ///
    /// # Errors
    /// Returns an error if any object is unknown or the database aborts the
    /// transaction.
    pub fn update(&self, objects: &[ObjectId]) -> TCacheResult<Version> {
        let txn = self.next_txn();
        let access: tcache_types::AccessSet = objects.iter().copied().collect();
        let commit = self.db.execute_update(txn, &access)?;
        let now = self.now();
        self.channel.lock().send(now, commit.invalidations.iter().copied());
        self.advance_time(self.tick);
        Ok(commit.version)
    }

    /// Executes an update transaction writing explicit values.
    ///
    /// # Errors
    /// Returns an error if any object is unknown or the database aborts the
    /// transaction.
    pub fn update_values(&self, writes: &[(ObjectId, Value)]) -> TCacheResult<Version> {
        let txn = self.next_txn();
        let records = writes
            .iter()
            .map(|(o, v)| tcache_types::WriteRecord::new(*o, v.clone()))
            .collect();
        let reads: Vec<ObjectId> = writes.iter().map(|(o, _)| *o).collect();
        let commit = self.db.execute_update_writes(txn, &reads, records)?;
        let now = self.now();
        self.channel.lock().send(now, commit.invalidations.iter().copied());
        self.advance_time(self.tick);
        Ok(commit.version)
    }

    /// Executes a read-only transaction through the edge cache. The reads
    /// are checked against each other with the T-Cache violation predicates;
    /// a detected inconsistency is reported as [`ReadOutcome::Aborted`]
    /// (when the configured strategy cannot repair it locally).
    ///
    /// # Errors
    /// Returns an error if any object does not exist in the backend.
    pub fn read_transaction(&self, objects: &[ObjectId]) -> TCacheResult<ReadOutcome> {
        let txn = self.next_txn();
        let now = self.now();
        let outcome = self.cache.execute_transaction(now, txn, objects)?;
        self.advance_time(self.tick);
        Ok(outcome)
    }

    /// Reads a single object through the cache (a one-read transaction).
    ///
    /// # Errors
    /// Returns an error if the object does not exist in the backend.
    pub fn read(&self, object: ObjectId) -> TCacheResult<VersionedObject> {
        match self.read_transaction(&[object])? {
            ReadOnlyOutcome::Committed(mut values) => {
                Ok(values.pop().expect("single-read transaction returns one value"))
            }
            ReadOnlyOutcome::Aborted { violating_object } => Err(TCacheError::InconsistencyAbort {
                txn: TxnId(0),
                violating_object,
            }),
        }
    }

    /// A combined statistics snapshot.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            cache: self.cache.stats(),
            db: self.db.stats(),
            channel: self.channel.lock().stats(),
        }
    }

    fn next_txn(&self) -> TxnId {
        TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::SystemBuilder;
    use tcache_types::{ObjectId, Strategy, Value};

    fn small_system(loss: f64) -> super::TCacheSystem {
        let system = SystemBuilder::new()
            .dependency_bound(3)
            .strategy(Strategy::Abort)
            .invalidation_loss(loss)
            .seed(7)
            .build();
        system.populate((0..20).map(|i| (ObjectId(i), Value::new(0))));
        system
    }

    #[test]
    fn update_then_read_round_trip() {
        let system = small_system(0.0);
        let v1 = system.update(&[ObjectId(1), ObjectId(2)]).unwrap();
        let outcome = system
            .read_transaction(&[ObjectId(1), ObjectId(2)])
            .unwrap();
        let values = outcome.values().expect("committed");
        assert_eq!(values.len(), 2);
        assert!(values.iter().all(|v| v.version == v1));
        assert_eq!(system.read(ObjectId(1)).unwrap().version, v1);
        assert!(system.stats().db.updates_committed >= 1);
        assert!(system.now() > tcache_types::SimTime::ZERO);
    }

    #[test]
    fn update_values_writes_explicit_payloads() {
        let system = small_system(0.0);
        system
            .update_values(&[(ObjectId(3), Value::new(99))])
            .unwrap();
        assert_eq!(system.read(ObjectId(3)).unwrap().value.numeric(), 99);
    }

    #[test]
    fn lossy_channel_leaves_stale_entries_that_tcache_detects() {
        // Loss of 100 % means no invalidation ever arrives; after warming the
        // cache and updating the pair, the mixed read must be detected.
        let system = small_system(1.0);
        system.read_transaction(&[ObjectId(1)]).unwrap(); // warm object 1 only
        system.update(&[ObjectId(1), ObjectId(2)]).unwrap();
        // Object 2 misses (fresh), object 1 is stale in the cache.
        let outcome = system
            .read_transaction(&[ObjectId(2), ObjectId(1)])
            .unwrap();
        assert!(outcome.is_aborted(), "the stale pair must be detected");
        assert!(system.read(ObjectId(2)).is_ok());
    }

    #[test]
    fn unknown_objects_error() {
        let system = small_system(0.0);
        assert!(system.update(&[ObjectId(999)]).is_err());
        assert!(system.read(ObjectId(999)).is_err());
        assert!(system.read_transaction(&[ObjectId(999)]).is_err());
    }

    #[test]
    fn advance_time_delivers_invalidations() {
        let system = small_system(0.0);
        system.read_transaction(&[ObjectId(5)]).unwrap();
        system.update(&[ObjectId(5)]).unwrap();
        system.advance_time(tcache_types::SimDuration::from_secs(1));
        // The cached copy was invalidated, so the next read misses and sees
        // the new version.
        let v = system.read(ObjectId(5)).unwrap();
        assert!(v.version > tcache_types::Version::INITIAL);
        assert!(system.stats().channel.sent >= 1);
    }
}
